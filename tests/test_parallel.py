"""The parallel sweep runner: grids, journals, retries and determinism.

Most tests drive :func:`repro.parallel.run_sweep` with fake task runners so
the orchestration logic (retry, journaling, resume, pool-crash recovery,
telemetry merge) is exercised in milliseconds.  The end-to-end determinism
and resume-after-kill tests at the bottom run the real micro-scale pipeline
through the CLI; they are the ISSUE's tier-1 acceptance tests.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import telemetry
from repro.errors import SweepError
from repro.parallel import (
    SweepGrid,
    SweepJournal,
    SweepTask,
    ensure_unique,
    execute_task,
    grid_sha_of,
    reset_worker_state,
    run_sweep,
)
from repro.rowhammer import available_profiles, register_profile, reset_profiles
from repro.rowhammer.device_profiles import DeviceProfile
from repro.utils.rng import derive_seed


# ---------------------------------------------------------------------------
# Fake task runners.  Module-level so the spawn-based pool tests can pickle
# them by reference.
def _ok_runner(payload):
    task = SweepTask.from_json(payload["task"])
    return {
        "status": "ok",
        "row": {"method": task.method, "seed": task.seed},
        "duration_seconds": 0.01,
    }


def _failing_runner(payload):
    task = SweepTask.from_json(payload["task"])
    if task.method == "bad":
        return {
            "status": "failed",
            "error": {"type": "AttackError", "message": "boom", "traceback": ""},
        }
    return _ok_runner(payload)


def _flaky_runner(payload):
    """Fails on the first call per marker file, succeeds afterwards."""
    marker = payload["task"]["dataset"]  # smuggled marker path
    task = SweepTask.from_json(payload["task"])
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("seen")
        return {
            "status": "failed",
            "error": {"type": "RuntimeError", "message": "flaky", "traceback": ""},
        }
    return {"status": "ok", "row": {"method": task.method}, "duration_seconds": 0.0}


def _crashing_runner(payload):
    task = SweepTask.from_json(payload["task"])
    if task.method == "crash":
        os._exit(17)  # simulates a segfault / OOM kill: no exception, no answer
    return _ok_runner(payload)


def _metrics_runner(payload):
    task = SweepTask.from_json(payload["task"])
    return {
        "status": "ok",
        "row": {"method": task.method},
        "duration_seconds": 0.01,
        "metrics": {
            "counters": {"worker.flips": 2},
            "gauges": {"worker.last_seed": float(task.seed)},
            "histogram_values": {"worker.loss": [0.5]},
        },
        "spans": [
            {
                "name": "task_stage",
                "path": "task_stage",
                "duration_seconds": 0.01,
                "attributes": {},
                "children": [],
            }
        ],
    }


def _grid(methods=("a", "b"), seeds=(0,)):
    return SweepGrid(methods=methods, models=("m",), devices=("K1",), seeds=seeds)


# ---------------------------------------------------------------------------
# Seeds and grids.
def test_derive_seed_is_stable_and_component_sensitive():
    assert derive_seed(0, "CFT", 3) == derive_seed(0, "CFT", 3)
    assert derive_seed(0, "CFT", 3) != derive_seed(0, "CFT", 4)
    assert derive_seed(0, "CFT", 3) != derive_seed(1, "CFT", 3)
    assert 0 <= derive_seed(12345, "x") < 2**32


def test_grid_expand_is_ordered_and_unique():
    grid = _grid(methods=("a", "b"), seeds=(0, 1))
    tasks = grid.expand()
    assert [(t.seed, t.method) for t in tasks] == [(0, "a"), (0, "b"), (1, "a"), (1, "b")]
    assert len({t.task_id for t in tasks}) == len(tasks)
    assert grid_sha_of(tasks) == grid.grid_sha()


def test_grid_rejects_empty_axes_and_duplicates():
    with pytest.raises(SweepError):
        SweepGrid(methods=(), models=("m",)).expand()
    with pytest.raises(SweepError):
        ensure_unique(_grid().expand() + _grid().expand())


def test_grid_with_replicas_derives_distinct_seeds():
    grid = SweepGrid.with_replicas(0, 4, methods=("a",), models=("m",))
    seeds = [t.seed for t in grid.expand()]
    assert len(set(seeds)) == 4
    assert seeds == [t.seed for t in SweepGrid.with_replicas(0, 4, methods=("a",), models=("m",)).expand()]


def test_task_json_round_trip_rejects_unknown_fields():
    task = _grid().expand()[0]
    assert SweepTask.from_json(task.to_json()) == task
    with pytest.raises(SweepError):
        SweepTask.from_json({**task.to_json(), "bogus": 1})


# ---------------------------------------------------------------------------
# Journal.
def test_journal_round_trip_with_torn_and_malformed_lines(tmp_path):
    path = tmp_path / "j.jsonl"
    with SweepJournal(str(path)) as journal:
        journal.append_header(grid_sha="abc", total_tasks=2)
        journal.append({"kind": "result", "task_id": "t1", "status": "ok", "row": {"x": 1}})
        journal.append({"kind": "result", "task_id": "t2", "status": "failed"})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not json\n")
        handle.write('{"kind": "result", "task_id": "t2", "status": "ok", "row": {"x": 2}}\n')
        handle.write('{"kind": "result", "task_id":')  # torn trailing write

    state = SweepJournal.load(str(path))
    assert state.header["grid_sha"] == "abc"
    assert state.malformed_lines == 2
    # The later t2 line supersedes the failed one.
    assert set(state.completed) == {"t1", "t2"}
    assert state.completed["t2"]["row"] == {"x": 2}


def test_journal_load_of_missing_file_is_empty(tmp_path):
    state = SweepJournal.load(str(tmp_path / "absent.jsonl"))
    assert state.header is None and not state.records


# ---------------------------------------------------------------------------
# Runner orchestration (fake runners, inline).
def test_run_sweep_inline_returns_rows_in_grid_order():
    result = run_sweep(_grid(methods=("b", "a")), workers=1, task_runner=_ok_runner)
    assert [row["method"] for row in result.rows] == ["b", "a"]
    assert result.completed_count == 2 and not result.failures


def test_run_sweep_records_structured_failures_and_keeps_going():
    result = run_sweep(
        _grid(methods=("a", "bad", "b")), workers=1, task_runner=_failing_runner,
        max_attempts=1,
    )
    assert [row["method"] for row in result.rows] == ["a", "b"]
    (failure,) = result.failures
    assert failure.task.method == "bad"
    assert failure.error["type"] == "AttackError"
    assert failure.attempts == 1


def test_run_sweep_retries_flaky_task(tmp_path):
    marker = str(tmp_path / "flaky.marker")
    grid = [SweepTask(method="a", model="m", device="K1", seed=0, dataset=marker)]
    result = run_sweep(grid, workers=1, task_runner=_flaky_runner,
                       max_attempts=2, backoff_seconds=0.0)
    assert result.completed_count == 1
    assert result.outcomes[0].attempts == 2


def test_run_sweep_rejects_bad_arguments(tmp_path):
    with pytest.raises(SweepError):
        run_sweep(_grid(), max_attempts=0, task_runner=_ok_runner)
    with pytest.raises(SweepError):
        run_sweep(_grid(), resume=True, task_runner=_ok_runner)  # no journal


def test_run_sweep_journal_and_resume(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    grid = _grid(methods=("a", "b", "c"))
    first = run_sweep(grid, workers=1, journal_path=journal, task_runner=_ok_runner)
    assert first.completed_count == 3

    # Simulate a kill after the first result: header + one result line.
    lines = open(journal, encoding="utf-8").read().splitlines(True)
    cut = str(tmp_path / "cut.jsonl")
    with open(cut, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:2])
        handle.write(lines[2][: len(lines[2]) // 2])  # torn mid-write line

    resumed = run_sweep(grid, workers=1, journal_path=cut, resume=True,
                        task_runner=_ok_runner)
    assert resumed.resumed_count == 1
    assert resumed.completed_count == 2
    assert json.dumps(resumed.rows, sort_keys=True) == json.dumps(first.rows, sort_keys=True)
    state = SweepJournal.load(cut)
    assert len(state.resumes) == 1 and len(state.completed) == 3


def test_run_sweep_refuses_dirty_journal_without_resume(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    run_sweep(_grid(), workers=1, journal_path=journal, task_runner=_ok_runner)
    with pytest.raises(SweepError, match="resume"):
        run_sweep(_grid(), workers=1, journal_path=journal, task_runner=_ok_runner)


def test_run_sweep_refuses_resume_for_different_grid(tmp_path):
    journal = str(tmp_path / "sweep.jsonl")
    run_sweep(_grid(), workers=1, journal_path=journal, task_runner=_ok_runner)
    with pytest.raises(SweepError, match="different grid"):
        run_sweep(_grid(methods=("x", "y")), workers=1, journal_path=journal,
                  resume=True, task_runner=_ok_runner)


def test_run_sweep_grid_sha_check_fails_fast_even_without_resume(tmp_path):
    """A header-only journal (no results yet) written for another grid is
    rejected at open time -- naming both SHAs -- instead of surfacing the
    mismatch at merge time."""
    journal = tmp_path / "sweep.jsonl"
    other = _grid(methods=("x", "y"))
    with SweepJournal(journal) as handle:
        handle.append_header(grid_sha=other.grid_sha(), total_tasks=2,
                             shard_index=0, shard_count=1,
                             shard_task_ids=[t.task_id for t in other.expand()])
    with pytest.raises(SweepError) as exc:
        run_sweep(_grid(), workers=1, journal_path=str(journal), task_runner=_ok_runner)
    assert other.grid_sha() in str(exc.value)
    assert _grid().grid_sha() in str(exc.value)


def test_run_sweep_refuses_resume_under_a_different_shard_spec(tmp_path):
    journal = str(tmp_path / "shard.jsonl")
    grid = _grid(methods=("a", "b", "c"))
    run_sweep(grid, workers=1, journal_path=journal, task_runner=_ok_runner,
              shard="0/2")
    with pytest.raises(SweepError, match=r"shard 0/2, not 1/2"):
        run_sweep(grid, workers=1, journal_path=journal, resume=True,
                  task_runner=_ok_runner, shard="1/2")
    with pytest.raises(SweepError, match=r"shard 0/2, not 0/1"):
        run_sweep(grid, workers=1, journal_path=journal, resume=True,
                  task_runner=_ok_runner)


def test_run_sweep_merges_worker_telemetry_in_grid_order():
    telemetry.enable()
    telemetry.reset()
    result = run_sweep(_grid(methods=("a", "b")), workers=1, task_runner=_metrics_runner,
                       capture_telemetry=True)
    assert result.completed_count == 2
    registry = telemetry.get_registry()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["worker.flips"] == 4  # summed across tasks
    assert snapshot["counters"]["sweep.tasks_ok"] == 2
    # Gauge merge is last-writer-wins in *grid* order: task "b" has seed 0 too,
    # but with distinct seeds the final value must be the last grid cell's.
    assert snapshot["gauges"]["worker.last_seed"] == 0.0
    # Worker span trees attach under the parent's sweep span.
    paths = telemetry.get_tracer().stage_durations()
    assert any(path.endswith("task_stage") for path in paths)


# ---------------------------------------------------------------------------
# Runner orchestration (real process pool).
def test_run_sweep_pool_matches_inline_with_fake_runner():
    grid = _grid(methods=("a", "b", "c", "d"))
    inline = run_sweep(grid, workers=1, task_runner=_ok_runner)
    pooled = run_sweep(grid, workers=2, task_runner=_ok_runner)
    assert json.dumps(inline.rows, sort_keys=True) == json.dumps(pooled.rows, sort_keys=True)


def test_run_sweep_survives_worker_crash():
    grid = _grid(methods=("a", "crash", "b"))
    result = run_sweep(grid, workers=2, task_runner=_crashing_runner,
                       max_attempts=2, backoff_seconds=0.0)
    assert [row["method"] for row in result.rows] == ["a", "b"]
    (failure,) = result.failures
    assert failure.task.method == "crash"
    assert failure.attempts == 2
    assert failure.error["type"] in ("BrokenProcessPool", "OSError")


def test_pool_break_never_charges_innocent_siblings():
    # When a crasher takes the pool down, every in-flight sibling fails
    # with the same BrokenProcessPool -- the runner must requeue them
    # uncharged (finishing in serial recovery) rather than burning their
    # attempts on a crash that was not theirs.
    methods = ("a", "b", "crash", "c", "d", "e", "f")
    grid = _grid(methods=methods)
    result = run_sweep(grid, workers=4, task_runner=_crashing_runner,
                       max_attempts=2, backoff_seconds=0.0)
    survivors = [m for m in methods if m != "crash"]
    assert [row["method"] for row in result.rows] == survivors
    (failure,) = result.failures
    assert failure.task.method == "crash"
    assert failure.attempts == 2


# ---------------------------------------------------------------------------
# Worker state hygiene.
def test_reset_worker_state_clears_forked_globals():
    telemetry.enable()
    telemetry.counter_add("stale.counter", 5)
    register_profile(DeviceProfile(name="ZZ", ddr_version=4, flips_per_page=1.0,
                                   trr_protected=False))
    try:
        assert "ZZ" in available_profiles()
        reset_worker_state()
        assert not telemetry.enabled()
        assert telemetry.get_registry().snapshot()["counters"] == {}
        assert "ZZ" not in available_profiles()
    finally:
        reset_profiles()


def test_register_profile_rejects_builtin_shadowing():
    with pytest.raises(Exception):
        register_profile(DeviceProfile(name="K1", ddr_version=4, flips_per_page=1.0,
                                       trr_protected=False))


# ---------------------------------------------------------------------------
# End-to-end acceptance: the real micro-scale pipeline through the CLI.
def test_cli_sweep_is_deterministic_across_worker_counts_and_resumes(tmp_path, monkeypatch):
    """workers=1 and workers=4 produce byte-identical row files (and flight
    records), and a sweep killed mid-journal resumes to the same table."""
    from repro.cli import main
    from repro.telemetry.manifest import manifest_path_for, read_manifest

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out1, out4 = tmp_path / "rows1.json", tmp_path / "rows4.json"
    events1, events4 = tmp_path / "run1.events.jsonl", tmp_path / "run4.events.jsonl"
    argv = [
        "sweep", "--methods", "CFT,CFT+BR", "--models", "tinycnn",
        "--devices", "K1,A1", "--target", "1", "--scale", "micro",
    ]
    assert main(argv + ["--workers", "1", "--out", str(out1),
                        "--events", str(events1)]) == 0
    assert main(argv + ["--workers", "4", "--out", str(out4),
                        "--events", str(events4)]) == 0
    assert out1.read_bytes() == out4.read_bytes()
    # Worker events are merged in grid order, so the flight record is also
    # byte-identical across pool sizes.
    assert events1.read_bytes() == events4.read_bytes()
    manifest = read_manifest(
        manifest_path_for(out1.with_name(out1.name + ".journal.jsonl"))
    )
    assert manifest["run_kind"] == "sweep"
    assert "workers" not in manifest["config"]
    rows = json.loads(out1.read_text())
    assert [row["method"] for row in rows] == ["CFT", "CFT+BR"] * 2
    assert all(row["offline_n_flip"] >= 1 for row in rows)

    # Kill simulation: keep the header, the first result and a torn line.
    journal = out1.with_name(out1.name + ".journal.jsonl")
    lines = journal.read_text().splitlines(True)
    cut = tmp_path / "cut.journal.jsonl"
    cut.write_text("".join(lines[:2]) + lines[2][: len(lines[2]) // 2])
    out_resumed = tmp_path / "rows_resumed.json"
    assert main(argv + ["--workers", "1", "--out", str(out_resumed),
                        "--journal", str(cut), "--resume"]) == 0
    assert json.loads(out_resumed.read_text()) == rows
    state = SweepJournal.load(str(cut))
    assert len(state.completed) == 4 and len(state.resumes) == 1


def test_run_method_comparison_delegates_to_the_runner(tmp_path, monkeypatch):
    """Table II via the sweep runner: inline and pooled rows are identical,
    and a permanently failing cell raises SweepError."""
    from repro.core.experiment import SCALE_PRESETS, run_method_comparison

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    scale = SCALE_PRESETS["micro"]
    kwargs = dict(dataset="cifar10", methods=("CFT", "CFT+BR"), scale=scale,
                  target_class=1, device="K1", seed=0)
    inline = run_method_comparison("tinycnn", **kwargs)
    pooled = run_method_comparison("tinycnn", workers=2, **kwargs)
    assert json.dumps(inline, sort_keys=True) == json.dumps(pooled, sort_keys=True)
    with pytest.raises(SweepError, match="nope"):
        run_method_comparison("tinycnn", dataset="cifar10", methods=("nope",),
                              scale=scale, target_class=1, seed=0)


def test_execute_task_returns_structured_failure_for_unknown_method():
    task = SweepTask(method="nope", model="tinycnn", device="K1", seed=0)
    outcome = execute_task({"task": task.to_json(), "telemetry": False})
    assert outcome["status"] == "failed"
    assert outcome["error"]["type"] == "AttackError"
    assert "nope" in outcome["error"]["message"]
    # The parent's telemetry state is untouched even though the task ran inline.
    assert not telemetry.enabled()
