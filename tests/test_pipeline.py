"""End-to-end pipeline integration at tiny scale."""

import numpy as np
import pytest

from repro.attacks import AttackConfig, CFTAttack
from repro.core import BackdoorPipeline, MemoryConfig, PipelineConfig
from repro.errors import AttackError
from repro.quant import QuantizedModel

from tests.conftest import TinyCNN


@pytest.fixture
def pipeline():
    return BackdoorPipeline(
        PipelineConfig(
            memory=MemoryConfig(
                device="K1",
                num_banks=8,
                rows_per_bank=512,
                attacker_buffer_pages=512,
                seed=3,
            )
        )
    )


class TestPipeline:
    def test_profile_memory_is_cached(self, pipeline):
        first = pipeline.profile_memory()
        second = pipeline.profile_memory()
        assert first is second
        assert first.num_frames == 512

    def test_full_run_produces_consistent_result(self, pipeline, tiny_dataset, tiny_test_dataset):
        qmodel = QuantizedModel(TinyCNN(rng=0))
        config = AttackConfig(
            target_class=1, iterations=10, n_flip_budget=2, batch_size=16,
            trigger_size=4, seed=0,
        )
        result = pipeline.run(
            CFTAttack(config, bit_reduction=True),
            qmodel,
            tiny_dataset,
            tiny_test_dataset,
            target_class=1,
        )
        row = result.as_row()
        assert result.method == "CFT+BR"
        assert 0 <= row["online_n_flip"] <= row["offline_n_flip"] <= 2 * config.n_flip_budget
        assert 0.0 <= row["offline_ta"] <= 100.0
        assert 0.0 <= row["r_match"] <= 100.0
        assert result.online.placement_verified
        # The model now carries the corrupted (online) weights.
        np.testing.assert_array_equal(qmodel.flat_int8(), result.online.corrupted_weights)

    def test_oversized_file_rejected(self, pipeline, tiny_dataset, tiny_test_dataset):
        from repro.models import resnet18

        big = QuantizedModel(resnet18(width=1.0, rng=0))  # far over 512 pages
        config = AttackConfig(target_class=1, iterations=2, n_flip_budget=2, seed=0)
        with pytest.raises(AttackError):
            pipeline.run(
                CFTAttack(config), big, tiny_dataset, tiny_test_dataset, target_class=1
            )

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            BackdoorPipeline(PipelineConfig(memory=MemoryConfig(device="Z9")))
