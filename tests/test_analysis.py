"""Metrics, probability analysis and GradCAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    attack_success_rate,
    dram_match_rate,
    evaluate_attack,
    gradcam_focus_on_mask,
    gradcam_heatmap,
    monte_carlo_target_page_probability,
    n_flip,
    target_page_probability,
    target_page_probability_approx,
)
from repro.analysis import test_accuracy as clean_accuracy
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern


class TestProbability:
    def test_paper_headline_numbers(self):
        """Section IV-A2: with 34 flips/page, S=32768, N=32768 pages."""
        assert target_page_probability_approx(1, 34, 32_768) == pytest.approx(1.0, abs=1e-6)
        assert target_page_probability_approx(2, 34, 32_768) == pytest.approx(0.03, abs=0.01)
        assert target_page_probability_approx(3, 34, 32_768) == pytest.approx(3e-5, abs=2e-5)

    def test_exact_and_approx_same_order_of_magnitude(self):
        # Eq. 2 merges the direction pools, overcounting direction-specific
        # matches; it stays within a small constant factor of Eq. 1.
        exact = target_page_probability(1, 1, 17, 17, 1000)
        approx = target_page_probability_approx(2, 34, 1000)
        assert exact < approx < 8 * exact

    def test_monotone_in_pages_and_flips(self):
        p_small = target_page_probability_approx(1, 10, 100)
        p_more_pages = target_page_probability_approx(1, 10, 1000)
        p_more_flips = target_page_probability_approx(1, 50, 100)
        assert p_more_pages > p_small
        assert p_more_flips > p_small

    def test_zero_cases(self):
        assert target_page_probability_approx(1, 10, 0) == 0.0
        assert target_page_probability_approx(0, 10, 5) == 1.0
        # Needing more offsets than flips exist is impossible.
        assert target_page_probability_approx(5, 2, 10_000) == 0.0

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            target_page_probability(-1, 0, 10, 10, 5)
        with pytest.raises(ValueError):
            target_page_probability_approx(-1, 10, 5)

    def test_monte_carlo_agrees_with_formula_in_likely_regime(self):
        # Use a dense regime so the MC estimate has low variance.
        mc = monte_carlo_target_page_probability(
            1, 0, n_up=64, n_down=0, num_pages=64, trials=400, page_bits=1024, rng=0
        )
        formula = target_page_probability(1, 0, 64, 0, 64, page_bits=1024)
        assert mc == pytest.approx(formula, abs=0.08)

    @settings(max_examples=30, deadline=None)
    @given(
        offsets=st.integers(0, 4),
        flips=st.floats(0.0, 200.0),
        pages=st.integers(0, 10_000),
    )
    def test_property_is_a_probability(self, offsets, flips, pages):
        p = target_page_probability_approx(offsets, flips, pages)
        assert 0.0 <= p <= 1.0


class TestMetrics:
    def test_dram_match_rate_formula(self):
        # 10/10 flips, no accidental -> 100 %.
        assert dram_match_rate(10, 10, 0) == pytest.approx(100.0)
        # Half matched -> 50 %.
        assert dram_match_rate(5, 10, 0) == pytest.approx(50.0)
        # Accidental flips apply the (1 - delta/S) penalty.
        assert dram_match_rate(10, 10, 32_768 // 2) == pytest.approx(50.0)

    def test_dram_match_rate_zero_flips(self):
        assert dram_match_rate(0, 0) == 0.0

    def test_n_flip_is_hamming(self):
        a = np.array([0, 1], dtype=np.int8)
        b = np.array([0, 3], dtype=np.int8)
        assert n_flip(a, b) == 1

    def test_accuracy_and_asr(self, tiny_model, tiny_test_dataset):
        ta = clean_accuracy(tiny_model, tiny_test_dataset)
        assert 0.0 <= ta <= 1.0
        trigger = TriggerPattern.square((3, 16, 16), 4)
        asr = attack_success_rate(tiny_model, tiny_test_dataset, trigger, target_class=0)
        assert 0.0 <= asr <= 1.0

    def test_asr_is_one_for_constant_model(self, tiny_test_dataset):
        from repro.nn import Module, Linear
        from repro.autodiff.tensor import Tensor

        class Constant(Module):
            def forward(self, x):
                logits = np.zeros((x.shape[0], 4), dtype=np.float32)
                logits[:, 1] = 10.0
                return Tensor(logits)

        trigger = TriggerPattern.square((3, 16, 16), 4)
        assert attack_success_rate(Constant(), tiny_test_dataset, trigger, 1) == 1.0
        assert attack_success_rate(Constant(), tiny_test_dataset, trigger, 0) == 0.0

    def test_evaluate_attack_bundles_both(self, tiny_model, tiny_test_dataset):
        trigger = TriggerPattern.square((3, 16, 16), 4)
        result = evaluate_attack(tiny_model, tiny_test_dataset, trigger, 0)
        assert hasattr(result, "test_accuracy")
        assert hasattr(result, "attack_success_rate")

    def test_empty_dataset(self, tiny_model):
        empty = ArrayDataset(np.zeros((0, 3, 16, 16)), np.zeros(0))
        assert clean_accuracy(tiny_model, empty) == 0.0


class TestGradCAM:
    def test_heatmap_shape_and_range(self, tiny_model):
        image = np.random.default_rng(0).random((3, 16, 16)).astype(np.float32)
        cam = gradcam_heatmap(tiny_model, image, class_index=1)
        assert cam.ndim == 2
        assert cam.min() >= 0.0 and cam.max() <= 1.0

    def test_defaults_to_predicted_class(self, tiny_model):
        image = np.random.default_rng(1).random((3, 16, 16)).astype(np.float32)
        cam = gradcam_heatmap(tiny_model, image)
        assert np.isfinite(cam).all()

    def test_model_without_feature_split_raises(self):
        from repro.errors import ReproError
        from repro.nn import Linear

        with pytest.raises(ReproError):
            gradcam_heatmap(Linear(3, 2, rng=0), np.zeros((3, 4, 4)))

    def test_focus_on_mask_bounds(self):
        heatmap = np.ones((4, 4), dtype=np.float32)
        mask = np.zeros((16, 16), dtype=bool)
        mask[12:, 12:] = True
        focus = gradcam_focus_on_mask(heatmap, mask)
        assert 0.0 < focus < 1.0

    def test_focus_is_one_when_all_mass_in_mask(self):
        heatmap = np.zeros((4, 4), dtype=np.float32)
        heatmap[3, 3] = 1.0
        mask = np.zeros((16, 16), dtype=bool)
        mask[12:, 12:] = True
        assert gradcam_focus_on_mask(heatmap, mask) == pytest.approx(1.0)

    def test_focus_zero_heatmap(self):
        assert gradcam_focus_on_mask(np.zeros((4, 4)), np.ones((16, 16), bool)) == 0.0
