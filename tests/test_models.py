"""Architecture shape/structure tests for the model zoo."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.models import (
    MODEL_REGISTRY,
    build_model,
    resnet18,
    resnet20,
    resnet32,
    resnet34,
    resnet50,
    vgg11,
    vgg16,
)


def forward_shape(model, size=32):
    out = model(Tensor(np.zeros((2, 3, size, size), dtype=np.float32)))
    return out.shape


class TestResNets:
    @pytest.mark.parametrize(
        "factory,blocks",
        [(resnet20, 20), (resnet32, 32)],
    )
    def test_cifar_resnet_layer_count(self, factory, blocks):
        # CIFAR ResNet-n has (n - 2) conv layers in blocks + stem + fc.
        model = factory(width=0.25, rng=0)
        conv_layers = sum(
            1 for name, _ in model.named_parameters() if "conv" in name and name.endswith("weight")
        )
        assert conv_layers >= (blocks - 2)

    def test_resnet20_output_shape(self):
        assert forward_shape(resnet20(width=0.25, rng=0)) == (2, 10)

    def test_resnet18_output_shape(self):
        assert forward_shape(resnet18(width=0.125, rng=0)) == (2, 10)

    def test_resnet50_uses_bottleneck_expansion(self):
        model = resnet50(width=0.125, rng=0)
        assert forward_shape(model) == (2, 10)

    def test_width_scales_parameter_count(self):
        narrow = resnet20(width=0.25, rng=0).num_parameters()
        wide = resnet20(width=0.5, rng=0).num_parameters()
        assert wide > 2.5 * narrow

    def test_num_classes_controls_head(self):
        model = resnet20(num_classes=7, width=0.25, rng=0)
        assert forward_shape(model) == (2, 7)

    def test_feature_head_split_consistent(self):
        model = resnet20(width=0.25, rng=0)
        x = Tensor(np.random.default_rng(0).random((1, 3, 32, 32)).astype(np.float32))
        model.eval()
        direct = model(x).numpy()
        split = model.forward_head(model.forward_features(x)).numpy()
        np.testing.assert_allclose(direct, split, rtol=1e-5)

    def test_deterministic_init_with_seed(self):
        a = resnet20(width=0.25, rng=5)
        b = resnet20(width=0.25, rng=5)
        np.testing.assert_array_equal(a.conv1.weight.data, b.conv1.weight.data)


class TestVGG:
    def test_vgg11_shape(self):
        assert forward_shape(vgg11(width=0.125, rng=0)) == (2, 10)

    def test_vgg16_deeper_than_vgg11(self):
        shallow = sum(1 for _ in vgg11(width=0.125, rng=0).named_parameters())
        deep = sum(1 for _ in vgg16(width=0.125, rng=0).named_parameters())
        assert deep > shallow

    def test_vgg_feature_split(self):
        model = vgg11(width=0.125, rng=0)
        model.eval()
        x = Tensor(np.random.default_rng(1).random((1, 3, 32, 32)).astype(np.float32))
        np.testing.assert_allclose(
            model(x).numpy(),
            model.forward_head(model.forward_features(x)).numpy(),
            rtol=1e-5,
        )


class TestRegistry:
    def test_all_expected_models_registered(self):
        assert set(MODEL_REGISTRY) == {
            "resnet18",
            "resnet20",
            "resnet32",
            "resnet34",
            "resnet50",
            "tinycnn",
            "vgg11",
            "vgg16",
        }

    def test_build_model(self):
        model = build_model("resnet20", num_classes=5, width=0.25, rng=0)
        assert forward_shape(model) == (2, 5)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")
