"""Loss-function correctness and stability tests."""

import numpy as np
import pytest

from repro.autodiff.losses import cross_entropy, log_softmax, mse_loss, nll_loss, softmax
from repro.autodiff.tensor import Tensor
from repro.errors import ShapeError

from tests.helpers import check_gradient

RNG = np.random.default_rng(3)


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        probs = softmax(Tensor(RNG.normal(size=(5, 7)).astype(np.float32))).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        assert (probs >= 0).all()

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1001.0, 999.0]], dtype=np.float32))
        out = log_softmax(logits).numpy()
        assert np.isfinite(out).all()

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: log_softmax(t), RNG.normal(size=(4, 5)))


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = RNG.normal(size=(6, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3, 1, 0])
        loss = cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), labels].mean()
        assert loss == pytest.approx(expected, rel=1e-5)

    def test_gradient_matches_numeric(self):
        labels = np.array([1, 0, 2])
        check_gradient(lambda t: cross_entropy(t, labels), RNG.normal(size=(3, 4)))

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[0, 1] = logits[1, 2] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-5

    def test_batch_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((3, 4), dtype=np.float32)), np.array([0, 1]))

    def test_non_2d_logits_raise(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros(4, dtype=np.float32)), np.array([0]))


class TestOtherLosses:
    def test_nll_equals_cross_entropy(self):
        logits = Tensor(RNG.normal(size=(4, 5)).astype(np.float32))
        labels = np.array([0, 2, 4, 1])
        ce = cross_entropy(logits, labels).item()
        nll = nll_loss(log_softmax(logits), labels).item()
        assert ce == pytest.approx(nll, rel=1e-5)

    def test_mse_loss_value_and_gradient(self):
        prediction = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(prediction, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(prediction.grad, [1.0, 2.0])
