"""Flight recorder, run manifests, trace export and ``repro report``."""

from __future__ import annotations

import json
import logging

import pytest

from repro import telemetry
from repro.log import configure, get_logger, verbosity_to_level
from repro.telemetry import Event, EventRecorder, FLIGHT_SCHEMA, TelemetryError
from repro.telemetry.events import read_events_jsonl, write_events_jsonl
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from repro.telemetry.regression import compare_reports, format_comparison
from repro.telemetry.report import detect_input_kind, render_report
from repro.telemetry.spans import SpanTracer
from repro.telemetry.trace import build_trace, validate_trace, write_trace


# ---------------------------------------------------------------------------
# EventRecorder
# ---------------------------------------------------------------------------
class TestEventRecorder:
    def test_record_assigns_monotone_sequence_numbers(self):
        recorder = EventRecorder()
        first = recorder.record("cft.round", span="attack", round=0, loss=1.5)
        second = recorder.record("cft.flip_committed", index=12)
        assert (first.seq, second.seq) == (0, 1)
        assert len(recorder) == 2
        assert first.span == "attack" and second.span == ""
        assert second.data == {"index": 12}

    def test_reset_clears_events_and_sequence(self):
        recorder = EventRecorder()
        recorder.record("a")
        recorder.reset()
        assert len(recorder) == 0
        assert recorder.record("b").seq == 0

    def test_kind_counts_and_by_kind_are_sorted_views(self):
        recorder = EventRecorder()
        for kind in ("z.last", "a.first", "z.last"):
            recorder.record(kind)
        assert recorder.kind_counts() == {"a.first": 1, "z.last": 2}
        assert [e.seq for e in recorder.by_kind()["z.last"]] == [0, 2]

    def test_event_dict_round_trip(self):
        event = Event(seq=7, kind="verify.flip", span="pipeline/online",
                      data={"page": 3, "bit": 5, "achieved": True})
        assert Event.from_dict(event.to_dict()) == event
        # Worker shipping goes through JSON; survive that too.
        assert Event.from_dict(json.loads(json.dumps(event.to_dict()))) == event

    def test_attach_renumbers_and_rebases_span_paths(self):
        worker = EventRecorder()
        worker.record("hammer.attempt", span="online.hammer", row=4)
        worker.record("verify.summary")  # no open span in the worker
        parent = EventRecorder()
        parent.record("sweep.start")
        attached = parent.attach(worker.to_dicts(), base_path="sweep/task0")
        assert [e.seq for e in attached] == [1, 2]
        assert attached[0].span == "sweep/task0/online.hammer"
        assert attached[1].span == "sweep/task0"  # empty span -> base path
        assert attached[0].data == {"row": 4}
        # Without a base path the shipped span is kept verbatim.
        plain = EventRecorder().attach(worker.to_dicts())
        assert [e.span for e in plain] == ["online.hammer", ""]


# ---------------------------------------------------------------------------
# Module-level facade: events_enabled gating and isolation
# ---------------------------------------------------------------------------
class TestFacade:
    def test_event_is_dropped_unless_events_enabled(self):
        telemetry.event("cft.round", round=0)
        assert len(telemetry.get_recorder()) == 0
        telemetry.enable_events()
        telemetry.event("cft.round", round=1)
        assert len(telemetry.get_recorder()) == 1

    def test_event_captures_the_open_span_path(self):
        # Spans record only while metrics are enabled; with both streams on,
        # each event inherits the innermost open span's path.
        telemetry.enable()
        telemetry.enable_events()
        with telemetry.span("pipeline"):
            with telemetry.span("online"):
                telemetry.event("massage.release", pages=2)
        (event,) = telemetry.get_recorder().events
        assert event.span == "pipeline/online"

    def test_isolated_swaps_recorder_and_restores_flags(self):
        telemetry.enable_events()
        telemetry.event("outer")
        outer_recorder = telemetry.get_recorder()
        with telemetry.isolated(record_events=True):
            assert telemetry.get_recorder() is not outer_recorder
            telemetry.event("inner")
            assert telemetry.get_recorder().kind_counts() == {"inner": 1}
        assert telemetry.get_recorder() is outer_recorder
        assert telemetry.events_enabled()
        assert outer_recorder.kind_counts() == {"outer": 1}

    def test_isolated_can_disable_event_recording(self):
        telemetry.enable_events()
        with telemetry.isolated(record_events=False):
            telemetry.event("dropped")
            assert len(telemetry.get_recorder()) == 0
        assert telemetry.events_enabled()


# ---------------------------------------------------------------------------
# Flight-record JSONL
# ---------------------------------------------------------------------------
class TestFlightJsonl:
    def _recorder(self) -> EventRecorder:
        recorder = EventRecorder()
        recorder.record("attack.offline_start", span="bench", method="CFT+BR", seed=0)
        recorder.record("verify.summary", required=2, achieved=2)
        return recorder

    def test_round_trip_and_byte_determinism(self, tmp_path):
        recorder = self._recorder()
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        lines = write_events_jsonl(recorder, path_a, meta={"seed": 0})
        write_events_jsonl(recorder, path_b, meta={"seed": 0})
        assert lines == 3  # schema line + two events
        assert path_a.read_bytes() == path_b.read_bytes()
        assert read_events_jsonl(path_a) == recorder.events
        schema = json.loads(path_a.read_text().splitlines()[0])
        assert schema == {"kind": "schema", "value": FLIGHT_SCHEMA,
                          "meta": {"seed": 0}}

    def test_read_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"kind": "header", "grid_sha": "x"}\n')
        with pytest.raises(TelemetryError, match="flight schema"):
            read_events_jsonl(path)

    def test_dump_events_writes_the_active_recorder(self, tmp_path):
        telemetry.enable_events()
        telemetry.event("cft.round", round=0)
        path = tmp_path / "run.events.jsonl"
        assert telemetry.dump_events(path, meta={"command": "test"}) == 2
        assert [e.kind for e in read_events_jsonl(path)] == ["cft.round"]


# ---------------------------------------------------------------------------
# Chrome-trace / Perfetto export
# ---------------------------------------------------------------------------
class TestTraceExport:
    def _tracer_and_recorder(self):
        tracer = SpanTracer()
        recorder = EventRecorder()
        with tracer.span("pipeline"):
            with tracer.span("offline"):
                recorder.record("cft.round", span="pipeline/offline", round=0)
                recorder.record("cft.round", span="pipeline/offline", round=1)
            with tracer.span("online"):
                recorder.record("hammer.attempt", span="pipeline/online", row=3)
        recorder.record("orphan")  # no interval for this span path
        return tracer, recorder

    def test_build_trace_validates_and_nests(self):
        tracer, recorder = self._tracer_and_recorder()
        trace = build_trace(tracer, recorder, meta={"seed": 0})
        validate_trace(trace)
        events = trace["traceEvents"]
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert set(spans) == {"pipeline", "offline", "online"}
        parent, child = spans["pipeline"], spans["offline"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6
        instants = [e for e in events if e["ph"] == "i"]
        # Here every span opened in stream order, so ts order == seq order
        # (the orphan event trails the whole timeline).
        assert [e["args"]["seq"] for e in instants] == [0, 1, 2, 3]
        assert all(e["s"] == "t" for e in instants)
        assert trace["otherData"] == {"seed": 0}

    def test_instants_within_a_span_keep_stream_order(self):
        tracer, recorder = self._tracer_and_recorder()
        trace = build_trace(tracer, recorder)
        offline = [e for e in trace["traceEvents"]
                   if e["ph"] == "i" and e["args"]["span"] == "pipeline/offline"]
        assert [e["args"]["round"] for e in offline] == [0, 1]
        assert offline[0]["ts"] < offline[1]["ts"]

    def test_write_trace_is_loadable_json(self, tmp_path):
        tracer, recorder = self._tracer_and_recorder()
        path = tmp_path / "trace.json"
        count = write_trace(path, tracer, recorder)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        validate_trace(loaded)

    def test_validate_trace_rejects_malformed_objects(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_trace({"traceEvents": [{"ph": "B", "name": "x"}]})
        with pytest.raises(ValueError, match="dur"):
            validate_trace({"traceEvents": [
                {"ph": "X", "name": "x", "ts": 0.0, "pid": 1, "tid": 1}
            ]})


# ---------------------------------------------------------------------------
# Run manifests
# ---------------------------------------------------------------------------
class TestManifest:
    def test_build_write_read_round_trip(self, tmp_path):
        manifest = build_manifest(
            "bench",
            config={"iterations": 10},
            seeds=[0, 1],
            device="K1",
            artifacts={"report": "BENCH_pipeline.json"},
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["device_profile"]["name"] == "K1"
        assert manifest["seeds"] == [0, 1]
        assert "timestamp" not in json.dumps(manifest)  # byte-reproducible
        path = write_manifest(manifest, tmp_path / "m.json")
        assert read_manifest(path) == manifest

    def test_manifest_path_sits_next_to_the_artifact(self, tmp_path):
        artifact = tmp_path / "rows.json"
        assert manifest_path_for(artifact) == tmp_path / "rows.json.manifest.json"

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"schema": "other/9"}\n')
        with pytest.raises(TelemetryError, match="schema"):
            read_manifest(path)


# ---------------------------------------------------------------------------
# repro report
# ---------------------------------------------------------------------------
class TestReport:
    def _flight_file(self, tmp_path):
        recorder = EventRecorder()
        recorder.record("attack.offline_start", span="bench",
                        method="CFT+BR", n_flip_budget=2, seed=0)
        recorder.record("cft.round", span="bench", round=0, loss=0.9,
                        asr=0.5, candidates=10)
        recorder.record("cft.flip_committed", span="bench", round=0, page=1,
                        byte_offset=64, bit=7, direction=-1, old=236, new=108,
                        layer="fc.weight", index=4160, bits_changed=1)
        recorder.record("cft.flip_committed", span="bench", round=0, page=2,
                        byte_offset=8, bit=6, direction=1, old=3, new=67,
                        layer="fc.weight", index=8200, bits_changed=1)
        recorder.record("attack.offline_complete", span="bench",
                        method="CFT+BR", n_flip=2)
        recorder.record("online.plan", span="bench/online", required=2,
                        pages=2, matched=1, unmatched=1)
        recorder.record("massage.place", span="bench/online", page=1,
                        planned_frame=17, actual_frame=17, hit=True)
        recorder.record("verify.flip", span="bench/online", page=1,
                        byte_offset=64, bit=7, direction=-1, achieved=True,
                        cause="")
        recorder.record("verify.flip", span="bench/online", page=2,
                        byte_offset=8, bit=6, direction=1, achieved=False,
                        cause="unmatched_page")
        recorder.record("verify.summary", span="bench/online", required=2,
                        achieved=1, accidental_targeted=0,
                        accidental_elsewhere=0, r_match=50.0,
                        placement_verified=True)
        path = tmp_path / "run.events.jsonl"
        write_events_jsonl(recorder, path)
        return path

    def _journal_file(self, tmp_path):
        path = tmp_path / "sweep.journal.jsonl"
        lines = [
            {"kind": "header", "schema": 1, "grid_sha": "abc123",
             "total_tasks": 2},
            {"kind": "result", "task_id": "CFT/tinycnn/K1/s0", "status": "ok",
             "attempts": 1},
            {"kind": "result", "task_id": "CFT+BR/tinycnn/K1/s0",
             "status": "failed", "attempts": 2,
             "error": {"type": "AttackError", "message": "boom"}},
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        return path

    def test_detect_input_kind(self, tmp_path):
        assert detect_input_kind(self._flight_file(tmp_path)) == "flight"
        assert detect_input_kind(self._journal_file(tmp_path)) == "journal"
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json\n")
        with pytest.raises(TelemetryError, match="neither"):
            detect_input_kind(bogus)

    def test_flight_report_joins_commits_with_verdicts(self, tmp_path):
        path = self._flight_file(tmp_path)
        report = json.loads(render_report(path, fmt="json"))
        assert report["source"] == "flight"
        body = report["report"]
        assert body["run"]["method"] == "CFT+BR"
        outcomes = {f["page"]: f["online"] for f in body["flips"]}
        assert outcomes[1] == "achieved"
        assert outcomes[2] == "no compatible flippy frame (templating)"
        assert [f["page"] for f in body["failures"]] == [2]
        markdown = render_report(path, fmt="markdown")
        assert "1 / 2 planned flips achieved" in markdown
        assert "no compatible flippy frame (templating)" in markdown
        assert "236 -> 108" in markdown

    def test_report_is_byte_deterministic(self, tmp_path):
        flight = self._flight_file(tmp_path)
        journal = self._journal_file(tmp_path)
        for path in (flight, journal):
            for fmt in ("markdown", "json"):
                assert render_report(path, fmt=fmt) == render_report(path, fmt=fmt)

    def test_journal_report_lists_failure_causes(self, tmp_path):
        markdown = render_report(self._journal_file(tmp_path))
        assert "grid sha: `abc123`" in markdown
        assert "failed: 1" in markdown
        assert "AttackError: boom" in markdown

    def test_render_report_rejects_unknown_format(self, tmp_path):
        with pytest.raises(TelemetryError, match="format"):
            render_report(self._flight_file(tmp_path), fmt="yaml")


# ---------------------------------------------------------------------------
# Informational drift in the regression gate
# ---------------------------------------------------------------------------
class TestInformationalDrift:
    def test_histogram_and_event_drift_never_fail_the_gate(self):
        baseline = {
            "counters": {"pipeline.runs": 1.0},
            "spans": {},
            "histograms": {"hammer.flips": {"count": 10, "sum": 40.0}},
            "events": {"cft.round": 8},
        }
        candidate = {
            "counters": {"pipeline.runs": 1.0},
            "spans": {},
            "histograms": {"hammer.flips": {"count": 12, "sum": 40.0}},
            "events": {"cft.round": 9, "verify.flip": 2},
        }
        deviations = compare_reports(baseline, candidate)
        info = [d for d in deviations if not d.gated]
        assert {(d.kind, d.name) for d in info} == {
            ("histogram", "hammer.flips.count"),
            ("event", "cft.round"),
            ("event", "verify.flip"),
        }
        assert not any(d.failed for d in info)
        text = format_comparison(deviations)
        assert "0 failed / 1 gated" in text
        assert "3 informational drift line(s)" in text
        assert "[info]" in text

    def test_reports_without_those_sections_add_no_info_lines(self):
        baseline = {"counters": {"c": 1.0}, "spans": {}}
        candidate = {"counters": {"c": 1.0}, "spans": {}}
        deviations = compare_reports(baseline, candidate)
        assert all(d.gated for d in deviations)
        assert "informational" not in format_comparison(deviations)


# ---------------------------------------------------------------------------
# stdlib logging plumbing
# ---------------------------------------------------------------------------
class TestLogging:
    def test_get_logger_nests_foreign_names_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("repro.parallel.runner").name == "repro.parallel.runner"
        assert get_logger("tests.helper").name == "repro.tests.helper"

    def test_configure_is_idempotent_and_sets_level(self):
        logger = configure("info")
        handlers_before = list(logger.handlers)
        assert configure("debug") is logger
        assert logger.level == logging.DEBUG
        assert list(logger.handlers) == handlers_before
        with pytest.raises(ValueError, match="log level"):
            configure("loud")

    def test_verbosity_mapping(self):
        assert verbosity_to_level(0) == "warning"
        assert verbosity_to_level(1) == "info"
        assert verbosity_to_level(2) == "debug"
        assert verbosity_to_level(5) == "debug"
