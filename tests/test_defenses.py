"""Defense mechanics: each countermeasure's detection/prevention behavior."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.defenses import (
    BinarizedConv2d,
    BinarizedLinear,
    DeepDyveGuard,
    RadarDetector,
    SentiNetDetector,
    WeightEncodingDetector,
    WeightReconstructionDefense,
    binarize_network,
    encoding_overhead_estimate,
    pwc_penalty,
)
from repro.defenses.binarization import binarized_page_count, binarize_weights
from repro.defenses.clustering import cluster_tightness
from repro.nn import Linear

from tests.conftest import TinyCNN


class TestBinarization:
    def test_binarize_weights_values(self):
        w = Tensor(np.array([0.5, -0.25, 0.75], dtype=np.float32), requires_grad=True)
        out = binarize_weights(w)
        scale = 0.5
        np.testing.assert_allclose(out.numpy(), [scale, -scale, scale])

    def test_straight_through_gradient(self):
        w = Tensor(np.array([0.5, -2.0], dtype=np.float32), requires_grad=True)
        binarize_weights(w).sum().backward()
        np.testing.assert_allclose(w.grad, [1.0, 0.0])  # |w|>1 is masked

    def test_binarize_network_swaps_layers(self, tiny_model):
        converted = binarize_network(tiny_model)
        assert converted == 5  # three convs + two linears
        assert isinstance(tiny_model.conv1, BinarizedConv2d)
        assert isinstance(tiny_model.fc, BinarizedLinear)
        # Still runs forward.
        out = tiny_model(Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (1, 4)

    def test_binarization_shrinks_page_count_8x(self, tiny_model):
        # int8 deployment: 1 byte/weight; binarized: 1 bit/weight.
        int8_pages = (tiny_model.num_parameters() + 4095) // 4096
        assert binarized_page_count(tiny_model) <= max(1, int8_pages // 4)


class TestPWC:
    def test_penalty_zero_for_two_point_distribution(self):
        layer = Linear(4, 4, bias=False, rng=0)
        layer.weight.data = np.where(
            np.random.default_rng(0).random((4, 4)) > 0.5, 0.3, -0.3
        ).astype(np.float32)
        assert pwc_penalty(layer).item() == pytest.approx(0.0, abs=1e-6)

    def test_penalty_positive_for_spread_weights(self):
        layer = Linear(8, 8, bias=False, rng=0)
        assert pwc_penalty(layer).item() > 0

    def test_penalty_gradient_tightens_clusters(self):
        layer = Linear(16, 16, bias=False, rng=0)
        before = cluster_tightness(layer)
        for _ in range(50):
            layer.zero_grad()
            pwc_penalty(layer).backward()
            layer.weight.data = layer.weight.data - 0.05 * layer.weight.grad
        assert cluster_tightness(layer) < before * 0.5

    def test_requires_weight_tensor(self):
        from repro.nn import ReLU

        with pytest.raises(ValueError):
            pwc_penalty(ReLU())


class TestDeepDyve:
    def test_agreement_passes_through(self, tiny_dataset):
        model = TinyCNN(rng=0)
        guard = DeepDyveGuard(model, model)  # identical checker
        predictions, stats = guard.predict(tiny_dataset.images[:16])
        assert stats.alarms == 0
        assert len(predictions) == 16

    def test_persistent_fault_survives_rerun(self, tiny_dataset):
        deployed = TinyCNN(rng=0)
        checker = TinyCNN(rng=1)
        # Force disagreement: the "faulty" deployed model always answers 1,
        # the clean checker always answers 3.
        deployed.fc.bias.data = deployed.fc.bias.data + np.array([0, 100, 0, 0], np.float32)
        checker.fc.bias.data = checker.fc.bias.data + np.array([0, 0, 0, 100], np.float32)
        guard = DeepDyveGuard(deployed, checker)
        predictions, stats = guard.predict(tiny_dataset.images[:32])
        # Wherever there was an alarm, the deployed model's (persistent)
        # answer is still what comes out.
        from repro.autodiff import no_grad

        with no_grad():
            direct = deployed(Tensor(tiny_dataset.images[:32])).numpy().argmax(1)
        np.testing.assert_array_equal(predictions, direct)
        assert stats.alarms > 0  # different models must disagree somewhere
        assert stats.alarm_rate == stats.alarms / 32


class TestWeightEncoding:
    def test_detects_flip_in_protected_layer(self, tiny_quantized):
        detector = WeightEncodingDetector(tiny_quantized, rng=0)
        protected = detector.protected_layers[0]
        flat_index = tiny_quantized.offset_of(protected)
        tiny_quantized.apply_bit_flip(flat_index, 5)
        assert detector.detect(tiny_quantized) == [protected]

    def test_misses_flip_outside_protection(self, tiny_quantized):
        detector = WeightEncodingDetector(tiny_quantized, rng=0)
        protected = set(detector.protected_layers)
        victim = next(n for n in tiny_quantized.parameter_names if n not in protected)
        tiny_quantized.apply_bit_flip(tiny_quantized.offset_of(victim), 5)
        assert detector.detect(tiny_quantized) == []

    def test_coverage_is_partial_by_default(self, tiny_quantized):
        detector = WeightEncodingDetector(tiny_quantized, rng=0)
        assert 0.0 < detector.coverage(tiny_quantized) < 1.0

    def test_overhead_estimates_scale(self):
        small = encoding_overhead_estimate(1_000_000)
        reference = encoding_overhead_estimate(21_779_648)
        assert reference.execution_seconds == pytest.approx(834.27)
        assert reference.storage_megabytes == pytest.approx(374.86)
        assert small.execution_seconds < reference.execution_seconds


class TestRadar:
    def test_detects_msb_flip(self, tiny_quantized):
        detector = RadarDetector(tiny_quantized, group_size=64, protected_bits=(7,))
        tiny_quantized.apply_bit_flip(10, 7)
        report = detector.check(tiny_quantized)
        assert report.detected
        assert 10 // 64 in report.flagged_groups

    def test_misses_low_bit_flip(self, tiny_quantized):
        detector = RadarDetector(tiny_quantized, group_size=64, protected_bits=(7,))
        tiny_quantized.apply_bit_flip(10, 3)
        assert not detector.check(tiny_quantized).detected

    def test_full_protection_catches_everything(self, tiny_quantized):
        detector = RadarDetector(tiny_quantized, group_size=64, protected_bits=tuple(range(8)))
        tiny_quantized.apply_bit_flip(10, 0)
        assert detector.check(tiny_quantized).detected
        assert detector.time_overhead_percent == pytest.approx(40.11)

    def test_invalid_args(self, tiny_quantized):
        with pytest.raises(ValueError):
            RadarDetector(tiny_quantized, group_size=0)
        with pytest.raises(ValueError):
            RadarDetector(tiny_quantized, protected_bits=(9,))


class TestWeightReconstruction:
    def test_clips_outlier_flip(self, tiny_quantized):
        defense = WeightReconstructionDefense(tiny_quantized, num_sigmas=3.0)
        # A sign-bit flip creates a far outlier in its group.
        tiny_quantized.apply_bit_flip(5, 7)
        clipped = defense.reconstruct(tiny_quantized)
        assert clipped >= 1

    def test_no_clipping_on_clean_model(self, tiny_quantized):
        defense = WeightReconstructionDefense(tiny_quantized, num_sigmas=6.0)
        assert defense.reconstruct(tiny_quantized) == 0

    def test_in_range_flip_survives(self, tiny_quantized):
        defense = WeightReconstructionDefense(tiny_quantized, num_sigmas=3.0)
        before = tiny_quantized.flat_int8()
        tiny_quantized.apply_bit_flip(5, 0)  # LSB: tiny change, in range
        defense.reconstruct(tiny_quantized)
        after = tiny_quantized.flat_int8()
        assert after[5] != before[5]

    def test_invalid_sigma(self, tiny_quantized):
        from repro.errors import DefenseError

        with pytest.raises(DefenseError):
            WeightReconstructionDefense(tiny_quantized, num_sigmas=0)


class TestSentiNet:
    def test_analyze_returns_bounded_score(self, tiny_dataset):
        model = TinyCNN(rng=0)
        detector = SentiNetDetector(model, tiny_dataset.images[:16])
        verdict = detector.analyze(tiny_dataset.images[20])
        assert 0.0 <= verdict.fooled_fraction <= 1.0
        assert isinstance(verdict.flagged, bool)

    def test_false_positive_rate_bounded(self, tiny_dataset):
        model = TinyCNN(rng=0)
        detector = SentiNetDetector(model, tiny_dataset.images[:8])
        rate = detector.false_positive_rate(tiny_dataset.images[8:12])
        assert 0.0 <= rate <= 1.0

    def test_invalid_quantile(self, tiny_dataset):
        with pytest.raises(ValueError):
            SentiNetDetector(TinyCNN(rng=0), tiny_dataset.images[:4], saliency_quantile=1.5)
