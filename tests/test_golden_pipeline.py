"""Golden-file regression test: the seeded pipeline's exact result row.

Everything in the pipeline is seeded, so ``PipelineResult.as_row()`` is a
pure function of the code -- any numeric drift (a changed RNG stream, a
reordered reduction, a new default) shows up here as an exact mismatch,
with tolerance zero.

When a change *intentionally* alters the numbers, regenerate the snapshot:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_pipeline.py

and commit the new ``tests/golden/pipeline_row.json`` alongside the change.
"""

import json
import os
from pathlib import Path

from repro.attacks import AttackConfig, CFTAttack
from repro.core import BackdoorPipeline, MemoryConfig, PipelineConfig
from repro.quant import QuantizedModel

from tests.conftest import TinyCNN

GOLDEN_PATH = Path(__file__).parent / "golden" / "pipeline_row.json"


def _run_seeded_pipeline(tiny_dataset, tiny_test_dataset):
    pipeline = BackdoorPipeline(
        PipelineConfig(
            memory=MemoryConfig(
                device="K1",
                num_banks=8,
                rows_per_bank=512,
                attacker_buffer_pages=512,
                seed=3,
            )
        )
    )
    qmodel = QuantizedModel(TinyCNN(rng=0))
    config = AttackConfig(
        target_class=1, iterations=10, n_flip_budget=2, batch_size=16,
        trigger_size=4, seed=0,
    )
    result = pipeline.run(
        CFTAttack(config, bit_reduction=True),
        qmodel,
        tiny_dataset,
        tiny_test_dataset,
        target_class=1,
    )
    # Canonical JSON round-trip so the comparison sees exactly what the
    # snapshot file can represent.
    return json.loads(json.dumps(result.as_row(), sort_keys=True))


def test_pipeline_row_matches_golden_snapshot(tiny_dataset, tiny_test_dataset):
    row = _run_seeded_pipeline(tiny_dataset, tiny_test_dataset)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(row, indent=2, sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH}; generate it with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert row == golden, (
        "seeded pipeline row drifted from the golden snapshot (tolerance 0).\n"
        f"golden:  {json.dumps(golden, sort_keys=True)}\n"
        f"current: {json.dumps(row, sort_keys=True)}\n"
        "If the change is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 "
        "and commit the new snapshot."
    )
