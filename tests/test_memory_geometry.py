"""DRAM geometry and physical-address mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryModelError
from repro.memory.geometry import DRAMGeometry, PAGE_FRAME_SIZE


class TestGeometry:
    def test_totals(self):
        geo = DRAMGeometry(num_banks=4, rows_per_bank=8, row_size_bytes=8192)
        assert geo.total_bytes == 4 * 8 * 8192
        assert geo.total_frames == geo.total_bytes // PAGE_FRAME_SIZE
        assert geo.pages_per_row == 2

    def test_row_size_must_be_page_multiple(self):
        with pytest.raises(MemoryModelError):
            DRAMGeometry(row_size_bytes=5000)

    def test_non_positive_fields_raise(self):
        with pytest.raises(MemoryModelError):
            DRAMGeometry(num_banks=0)

    def test_address_out_of_range_raises(self):
        geo = DRAMGeometry(num_banks=2, rows_per_bank=2, row_size_bytes=8192)
        with pytest.raises(MemoryModelError):
            geo.address_of(geo.total_bytes)

    def test_column_is_byte_offset_in_row(self):
        geo = DRAMGeometry(num_banks=4, rows_per_bank=8)
        addr = geo.address_of(8192 + 17)
        assert addr.column == 17

    def test_consecutive_rows_spread_across_banks(self):
        geo = DRAMGeometry(num_banks=8, rows_per_bank=16)
        banks = {geo.address_of(chunk * 8192).bank for chunk in range(8)}
        assert len(banks) == 8  # a full rotation hits every bank

    def test_frames_in_row_inverts_frame_address(self):
        geo = DRAMGeometry(num_banks=4, rows_per_bank=8)
        for frame in range(0, geo.total_frames, 7):
            addr = geo.frame_address(frame)
            assert frame in geo.frames_in_row(addr.bank, addr.row)

    def test_frames_in_row_row_out_of_range(self):
        geo = DRAMGeometry(num_banks=2, rows_per_bank=4)
        with pytest.raises(MemoryModelError):
            geo.frames_in_row(0, 4)


@settings(max_examples=50, deadline=None)
@given(frame=st.integers(min_value=0, max_value=4 * 16 * 2 - 1))
def test_property_every_frame_has_exactly_one_row(frame):
    """Property: frame -> (bank, row) is a function and consistent."""
    geo = DRAMGeometry(num_banks=4, rows_per_bank=16, row_size_bytes=8192)
    addr = geo.frame_address(frame)
    frames = geo.frames_in_row(addr.bank, addr.row)
    assert frames.count(frame) == 1
    assert len(frames) == geo.pages_per_row
