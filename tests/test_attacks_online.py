"""Online phase: placement, hammering and r_match scoring (tiny scale)."""

import numpy as np
import pytest

from repro.attacks import OnlineInjector
from repro.attacks.base import OfflineAttackResult
from repro.data.trigger import TriggerPattern
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.quant.bits import flip_bit
from repro.rowhammer import HammerEngine, MemoryProfiler, get_profile


@pytest.fixture
def memory_setup():
    """OS + engine + attacker buffer + profile, on a flippy device."""
    geometry = DRAMGeometry(num_banks=8, rows_per_bank=512, row_size_bytes=8192)
    dram = DRAMArray(geometry, flips_per_page_mean=80.0, seed=5)
    os_model = OSMemoryModel(dram, rng=2)
    engine = HammerEngine(dram, get_profile("K1"))
    buffer = os_model.mmap_anonymous(768)
    profile = MemoryProfiler(os_model, engine).profile_mapping(buffer, n_sides=7)
    return os_model, engine, buffer, profile


def offline_result_with_flips(num_pages: int, flips, trigger=None) -> OfflineAttackResult:
    """Craft an offline result with specific (byte_index, bit[, direction]) flips.

    ``direction`` defaults to +1 (0 -> 1); for -1 the original byte has the
    bit set and the modified byte clears it.
    """
    size = num_pages * 4096
    original = np.zeros(size, dtype=np.int8)
    modified = original.copy()
    for flip in flips:
        byte_index, bit = flip[0], flip[1]
        direction = flip[2] if len(flip) > 2 else 1
        if direction == -1:
            original[byte_index] = flip_bit(original[byte_index : byte_index + 1], bit)[0]
        else:
            modified[byte_index] = flip_bit(modified[byte_index : byte_index + 1], bit)[0]
    return OfflineAttackResult(
        original_weights=original,
        backdoored_weights=modified,
        trigger=trigger or TriggerPattern.square((3, 16, 16), 4),
        n_flip=len(flips),
        loss_history=[],
        method="crafted",
    )


def achievable_flips(profile, count):
    """Pick one profiled flip from each of ``count`` distinct frames.

    Returns (byte_index_in_file, bit, direction) rows where file page i is
    matched to the i-th chosen frame's flip, guaranteeing templating can
    succeed regardless of the (small) test profile's coverage.
    """
    per_frame = {}
    for record in profile.records:
        per_frame.setdefault(record.frame, record)
    chosen = [per_frame[f] for f in sorted(per_frame)[:count]]
    assert len(chosen) == count, "profile too sparse for the test"
    return [
        (page * 4096 + record.byte_offset, record.bit, record.direction)
        for page, record in enumerate(chosen)
    ]


class TestOnlineInjection:
    def test_sparse_single_bit_flips_inject_fully(self, memory_setup):
        os_model, engine, buffer, profile = memory_setup
        flips = achievable_flips(profile, 3)
        offline = offline_result_with_flips(3, flips)
        injector = OnlineInjector(os_model, engine, profile, buffer, n_sides=7)
        result = injector.inject(offline, file_id="sparse.bin")
        assert result.placement_verified
        assert result.n_flip_required == 3
        assert result.n_flip_achieved == 3
        assert result.unmatched_pages == []
        assert result.r_match > 99.0
        # The achieved flips are exactly where the plan said.
        for byte_index, _, _ in flips:
            assert result.corrupted_weights[byte_index] != offline.original_weights[byte_index]

    def test_dense_page_falls_back_to_single_bit(self, memory_setup):
        os_model, engine, buffer, profile = memory_setup
        # 30 flips in one page: no frame covers all; fallback picks one.
        flips = [(i * 16, i % 7) for i in range(30)]
        offline = offline_result_with_flips(2, flips)
        injector = OnlineInjector(os_model, engine, profile, buffer, n_sides=7)
        result = injector.inject(offline, file_id="dense.bin")
        assert result.n_flip_required == 30
        assert result.n_flip_achieved <= 2
        assert result.r_match < 10.0

    def test_no_fallback_leaves_page_unmatched(self, memory_setup):
        os_model, engine, buffer, profile = memory_setup
        flips = [(i * 16, i % 7) for i in range(30)]
        offline = offline_result_with_flips(2, flips)
        injector = OnlineInjector(os_model, engine, profile, buffer, n_sides=7)
        result = injector.inject(offline, file_id="nofb.bin", fallback_single_bit=False)
        assert result.n_flip_achieved == 0
        assert result.unmatched_pages == [0]

    def test_hammer_time_accounted(self, memory_setup):
        os_model, engine, buffer, profile = memory_setup
        offline = offline_result_with_flips(2, achievable_flips(profile, 1))
        injector = OnlineInjector(os_model, engine, profile, buffer, n_sides=7)
        result = injector.inject(offline, file_id="time.bin")
        assert result.matched_pages
        assert result.hammer_seconds == pytest.approx(0.4, rel=0.01)  # one 7-sided row

    def test_corrupted_weights_visible_through_page_cache(self, memory_setup):
        os_model, engine, buffer, profile = memory_setup
        flips = achievable_flips(profile, 1)
        byte_index, _, _ = flips[0]
        offline = offline_result_with_flips(2, flips)
        injector = OnlineInjector(os_model, engine, profile, buffer, n_sides=7)
        result = injector.inject(offline, file_id="cache.bin")
        assert result.n_flip_achieved == 1
        # A fresh mapping (victim re-opens the file) sees the corruption.
        fresh = os_model.mmap_file("cache.bin")
        page0 = os_model.read_page(fresh, 0)
        assert page0[byte_index % 4096] != np.uint8(offline.original_weights[byte_index])
        assert not os_model.page_cache.is_dirty("cache.bin", 0)
