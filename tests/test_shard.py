"""Shard partition contract: ``SweepGrid.shard`` / ``ShardSpec``.

Property tests pin down the three invariants ``repro merge`` relies on --
shards of the canonical grid order are disjoint, jointly exhaustive and
order-preserving (concatenating them by index reproduces ``expand()``
exactly) -- plus the balance guarantee (sizes differ by at most one) and
the ``i/n`` parsing/validation surface of :class:`ShardSpec`.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.parallel import ShardSpec, SweepGrid, SweepJournal, run_sweep


def _grid(n_methods=2, n_models=1, n_seeds=1):
    return SweepGrid(
        methods=tuple(f"m{i}" for i in range(n_methods)),
        models=tuple(f"net{i}" for i in range(n_models)),
        devices=("K1",),
        seeds=tuple(range(n_seeds)),
    )


def _ok_runner(payload):
    return {
        "status": "ok",
        "row": {"task_id": "%(method)s|%(seed)s" % payload["task"]},
        "duration_seconds": 0.0,
    }


# ---------------------------------------------------------------------------
# Partition properties.
@settings(max_examples=60, deadline=None)
@given(
    n_methods=st.integers(1, 5),
    n_models=st.integers(1, 3),
    n_seeds=st.integers(1, 4),
    count=st.integers(1, 12),
)
def test_shards_partition_the_grid(n_methods, n_models, n_seeds, count):
    grid = _grid(n_methods, n_models, n_seeds)
    tasks = grid.expand()
    shards = [grid.shard(index, count) for index in range(count)]

    # Order-preserving and jointly exhaustive: concatenation IS expand().
    assert [t for shard in shards for t in shard] == tasks
    # Disjoint: no task id appears in two shards.
    ids = [t.task_id for shard in shards for t in shard]
    assert len(set(ids)) == len(ids) == len(tasks)
    # Balanced: contiguous block sizes differ by at most one, larger first.
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=60, deadline=None)
@given(total=st.integers(0, 100), count=st.integers(1, 12))
def test_shard_bounds_tile_any_total(total, count):
    bounds = [ShardSpec(index, count).bounds(total) for index in range(count)]
    assert bounds[0][0] == 0 and bounds[-1][1] == total
    for (_, end), (start, _) in zip(bounds, bounds[1:]):
        assert end == start  # contiguous, no gap and no overlap


def test_shard_allows_more_shards_than_tasks():
    grid = _grid(n_methods=2)
    shards = [grid.shard(index, 5) for index in range(5)]
    assert [len(s) for s in shards] == [1, 1, 0, 0, 0]


# ---------------------------------------------------------------------------
# ShardSpec parsing and validation.
def test_shard_spec_parse_and_str_round_trip():
    spec = ShardSpec.parse("2/5")
    assert (spec.index, spec.count) == (2, 5)
    assert str(spec) == "2/5"
    assert ShardSpec.parse(str(spec)) == spec


@pytest.mark.parametrize("text", ["", "2", "a/b", "1/2/3", "1.5/2"])
def test_shard_spec_parse_rejects_malformed(text):
    with pytest.raises(SweepError, match="shard spec"):
        ShardSpec.parse(text)


@pytest.mark.parametrize("index,count", [(-1, 2), (2, 2), (5, 2), (0, 0), (0, -1)])
def test_shard_spec_rejects_out_of_range(index, count):
    with pytest.raises(SweepError):
        ShardSpec(index, count)


def test_shard_spec_coerce_accepts_all_forms():
    spec = ShardSpec(1, 3)
    assert ShardSpec.coerce(spec) is spec
    assert ShardSpec.coerce("1/3") == spec
    assert ShardSpec.coerce((1, 3)) == spec
    with pytest.raises(SweepError, match="shard spec"):
        ShardSpec.coerce(object())


# ---------------------------------------------------------------------------
# The runner's use of the spec: slice semantics and journal identity.
@settings(max_examples=20, deadline=None)
@given(count=st.integers(1, 6))
def test_sharded_runs_concatenate_to_the_unsharded_rows(count):
    grid = _grid(n_methods=3, n_seeds=2)
    reference = run_sweep(grid, workers=1, task_runner=_ok_runner)
    sharded = [
        run_sweep(grid, workers=1, task_runner=_ok_runner, shard=(index, count))
        for index in range(count)
    ]
    rows = [row for result in sharded for row in result.rows]
    assert json.dumps(rows, sort_keys=True) == json.dumps(reference.rows, sort_keys=True)
    for index, result in enumerate(sharded):
        assert result.grid_sha == reference.grid_sha  # always the FULL grid's sha
        assert result.total_tasks == len(grid.expand())
        assert (result.shard.index, result.shard.count) == (index, count)


def test_shard_journal_header_records_the_slice(tmp_path):
    grid = _grid(n_methods=3)
    journal = tmp_path / "s1.jsonl"
    run_sweep(grid, workers=1, task_runner=_ok_runner, shard="1/2",
              journal_path=str(journal))
    header = SweepJournal.load(journal).header
    assert header["grid_sha"] == grid.grid_sha()
    assert header["total_tasks"] == 3
    assert (header["shard_index"], header["shard_count"]) == (1, 2)
    assert header["shard_task_ids"] == [t.task_id for t in grid.shard(1, 2)]


def test_unsharded_journal_header_is_the_trivial_shard(tmp_path):
    grid = _grid(n_methods=2)
    journal = tmp_path / "all.jsonl"
    run_sweep(grid, workers=1, task_runner=_ok_runner, journal_path=str(journal))
    header = SweepJournal.load(journal).header
    assert (header["shard_index"], header["shard_count"]) == (0, 1)
    assert header["shard_task_ids"] == [t.task_id for t in grid.expand()]
