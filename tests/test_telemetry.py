"""Telemetry layer: registry merges, nested spans, disabled no-ops,
JSON/JSONL round-trips and the benchmark-regression gate."""

import json

import pytest

from repro import telemetry
from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    TelemetryError,
    build_report,
    read_json,
    read_jsonl,
    write_json,
    write_jsonl,
)
from repro.telemetry.regression import compare_reports


class TestRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("bits").add(3)
        registry.counter("bits").add(2)
        assert registry.snapshot()["counters"]["bits"] == 5
        with pytest.raises(TelemetryError):
            registry.counter("bits").add(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("asr").set(0.2)
        registry.gauge("asr").set(0.9)
        assert registry.snapshot()["gauges"]["asr"] == 0.9

    def test_histogram_summary_is_deterministic(self):
        registry = MetricsRegistry()
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            registry.histogram("lat").observe(value)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 5
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["mean"] == 3.0
        assert summary["p50"] == 3.0

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("flips").add(2)
        b.counter("flips").add(3)
        b.counter("only_b").add(1)
        a.gauge("asr").set(0.5)
        b.gauge("asr").set(0.8)
        a.histogram("t").observe(1.0)
        b.histogram("t").observe(2.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["flips"] == 5  # counters add
        assert snap["counters"]["only_b"] == 1  # new metrics appear
        assert snap["gauges"]["asr"] == 0.8  # gauges: other wins
        assert snap["histograms"]["t"]["count"] == 2  # histograms concatenate

    def test_merge_is_seed_safe(self):
        """Merging shards in any order yields identical counter totals."""
        shards = []
        for value in (1, 2, 3):
            shard = MetricsRegistry()
            shard.counter("n").add(value)
            shards.append(shard)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for shard in shards:
            forward.merge(shard)
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.snapshot() == backward.snapshot()


class TestSpans:
    def test_nesting_builds_paths(self):
        tracer = SpanTracer()
        with tracer.span("pipeline"):
            with tracer.span("offline"):
                pass
            with tracer.span("online"):
                with tracer.span("hammer"):
                    pass
        assert [r.path for r in tracer.all_records()] == [
            "pipeline", "pipeline/offline", "pipeline/online", "pipeline/online/hammer",
        ]
        assert tracer.find("pipeline/online/hammer") is not None

    def test_durations_nonzero_and_parent_covers_child(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.duration_seconds >= inner.duration_seconds >= 0.0

    def test_repeated_stage_aggregates(self):
        tracer = SpanTracer()
        with tracer.span("train"):
            for epoch in range(3):
                with tracer.span("epoch", epoch=epoch):
                    pass
        stats = tracer.stage_durations()
        assert stats["train/epoch"]["count"] == 3
        assert stats["train"]["count"] == 1

    def test_span_closes_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer._stack == []
        assert tracer.roots[0].duration_seconds >= 0.0

    def test_reset_inside_open_span_requires_force(self):
        tracer = SpanTracer()
        with tracer.span("open"):
            with pytest.raises(TelemetryError):
                tracer.reset()
            tracer.reset(force=True)
        assert tracer.roots == []

    def test_slash_in_name_rejected(self):
        tracer = SpanTracer()
        with pytest.raises(TelemetryError):
            with tracer.span("a/b"):
                pass


class TestDisabledMode:
    def test_disabled_records_nothing(self):
        assert not telemetry.enabled()  # the conftest guard's default
        with telemetry.span("ghost"):
            telemetry.counter_add("ghost.counter", 7)
            telemetry.gauge_set("ghost.gauge", 1.0)
            telemetry.histogram_observe("ghost.hist", 1.0)
        report = telemetry.dump()
        assert report["spans"] == {}
        assert report["counters"] == {}
        assert report["gauges"] == {}
        assert report["histograms"] == {}

    def test_disabled_span_is_shared_noop(self):
        first, second = telemetry.span("a"), telemetry.span("b")
        assert first is second  # no per-call allocation on the hot path

    def test_enable_disable_toggles_recording(self):
        telemetry.enable()
        telemetry.counter_add("real", 1)
        telemetry.disable()
        telemetry.counter_add("real", 100)
        assert telemetry.dump()["counters"] == {"real": 1}


class TestExport:
    def _populate(self):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        registry.counter("online.bits_flipped").add(4)
        registry.gauge("attack.asr").set(0.97)
        registry.histogram("epoch_seconds").observe(0.5)
        registry.histogram("epoch_seconds").observe(0.7)
        with tracer.span("bench"):
            with tracer.span("train", epochs=2):
                pass
            with tracer.span("attack"):
                pass
        return registry, tracer

    def test_json_report_round_trip(self, tmp_path):
        registry, tracer = self._populate()
        report = build_report(registry, tracer, meta={"seed": 0})
        path = tmp_path / "BENCH_pipeline.json"
        write_json(report, path)
        loaded = read_json(path)
        assert loaded == json.loads(json.dumps(report))  # stable through JSON
        assert loaded["meta"]["seed"] == 0
        assert set(loaded["spans"]) == {"bench", "bench/train", "bench/attack"}

    def test_read_json_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(TelemetryError):
            read_json(path)

    def test_jsonl_round_trip(self, tmp_path):
        registry, tracer = self._populate()
        path = tmp_path / "telemetry.jsonl"
        lines = write_jsonl(registry, tracer, path)
        assert lines == len(path.read_text().splitlines())
        registry2, tracer2 = read_jsonl(path)
        assert registry2.snapshot() == registry.snapshot()
        assert registry2.histogram_values() == registry.histogram_values()
        assert tracer2.stage_durations() == tracer.stage_durations()
        assert [r.attributes for r in tracer2.all_records()] == [
            r.attributes for r in tracer.all_records()
        ]


class TestRegressionGate:
    def _report(self, bits=4.0, seconds=1.0):
        return {
            "schema": telemetry.SCHEMA,
            "counters": {"online.bits_flipped": bits},
            "spans": {
                "bench": {"count": 1, "total_seconds": seconds,
                          "min_seconds": seconds, "max_seconds": seconds},
                "bench/tiny": {"count": 1, "total_seconds": 0.001,
                               "min_seconds": 0.001, "max_seconds": 0.001},
            },
        }

    def test_identical_reports_pass(self):
        deviations = compare_reports(self._report(), self._report())
        assert not any(d.failed for d in deviations)

    def test_counter_drift_fails(self):
        deviations = compare_reports(self._report(bits=4), self._report(bits=6))
        failed = [d for d in deviations if d.failed]
        assert [d.name for d in failed] == ["online.bits_flipped"]

    def test_wall_time_drift_fails(self):
        deviations = compare_reports(self._report(seconds=1.0), self._report(seconds=2.0))
        assert any(d.failed and d.name == "bench" for d in deviations)

    def test_sub_noise_spans_skipped(self):
        base, cand = self._report(), self._report()
        cand["spans"]["bench/tiny"]["total_seconds"] = 0.004  # 4x but < min_seconds
        assert not any(d.failed for d in compare_reports(base, cand))

    def test_missing_counter_fails(self):
        base, cand = self._report(), self._report()
        del cand["counters"]["online.bits_flipped"]
        assert any(d.failed for d in compare_reports(base, cand))

    def test_missing_span_fails(self):
        base, cand = self._report(), self._report()
        del cand["spans"]["bench"]
        assert any(d.failed and d.kind == "span" for d in compare_reports(base, cand))

    def test_histogram_and_event_drift_is_informational_only(self):
        """Histogram/event drift surfaces as ``gated=False`` lines that can
        never fail the build, and format_comparison labels them as info."""
        from repro.telemetry.regression import format_comparison

        base, cand = self._report(), self._report()
        base["histograms"] = {"train.loss": {"count": 4, "sum": 2.0}}
        cand["histograms"] = {"train.loss": {"count": 8, "sum": 4.0}}
        base["events"] = {"task.done": 6}
        cand["events"] = {"task.done": 3}
        deviations = compare_reports(base, cand)
        drift = [d for d in deviations if not d.gated]
        assert {(d.kind, d.name) for d in drift} == {
            ("histogram", "train.loss.count"),
            ("histogram", "train.loss.sum"),
            ("event", "task.done"),
        }
        assert not any(d.failed for d in drift)
        text = format_comparison(deviations)
        assert "0 failed" in text and "3 informational drift line(s)" in text
        assert text.count("[info]") == 3


class TestBenchTrend:
    def _report(self, seconds=1.0, speedup=None):
        report = {
            "schema": telemetry.SCHEMA,
            "counters": {},
            "gauges": {},
            "spans": {
                "bench": {"count": 1, "total_seconds": seconds,
                          "min_seconds": seconds, "max_seconds": seconds},
                "bench/sub": {"count": 1, "total_seconds": 0.5,
                              "min_seconds": 0.5, "max_seconds": 0.5},
            },
        }
        if speedup is not None:
            report["gauges"]["engine.batched_speedup"] = speedup
        return report

    def test_trend_table_lists_runs_in_order(self):
        from repro.telemetry.regression import format_trend

        table = format_trend(
            [("baseline", self._report(1.0, 2.0)), ("run42", self._report(1.5, 2.5))]
        )
        assert "span.bench.seconds" in table
        assert "gauge.engine.batched_speedup" in table
        assert table.index("baseline") < table.index("run42")
        assert "bench-trend: 2 run(s), informational only" in table
        # Sub-spans stay out of the trend; the regression gate covers them.
        assert "bench/sub" not in table

    def test_trend_missing_metric_renders_na_and_never_raises(self):
        from repro.telemetry.regression import format_trend

        table = format_trend(
            [("old", self._report(1.0)), ("new", self._report(1.0, 3.0))]
        )
        assert "n/a" in table

    def test_trend_empty_input(self):
        from repro.telemetry.regression import format_trend

        assert format_trend([]) == "bench-trend: no reports"


class TestPipelineIntegration:
    def test_enabled_training_records_epochs(self, tiny_model, tiny_dataset):
        from repro.core.training import TrainingConfig, train_model

        telemetry.enable()
        train_model(tiny_model, tiny_dataset, TrainingConfig(epochs=2, seed=0))
        report = telemetry.dump()
        assert report["counters"]["train.epochs"] == 2
        assert report["spans"]["train.epoch"]["count"] == 2

    def test_hammer_counters(self, small_dram):
        from repro.rowhammer.device_profiles import get_profile
        from repro.rowhammer.hammer import HammerEngine

        telemetry.enable()
        engine = HammerEngine(small_dram, get_profile("K1"))
        engine.hammer_victim(0, 1, n_sides=7)
        counters = telemetry.dump()["counters"]
        assert counters["hammer.attempts"] == 1
        assert counters["hammer.simulated_seconds"] == pytest.approx(0.4)


class TestWorkerShipping:
    """The primitives sweep workers use to ship telemetry across processes."""

    def test_merge_snapshot_folds_plain_dicts(self):
        registry = MetricsRegistry()
        registry.counter("flips").add(1)
        registry.gauge("loss").set(9.0)
        registry.merge_snapshot(
            counters={"flips": 2, "rounds": 1},
            gauges={"loss": 0.5, "absent": None},
            histogram_values={"epoch_seconds": [1.0, 2.0]},
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"flips": 3, "rounds": 1}
        assert snapshot["gauges"] == {"loss": 0.5}  # last writer wins, None skipped
        assert registry.histogram_values()["epoch_seconds"] == [1.0, 2.0]

    def test_span_record_dict_round_trip(self):
        from repro.telemetry.spans import SpanRecord

        record = SpanRecord(name="a", path="a", duration_seconds=1.0,
                            attributes={"k": 1})
        record.children.append(SpanRecord(name="b", path="a/b", duration_seconds=0.5))
        rebuilt = SpanRecord.from_dict(record.to_dict())
        assert rebuilt.to_dict() == record.to_dict()

    def test_attach_rebases_under_the_open_span(self):
        from repro.telemetry.spans import SpanRecord

        tracer = SpanTracer()
        shipped = SpanRecord(name="task", path="stale/prefix/task")
        shipped.children.append(SpanRecord(name="stage", path="stale/prefix/task/stage"))
        with tracer.span("sweep"):
            tracer.attach(shipped)
        assert shipped.path == "sweep/task"
        assert shipped.children[0].path == "sweep/task/stage"
        assert "sweep/task/stage" in tracer.stage_durations()
        # Without an open span the record becomes a root.
        orphan = tracer.attach(SpanRecord(name="solo", path="x/solo"))
        assert orphan.path == "solo" and orphan in tracer.roots

    def test_isolated_swaps_and_restores_the_module_globals(self):
        telemetry.enable()
        telemetry.counter_add("outer", 1)
        outer_registry = telemetry.get_registry()
        with telemetry.isolated(enable=True) as (registry, tracer):
            assert telemetry.get_registry() is registry
            telemetry.counter_add("inner", 5)
            with telemetry.span("inner_stage"):
                pass
            assert registry.snapshot()["counters"] == {"inner": 5}
        assert telemetry.get_registry() is outer_registry
        assert telemetry.get_registry().snapshot()["counters"] == {"outer": 1}
        assert telemetry.get_tracer().find("inner_stage") is None

    def test_isolated_restores_enabled_flag(self):
        assert not telemetry.enabled()
        with telemetry.isolated(enable=True):
            assert telemetry.enabled()
        assert not telemetry.enabled()
