"""The determinism contract of multi-host sharding + ``repro merge``.

Three layers, cheapest first:

1. **Fake-runner byte identity**: for n in {1, 2, 3}, merging n shard
   journals reproduces the unsharded sweep's rows, telemetry snapshot and
   flight record byte-for-byte -- including after a shard is killed
   mid-sweep and resumed.
2. **Fault injection**: every malformed-shard scenario raises a
   :class:`MergeError` with the documented machine-readable ``cause``, and
   only the coverage failures degrade under ``allow_incomplete``.
3. **CLI end-to-end** (tier-1 acceptance): the real micro-scale pipeline,
   sharded n-ways through ``repro sweep --shard`` and reassembled with
   ``repro merge``, is byte-identical to the unsharded run -- rows, flight
   record and manifest digests alike.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import telemetry
from repro.errors import MergeError
from repro.parallel import (
    SweepGrid,
    SweepJournal,
    SweepTask,
    merge_journals,
    merged_events,
    merged_metrics,
    run_sweep,
    write_merged_events,
    write_merged_journal,
    write_merged_rows,
)


# ---------------------------------------------------------------------------
# Fake task runners (module-level so pool tests could pickle them, and so
# every test shares one deterministic row/metrics/events shape).
def _rich_runner(payload):
    """Deterministic full-width row plus metrics and a flight-record event."""
    task = SweepTask.from_json(payload["task"])
    value = float(task.seed * 10 + len(task.method))
    return {
        "status": "ok",
        "row": {
            "model": task.model, "device": task.device, "seed": task.seed,
            "method": task.method, "offline_n_flip": value, "offline_ta": 90.0,
            "offline_asr": 80.0, "online_n_flip": value, "online_ta": 88.0,
            "online_asr": 79.0, "r_match": 100.0,
        },
        "duration_seconds": 0.01,
        "metrics": {
            "counters": {"worker.flips": value},
            "gauges": {"worker.last_seed": float(task.seed)},
            "histogram_values": {"worker.loss": [value / 100.0]},
        },
        "spans": [],
        "events": [
            {"seq": 0, "kind": "task.done", "span": "attack",
             "data": {"task_id": task.task_id}},
        ],
    }


def _plain_runner(payload):
    """Rows only -- no metrics, no events (a shard run without --events)."""
    outcome = _rich_runner(payload)
    return {k: v for k, v in outcome.items() if k in ("status", "row", "duration_seconds")}


def _grid(methods=("a", "b", "c"), seeds=(0, 1)):
    return SweepGrid(methods=methods, models=("m",), devices=("K1",), seeds=seeds)


def _make_shards(dirpath, grid, count, runner=_rich_runner):
    """One journal per shard, exactly as ``count`` hosts would produce."""
    dirpath = Path(dirpath)
    dirpath.mkdir(parents=True, exist_ok=True)
    paths = []
    for index in range(count):
        path = dirpath / f"shard{index}.jsonl"
        run_sweep(grid, workers=1, task_runner=runner, shard=(index, count),
                  journal_path=str(path))
        paths.append(path)
    return paths


def _edit_header(path, **changes):
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header.update(changes)
    lines[0] = json.dumps(header, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")


def _record_line(path, task_id):
    for line in path.read_text().splitlines():
        event = json.loads(line)
        if event.get("kind") == "result" and event.get("task_id") == task_id:
            return line
    raise AssertionError(f"no result for {task_id!r} in {path}")


def _drop_record(path, task_id):
    lines = [
        line for line in path.read_text().splitlines()
        if json.loads(line).get("task_id") != task_id
    ]
    path.write_text("\n".join(lines) + "\n")


def _append_line(path, line):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


# ---------------------------------------------------------------------------
# Byte identity: merge(shards(n)) == unsharded run, for n in {1, 2, 3}.
def test_merge_rows_and_metrics_match_unsharded_run(tmp_path):
    grid = _grid()
    telemetry.enable()
    telemetry.reset()
    reference = run_sweep(grid, workers=1, task_runner=_rich_runner,
                          capture_telemetry=True)
    registry = telemetry.get_registry()
    expected_rows = json.dumps(reference.rows, indent=2, sort_keys=True) + "\n"
    expected_counters = registry.snapshot()["counters"]
    expected_gauges = registry.snapshot()["gauges"]
    # The wall-clock task-duration histogram is outside the contract.
    expected_hist = {
        name: values for name, values in registry.histogram_values().items()
        if name != "sweep.task_seconds"
    }

    for count in (1, 2, 3):
        result = merge_journals(_make_shards(tmp_path / f"n{count}", grid, count))
        assert result.grid_sha == reference.grid_sha
        assert result.total_tasks == len(grid.expand())
        assert not result.missing_task_ids and not result.missing_shards
        rows_path = write_merged_rows(result, tmp_path / f"rows{count}.json")
        assert rows_path.read_text() == expected_rows
        metrics = merged_metrics(result)
        assert metrics["counters"] == expected_counters
        assert metrics["gauges"] == expected_gauges
        assert metrics["histogram_values"] == expected_hist


def test_merged_events_match_the_in_process_flight_record(tmp_path):
    grid = _grid()
    telemetry.enable_events()
    reference = run_sweep(grid, workers=1, task_runner=_rich_runner)
    expected = tmp_path / "reference.events.jsonl"
    telemetry.dump_events(
        str(expected), meta={"command": "sweep", "grid_sha": reference.grid_sha}
    )
    for count in (1, 2, 3):
        result = merge_journals(_make_shards(tmp_path / f"n{count}", grid, count))
        merged_path = tmp_path / f"events{count}.jsonl"
        write_merged_events(result, merged_path)
        assert merged_path.read_bytes() == expected.read_bytes()


def test_merge_tolerates_empty_shards_of_an_oversplit_grid(tmp_path):
    grid = _grid(methods=("a", "b"), seeds=(0,))  # 2 tasks, 5 shards
    result = merge_journals(_make_shards(tmp_path, grid, 5))
    assert [row["method"] for row in result.rows] == ["a", "b"]
    assert result.total_tasks == 2 and len(result.shards) == 5


def test_killed_shard_resumes_and_merges_byte_identically(tmp_path):
    grid = _grid()
    reference = run_sweep(grid, workers=1, task_runner=_rich_runner)
    expected_rows = json.dumps(reference.rows, indent=2, sort_keys=True) + "\n"
    paths = _make_shards(tmp_path, grid, 2)

    # Kill simulation: shard 0 keeps its header, first result and a torn line.
    lines = paths[0].read_text().splitlines(True)
    paths[0].write_text("".join(lines[:2]) + lines[2][: len(lines[2]) // 2])
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "missing-result"

    resumed = run_sweep(grid, workers=1, task_runner=_rich_runner, shard=(0, 2),
                        journal_path=str(paths[0]), resume=True)
    assert resumed.resumed_count == 1

    result = merge_journals(paths)
    rows_path = write_merged_rows(result, tmp_path / "rows.json")
    assert rows_path.read_text() == expected_rows
    # The resumed task's flight record came back from the journal, so the
    # merged stream is still complete and in grid order.
    events = merged_events(result)
    assert [e.data["task_id"] for e in events.events] == result.task_ids


def test_merged_journal_round_trips_through_merge_and_reports_gaps(tmp_path):
    grid = _grid()
    paths = _make_shards(tmp_path, grid, 3)
    result = merge_journals(paths)
    merged = write_merged_journal(result, tmp_path / "merged.jsonl")

    header = SweepJournal.load(merged).header
    assert (header["shard_index"], header["shard_count"]) == (0, 1)
    assert header["merged_from"] == 3
    again = merge_journals([merged])
    assert again.rows == result.rows and again.grid_sha == result.grid_sha

    # A *partial* merged journal honestly re-reports its coverage gap.
    partial = merge_journals(paths[:-1], allow_incomplete=True)
    partial_path = write_merged_journal(partial, tmp_path / "partial.jsonl")
    with pytest.raises(MergeError) as exc:
        merge_journals([partial_path])
    assert exc.value.cause == "incomplete-coverage"
    reread = merge_journals([partial_path], allow_incomplete=True)
    assert reread.rows == partial.rows


# ---------------------------------------------------------------------------
# Fault injection: every malformed-shard scenario, by structured cause.
def test_merge_rejects_empty_and_unreadable_inputs(tmp_path):
    with pytest.raises(MergeError) as exc:
        merge_journals([])
    assert exc.value.cause == "no-journals"
    with pytest.raises(MergeError) as exc:
        merge_journals([tmp_path / "absent.jsonl"])
    assert exc.value.cause == "unreadable-journal"
    assert exc.value.details["path"].endswith("absent.jsonl")


def test_merge_rejects_journal_without_header(tmp_path):
    path = tmp_path / "headless.jsonl"
    path.write_text('{"kind": "result", "task_id": "t", "status": "ok", "row": {}}\n')
    with pytest.raises(MergeError) as exc:
        merge_journals([path])
    assert exc.value.cause == "missing-header"


def test_merge_rejects_pre_sharding_journal(tmp_path):
    path = tmp_path / "old.jsonl"
    with SweepJournal(path) as journal:
        journal.append_header(grid_sha="abc", total_tasks=1)  # no shard fields
    with pytest.raises(MergeError) as exc:
        merge_journals([path])
    assert exc.value.cause == "missing-shard-metadata"
    assert "shard_index" in exc.value.details["fields"]


def test_merge_rejects_mismatched_grid_shas(tmp_path):
    grid_a, grid_b = _grid(), _grid(methods=("x", "y", "z"))
    s0 = _make_shards(tmp_path / "a", grid_a, 2)[0]
    s1 = _make_shards(tmp_path / "b", grid_b, 2)[1]
    with pytest.raises(MergeError) as exc:
        merge_journals([s0, s1])
    assert exc.value.cause == "sha-mismatch"
    # The error names both offending SHAs.
    assert grid_a.grid_sha() in str(exc.value) and grid_b.grid_sha() in str(exc.value)


def test_merge_rejects_disagreeing_shard_counts(tmp_path):
    grid = _grid()
    s0 = _make_shards(tmp_path / "two", grid, 2)[0]
    s1 = _make_shards(tmp_path / "three", grid, 3)[1]
    with pytest.raises(MergeError) as exc:
        merge_journals([s0, s1])
    assert exc.value.cause == "shard-count-mismatch"


def test_merge_rejects_duplicate_shard(tmp_path):
    paths = _make_shards(tmp_path, _grid(), 2)
    with pytest.raises(MergeError) as exc:
        merge_journals([paths[0], paths[0]])
    assert exc.value.cause == "duplicate-shard"
    assert exc.value.details["index"] == 0


def test_merge_rejects_task_claimed_by_two_shards(tmp_path):
    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    stolen = grid.shard(0, 2)[-1].task_id
    own = [t.task_id for t in grid.shard(1, 2)]
    _edit_header(paths[1], shard_task_ids=[stolen] + own)
    _append_line(paths[1], _record_line(paths[0], stolen))  # identical row
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "duplicate-task"
    assert exc.value.details["task_ids"] == [stolen]


def test_merge_rejects_conflicting_results_for_one_task(tmp_path):
    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    stolen = grid.shard(0, 2)[-1].task_id
    own = [t.task_id for t in grid.shard(1, 2)]
    _edit_header(paths[1], shard_task_ids=[stolen] + own)
    record = json.loads(_record_line(paths[0], stolen))
    record["row"]["offline_n_flip"] += 1.0  # same task, different answer
    _append_line(paths[1], json.dumps(record, sort_keys=True))
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "conflicting-result"
    assert exc.value.details["task_ids"] == [stolen]


def test_merge_rejects_result_outside_the_shard_slice(tmp_path):
    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    foreign = grid.shard(1, 2)[0].task_id
    _append_line(paths[0], _record_line(paths[1], foreign))
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "foreign-result"
    assert exc.value.details["task_ids"] == [foreign]


def test_merge_missing_shard_degrades_only_with_allow_incomplete(tmp_path):
    grid = _grid()
    reference = run_sweep(grid, workers=1, task_runner=_rich_runner)
    paths = _make_shards(tmp_path, grid, 3)
    kept = [paths[0], paths[2]]  # shard 1 never reported back
    with pytest.raises(MergeError) as exc:
        merge_journals(kept)
    assert exc.value.cause == "missing-shard"
    assert exc.value.details["shard_indices"] == [1]

    partial = merge_journals(kept, allow_incomplete=True)
    assert partial.missing_shards == [1]
    surviving = [t.task_id for t in grid.shard(0, 3) + grid.shard(2, 3)]
    assert partial.task_ids == surviving  # still grid-ordered
    assert partial.rows == [
        outcome.row for outcome in reference.outcomes
        if outcome.task.task_id in surviving
    ]
    assert partial.missing_count == len(grid.shard(1, 3))


def test_merge_truncated_journal_degrades_only_with_allow_incomplete(tmp_path):
    grid = _grid()
    reference = run_sweep(grid, workers=1, task_runner=_rich_runner)
    paths = _make_shards(tmp_path, grid, 2)
    lost = grid.shard(1, 2)[-1].task_id
    _drop_record(paths[1], lost)  # the kill ate the last checkpoint line
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "missing-result"
    assert exc.value.details["task_ids"] == [lost]

    partial = merge_journals(paths, allow_incomplete=True)
    assert partial.missing_task_ids == [lost]
    assert partial.missing_count == 1
    assert partial.rows == reference.rows[:-1]


def test_merge_incomplete_slice_coverage_degrades_only_with_allow_incomplete(tmp_path):
    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    dropped = grid.shard(1, 2)[-1].task_id
    kept_ids = [t.task_id for t in grid.shard(1, 2)][:-1]
    _edit_header(paths[1], shard_task_ids=kept_ids)
    _drop_record(paths[1], dropped)
    with pytest.raises(MergeError) as exc:
        merge_journals(paths)
    assert exc.value.cause == "incomplete-coverage"
    partial = merge_journals(paths, allow_incomplete=True)
    assert dropped not in partial.task_ids
    assert len(partial.rows) == len(grid.expand()) - 1


def test_merged_events_require_shards_run_with_events(tmp_path):
    result = merge_journals(_make_shards(tmp_path, _grid(), 2, runner=_plain_runner))
    assert result.rows  # rows merge fine without event streams
    with pytest.raises(MergeError) as exc:
        merged_events(result)
    assert exc.value.cause == "missing-events"


# ---------------------------------------------------------------------------
# The merge CLI on fake journals (fast) and the report's shard identity.
def test_cli_merge_reports_structured_failure_and_degrades(tmp_path, capsys):
    from repro.cli import main

    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    out = tmp_path / "rows.json"
    argv = [str(paths[0]), "--out", str(out),
            "--journal", str(tmp_path / "merged.jsonl")]

    assert main(["merge"] + argv) == 2
    err = capsys.readouterr().err
    assert "merge failed [missing-shard]" in err and "shard_indices" in err

    assert main(["merge"] + argv + ["--allow-incomplete", "--no-manifest"]) == 0
    rows = json.loads(out.read_text())
    assert [row["method"] for row in rows] == [t.method for t in grid.shard(0, 2)]


def test_report_renders_shard_and_merged_identity(tmp_path):
    from repro.telemetry.report import render_report

    grid = _grid()
    paths = _make_shards(tmp_path, grid, 2)
    shard_report = render_report(str(paths[1]))
    assert "shard: 2 of 2" in shard_report

    merged = write_merged_journal(merge_journals(paths), tmp_path / "merged.jsonl")
    merged_report = render_report(str(merged))
    assert "merged from 2 per-host journal(s)" in merged_report


# ---------------------------------------------------------------------------
# Tier-1 acceptance: the real micro-scale pipeline, sharded over the CLI.
def test_cli_shard_merge_is_byte_identical_to_unsharded_sweep(tmp_path, monkeypatch):
    """``merge(shards(1..n)) == run_sweep`` for the real pipeline: rows,
    flight record and manifest digests, for n in {1, 2, 3} -- and the merge
    manifest itself is identical regardless of how the sweep was split."""
    from repro.cli import main
    from repro.telemetry.manifest import manifest_path_for, read_manifest

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = [
        "sweep", "--methods", "CFT,CFT+BR", "--models", "tinycnn",
        "--devices", "K1,A1", "--target", "1", "--scale", "micro",
        "--workers", "1",
    ]
    ref_rows = tmp_path / "ref.json"
    ref_events = tmp_path / "ref.events.jsonl"
    assert main(argv + ["--out", str(ref_rows), "--events", str(ref_events)]) == 0
    ref_manifest = read_manifest(
        manifest_path_for(ref_rows.with_name(ref_rows.name + ".journal.jsonl"))
    )

    merged_rows = tmp_path / "merged.json"
    merged_events_path = tmp_path / "merged.events.jsonl"
    merged_journal = tmp_path / "merged.journal.jsonl"
    manifest_bytes = None
    for count in (1, 2, 3):
        shard_dir = tmp_path / f"n{count}"
        shard_dir.mkdir()
        journals = []
        for index in range(count):
            journal = shard_dir / f"shard{index}.jsonl"
            assert main(argv + [
                "--shard", f"{index}/{count}",
                "--out", str(shard_dir / f"rows{index}.json"),
                "--events", str(shard_dir / f"events{index}.jsonl"),
                "--journal", str(journal),
            ]) == 0
            journals.append(str(journal))
        assert main(["merge"] + journals + [
            "--out", str(merged_rows),
            "--events", str(merged_events_path),
            "--journal", str(merged_journal),
        ]) == 0

        assert merged_rows.read_bytes() == ref_rows.read_bytes()
        assert merged_events_path.read_bytes() == ref_events.read_bytes()
        manifest_path = manifest_path_for(merged_rows)
        merge_manifest = read_manifest(manifest_path)
        # Digest equality is the manifest-level proof of the byte identity,
        # and it ties the merged artifacts to the unsharded sweep's.
        assert (merge_manifest["artifact_sha256"]["rows"]
                == ref_manifest["artifact_sha256"]["rows"])
        assert (merge_manifest["artifact_sha256"]["events"]
                == ref_manifest["artifact_sha256"]["events"])
        assert merge_manifest["grid_sha"] == ref_manifest["grid_sha"]
        # Any n-way split merges to the same manifest, byte for byte.
        if manifest_bytes is None:
            manifest_bytes = manifest_path.read_bytes()
        assert manifest_path.read_bytes() == manifest_bytes
