"""Offline attack behavior on a tiny victim (mechanics, not headline ASR)."""

import numpy as np
import pytest

from repro.attacks import (
    AttackConfig,
    BadNetAttack,
    CFTAttack,
    LastLayerFTAttack,
    TBTAttack,
    restore_parameters_experiment,
)
from repro.quant import WeightFile
from repro.quant.bits import int8_to_uint8


def tiny_config(**overrides):
    defaults = dict(
        target_class=1,
        iterations=12,
        n_flip_budget=2,
        batch_size=16,
        trigger_size=4,
        epsilon=0.02,
        learning_rate=0.05,
        seed=0,
    )
    defaults.update(overrides)
    return AttackConfig(**defaults)


def bits_changed_per_byte(original, modified):
    diff = int8_to_uint8(original) ^ int8_to_uint8(modified)
    return np.unpackbits(diff.reshape(-1, 1), axis=1).sum(axis=1)


class TestCFTBR:
    @pytest.fixture(params=["progressive", "sgd"])
    def result(self, request, tiny_quantized, tiny_dataset):
        attack = CFTAttack(tiny_config(), bit_reduction=True, strategy=request.param)
        return attack.run(tiny_quantized, tiny_dataset), tiny_quantized

    def test_respects_flip_budget(self, result):
        offline, _ = result
        assert offline.n_flip <= tiny_config().n_flip_budget

    def test_each_changed_weight_differs_in_one_bit(self, result):
        offline, _ = result
        per_byte = bits_changed_per_byte(offline.original_weights, offline.backdoored_weights)
        assert per_byte.max(initial=0) <= 1

    def test_at_most_one_change_per_page(self, result):
        offline, _ = result
        original = WeightFile(offline.original_weights)
        modified = WeightFile(offline.backdoored_weights)
        pages = [loc.page for loc in original.bit_locations_against(modified)]
        assert len(pages) == len(set(pages))

    def test_module_state_matches_backdoored_weights(self, result):
        offline, qmodel = result
        np.testing.assert_array_equal(qmodel.flat_int8(), offline.backdoored_weights)

    def test_loss_history_recorded(self, result):
        offline, _ = result
        assert len(offline.loss_history) > 0
        assert all(np.isfinite(offline.loss_history))

    def test_trigger_was_optimized(self, result):
        offline, _ = result
        masked = offline.trigger.pattern[offline.trigger.mask]
        assert not np.allclose(masked, masked.reshape(-1)[0])  # moved off init


class TestCFTNoBR:
    def test_multi_bit_changes_allowed(self, tiny_quantized, tiny_dataset):
        attack = CFTAttack(
            tiny_config(step_quanta=33.0), bit_reduction=False, strategy="progressive"
        )
        offline = attack.run(tiny_quantized, tiny_dataset)
        if offline.n_flip:
            per_byte = bits_changed_per_byte(
                offline.original_weights, offline.backdoored_weights
            )
            # step of 33 quanta cannot be a single bit flip for most values
            assert per_byte.max() >= 2

    def test_method_name(self):
        assert CFTAttack(tiny_config(), bit_reduction=False).name == "CFT"
        assert CFTAttack(tiny_config(), bit_reduction=True).name == "CFT+BR"

    def test_invalid_strategy_raises(self):
        from repro.errors import AttackError

        with pytest.raises(AttackError):
            CFTAttack(tiny_config(), strategy="magic")


class TestForbiddenBits:
    def test_sign_bit_never_flipped_when_forbidden(self, tiny_quantized, tiny_dataset):
        config = tiny_config(forbidden_bits=(7,), iterations=10)
        attack = CFTAttack(config, bit_reduction=True, strategy="progressive")
        offline = attack.run(tiny_quantized, tiny_dataset)
        original = WeightFile(offline.original_weights)
        modified = WeightFile(offline.backdoored_weights)
        for location in original.bit_locations_against(modified):
            assert location.bit_index != 7


class TestBaselines:
    def test_badnet_changes_many_weights(self, tiny_quantized, tiny_dataset):
        offline = BadNetAttack(tiny_config(iterations=20, learning_rate=0.1)).run(
            tiny_quantized, tiny_dataset
        )
        assert offline.method == "BadNet"
        assert offline.n_flip > 10  # unconstrained fine-tuning touches many bytes

    def test_ft_only_touches_last_layer(self, tiny_quantized, tiny_dataset):
        offline = LastLayerFTAttack(tiny_config(iterations=20, learning_rate=0.1)).run(
            tiny_quantized, tiny_dataset
        )
        fc_start = tiny_quantized.offset_of("fc.weight")
        changed = np.nonzero(offline.original_weights != offline.backdoored_weights)[0]
        assert changed.size > 0
        assert (changed >= fc_start).all()

    def test_tbt_touches_only_selected_fc_row(self, tiny_quantized, tiny_dataset):
        config = tiny_config(iterations=20, learning_rate=0.1)
        attack = TBTAttack(config, num_neurons=3, trigger_steps=5)
        offline = attack.run(tiny_quantized, tiny_dataset)
        fc_start = tiny_quantized.offset_of("fc.weight")
        out_features = tiny_quantized.module.fc.out_features
        in_features = tiny_quantized.module.fc.in_features
        changed = np.nonzero(offline.original_weights != offline.backdoored_weights)[0]
        for index in changed:
            local = index - fc_start
            assert 0 <= local < out_features * in_features
            assert local // in_features == config.target_class
        assert offline.extra["num_neurons"] == 3

    def test_tbt_requires_fc(self, tiny_dataset):
        from repro.errors import AttackError
        from repro.nn import Linear
        from repro.quant import QuantizedModel

        class NoFC(Linear):
            pass

        with pytest.raises(AttackError):
            TBTAttack(tiny_config()).run(QuantizedModel(Linear(4, 2, rng=0)), tiny_dataset)


class TestRestoration:
    def test_restoration_rows_and_monotone_modifications(self, tiny_quantized, tiny_dataset, tiny_test_dataset):
        offline = BadNetAttack(tiny_config(iterations=20, learning_rate=0.1)).run(
            tiny_quantized, tiny_dataset
        )
        points = restore_parameters_experiment(
            tiny_quantized, offline, tiny_test_dataset, target_class=1,
            keep_fractions=(1.0, 0.5, 0.0),
        )
        assert [p.modification_percent for p in points] == [100.0, 50.0, 0.0]
        for point in points:
            assert 0.0 <= point.test_accuracy <= 1.0
            assert 0.0 <= point.attack_success_rate <= 1.0

    def test_zero_keep_restores_original_model(self, tiny_quantized, tiny_dataset, tiny_test_dataset):
        offline = BadNetAttack(tiny_config(iterations=10, learning_rate=0.1)).run(
            tiny_quantized, tiny_dataset
        )
        restore_parameters_experiment(
            tiny_quantized, offline, tiny_test_dataset, target_class=1, keep_fractions=(0.0,)
        )
        # The experiment leaves the model fully modified at the end.
        np.testing.assert_array_equal(tiny_quantized.flat_int8(), offline.backdoored_weights)

    def test_invalid_fraction_raises(self, tiny_quantized, tiny_dataset, tiny_test_dataset):
        offline = BadNetAttack(tiny_config(iterations=5)).run(tiny_quantized, tiny_dataset)
        with pytest.raises(ValueError):
            restore_parameters_experiment(
                tiny_quantized, offline, tiny_test_dataset, 1, keep_fractions=(1.5,)
            )
