"""Frame cache, page cache and the mmap placement model."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.frame_cache import PageFrameCache
from repro.memory.geometry import PAGE_FRAME_SIZE
from repro.memory.page_cache import PageCache


class TestPageFrameCache:
    def test_filo_order(self):
        cache = PageFrameCache()
        for frame in (1, 2, 3):
            cache.release(frame)
        assert [cache.allocate() for _ in range(3)] == [3, 2, 1]

    def test_double_release_raises(self):
        cache = PageFrameCache()
        cache.release(1)
        with pytest.raises(MemoryModelError):
            cache.release(1)

    def test_release_after_reallocate_allowed(self):
        cache = PageFrameCache()
        cache.release(1)
        assert cache.allocate() == 1
        cache.release(1)  # fine again
        assert len(cache) == 1

    def test_empty_allocation_raises(self):
        with pytest.raises(MemoryModelError):
            PageFrameCache().allocate()

    def test_peek_matches_allocation_order(self):
        cache = PageFrameCache()
        for frame in (5, 6, 7):
            cache.release(frame)
        assert cache.peek_allocation_order() == [7, 6, 5]

    def test_duplicate_initial_frames_raise(self):
        with pytest.raises(MemoryModelError):
            PageFrameCache([1, 1])


class TestPageCache:
    def test_insert_lookup_evict(self):
        cache = PageCache()
        cache.insert("f", 0, 42)
        assert cache.lookup("f", 0) == 42
        assert cache.evict("f", 0) == 42
        assert cache.lookup("f", 0) is None

    def test_double_insert_raises(self):
        cache = PageCache()
        cache.insert("f", 0, 1)
        with pytest.raises(MemoryModelError):
            cache.insert("f", 0, 2)

    def test_dirty_tracking(self):
        cache = PageCache()
        cache.insert("f", 0, 1)
        assert not cache.is_dirty("f", 0)
        cache.mark_dirty("f", 0)
        assert cache.is_dirty("f", 0)

    def test_evict_file(self):
        cache = PageCache()
        cache.insert("a", 0, 1)
        cache.insert("a", 1, 2)
        cache.insert("b", 0, 3)
        cache.evict_file("a")
        assert cache.cached_pages("a") == {}
        assert cache.cached_pages("b") == {0: 3}


class TestOSMemoryModel:
    def test_anonymous_mapping_is_zeroed(self, os_model):
        mapping = os_model.mmap_anonymous(4)
        assert mapping.num_pages == 4
        for page in range(4):
            assert (os_model.read_page(mapping, page) == 0).all()

    def test_file_mapping_reads_file_content(self, os_model):
        content = bytes(range(256)) * 20  # 5120 bytes -> 2 pages
        os_model.register_file("w", content)
        mapping = os_model.mmap_file("w")
        assert mapping.num_pages == 2
        data = os_model.read_mapping(mapping)
        assert data[: len(content)] == content

    def test_file_pages_stay_cached_after_munmap(self, os_model):
        os_model.register_file("w", b"\x01" * PAGE_FRAME_SIZE)
        mapping = os_model.mmap_file("w")
        frame = mapping.frame_of(0)
        os_model.munmap(mapping)
        remapped = os_model.mmap_file("w")
        assert remapped.frame_of(0) == frame  # page-cache hit, same frame

    def test_rowhammer_corruption_survives_remap_without_dirty_bit(self, os_model):
        os_model.register_file("w", b"\x00" * PAGE_FRAME_SIZE)
        mapping = os_model.mmap_file("w")
        frame = mapping.frame_of(0)
        # Flip a bit directly in DRAM, as Rowhammer does (no CPU write).
        page = os_model.dram.read_frame(frame)
        page[10] |= 1
        os_model.dram.write_frame(frame, page)
        os_model.munmap(mapping)
        fresh = os_model.mmap_file("w")
        assert os_model.read_page(fresh, 0)[10] == 1
        assert not os_model.page_cache.is_dirty("w", 0)

    def test_cpu_write_sets_dirty_bit(self, os_model):
        os_model.register_file("w", b"\x00" * PAGE_FRAME_SIZE)
        mapping = os_model.mmap_file("w")
        os_model.write_page(mapping, 0, np.ones(PAGE_FRAME_SIZE, dtype=np.uint8))
        assert os_model.page_cache.is_dirty("w", 0)

    def test_filo_reallocation_reverses_mapping(self, os_model):
        """Figure 4: first file pages land on the last released frames."""
        buffer = os_model.mmap_anonymous(6)
        released = [buffer.frames[page] for page in range(6)]
        for page in range(6):
            os_model.munmap_page(buffer, page)
        os_model.register_file("w", b"\x05" * (PAGE_FRAME_SIZE * 6))
        mapping = os_model.mmap_file("w")
        got = [mapping.frame_of(page) for page in range(6)]
        assert got == list(reversed(released))

    def test_drop_file_cache_releases_frames(self, os_model):
        os_model.register_file("w", b"\x00" * PAGE_FRAME_SIZE)
        mapping = os_model.mmap_file("w")
        frame = mapping.frame_of(0)
        os_model.munmap(mapping)
        os_model.drop_file_cache("w")
        assert os_model.frame_cache.contains(frame)

    def test_unknown_file_raises(self, os_model):
        with pytest.raises(MemoryModelError):
            os_model.mmap_file("missing")

    def test_duplicate_file_registration_raises(self, os_model):
        os_model.register_file("w", b"x")
        with pytest.raises(MemoryModelError):
            os_model.register_file("w", b"y")

    def test_out_of_memory_raises(self, small_dram):
        from repro.memory.mmap import OSMemoryModel

        os_model = OSMemoryModel(small_dram, rng=0)
        with pytest.raises(MemoryModelError):
            os_model.mmap_anonymous(small_dram.geometry.total_frames + 1)
