"""SPOILER and row-buffer-conflict side-channel simulations."""

import numpy as np
import pytest

from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import MappedFile
from repro.memory.sidechannel import (
    SPOILER_PERIOD_FRAMES,
    RowConflictChannel,
    SpoilerChannel,
)


def contiguous_mapping(start_frame: int, count: int) -> MappedFile:
    """A mapping whose virtual pages are physically contiguous."""
    return MappedFile(file_id=None, frames={i: start_frame + i for i in range(count)})


class TestSpoiler:
    def test_peaks_have_spoiler_period_on_contiguous_memory(self):
        channel = SpoilerChannel()
        mapping = contiguous_mapping(0, 256)
        times = channel.measure(mapping, rng=0)
        peaks = channel.detect_peaks(times)
        assert len(peaks) == 4
        np.testing.assert_array_equal(np.diff(peaks), SPOILER_PERIOD_FRAMES)

    def test_finds_contiguous_runs(self):
        channel = SpoilerChannel()
        mapping = contiguous_mapping(0, 192)
        times = channel.measure(mapping, rng=0)
        runs = channel.find_contiguous_runs(times)
        assert runs, "expected at least one contiguous run"
        start, length = runs[0]
        assert length >= 2 * SPOILER_PERIOD_FRAMES

    def test_shuffled_frames_break_periodicity(self):
        channel = SpoilerChannel()
        rng = np.random.default_rng(0)
        frames = rng.permutation(4096)[:256]
        mapping = MappedFile(file_id=None, frames={i: int(f) for i, f in enumerate(frames)})
        times = channel.measure(mapping, rng=1)
        runs = channel.find_contiguous_runs(times)
        total_run_pages = sum(length for _, length in runs)
        assert total_run_pages < 192  # mostly non-contiguous

    def test_measurement_noise_does_not_flip_classification(self):
        channel = SpoilerChannel(noise_std=20.0)
        mapping = contiguous_mapping(0, 128)
        times_a = channel.measure(mapping, rng=1)
        times_b = channel.measure(mapping, rng=2)
        np.testing.assert_array_equal(
            channel.detect_peaks(times_a), channel.detect_peaks(times_b)
        )


class TestRowConflict:
    @pytest.fixture
    def geometry(self):
        return DRAMGeometry(num_banks=4, rows_per_bank=64, row_size_bytes=8192)

    def test_same_bank_different_row_is_slow(self, geometry):
        channel = RowConflictChannel(geometry)
        # Find two frames in the same bank but different rows.
        pairs = []
        for frame_a in range(0, 64):
            for frame_b in range(frame_a + 1, 64):
                addr_a = geometry.frame_address(frame_a)
                addr_b = geometry.frame_address(frame_b)
                if addr_a.bank == addr_b.bank and addr_a.row != addr_b.row:
                    pairs.append((frame_a, frame_b))
                    break
            if pairs:
                break
        frame_a, frame_b = pairs[0]
        assert channel.same_bank(frame_a * 4096, frame_b * 4096, rng=0)

    def test_different_bank_is_fast(self, geometry):
        channel = RowConflictChannel(geometry)
        for frame_b in range(1, 64):
            if geometry.frame_address(0).bank != geometry.frame_address(frame_b).bank:
                assert not channel.same_bank(0, frame_b * 4096, rng=0)
                return
        pytest.fail("no cross-bank pair found")

    def test_bank_partition_recovers_equivalence_classes(self, geometry):
        channel = RowConflictChannel(geometry, noise_std=5.0)
        frames = list(range(0, 64, 2))
        groups = channel.bank_partition(frames, rng=0)
        # Compare against ground truth bank assignment.
        truth = {}
        for frame in frames:
            truth.setdefault(geometry.frame_address(frame).bank, set()).add(frame)
        recovered = {frozenset(v) for v in groups.values() if len(v) > 1}
        expected = {frozenset(v) for v in truth.values() if len(v) > 1}
        # Most groups should match exactly (noise may split a few).
        assert len(recovered & expected) >= len(expected) // 2

    def test_roughly_one_in_numbanks_fraction_conflicts(self, geometry):
        """Fig. 12: about 1/num_banks of random pairs are same-bank."""
        channel = RowConflictChannel(geometry, noise_std=1.0)
        rng = np.random.default_rng(3)
        conflicts = 0
        trials = 300
        for _ in range(trials):
            a, b = rng.choice(geometry.total_frames, size=2, replace=False)
            if channel.same_bank(int(a) * 4096, int(b) * 4096, rng=rng):
                conflicts += 1
        fraction = conflicts / trials
        assert 0.5 / geometry.num_banks < fraction < 2.5 / geometry.num_banks
