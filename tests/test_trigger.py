"""Trigger pattern semantics (mask, application, FGSM updates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.trigger import TriggerPattern


class TestConstruction:
    def test_black_square_mask_location(self):
        trig = TriggerPattern.black_square((3, 32, 32), 10)
        assert trig.mask[:, 22:, 22:].all()
        assert trig.mask.sum() == 3 * 10 * 10
        np.testing.assert_allclose(trig.pattern, 0.0)

    @pytest.mark.parametrize("corner", ["top_left", "top_right", "bottom_left"])
    def test_other_corners(self, corner):
        trig = TriggerPattern.black_square((1, 8, 8), 3, corner=corner)
        assert trig.mask.sum() == 9

    def test_invalid_corner_raises(self):
        with pytest.raises(ValueError):
            TriggerPattern.black_square((1, 8, 8), 3, corner="middle")

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            TriggerPattern.black_square((1, 8, 8), 9)
        with pytest.raises(ValueError):
            TriggerPattern.black_square((1, 8, 8), 0)

    def test_gray_square_value(self):
        trig = TriggerPattern.square((1, 8, 8), 3, value=0.5)
        assert trig.pattern[trig.mask].mean() == pytest.approx(0.5)
        assert trig.pattern[~trig.mask].max() == 0.0

    def test_mask_pattern_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            TriggerPattern(mask=np.zeros((1, 4, 4), bool), pattern=np.zeros((1, 3, 3)))


class TestApplication:
    def test_apply_replaces_only_masked_pixels(self):
        trig = TriggerPattern.square((1, 8, 8), 3, value=0.7)
        images = np.full((2, 1, 8, 8), 0.2, dtype=np.float32)
        out = trig.apply(images)
        assert out[0, 0, 0, 0] == pytest.approx(0.2)
        assert out[0, 0, 7, 7] == pytest.approx(0.7)
        # input untouched
        assert images[0, 0, 7, 7] == pytest.approx(0.2)

    def test_apply_single_image(self):
        trig = TriggerPattern.square((1, 8, 8), 2, value=1.0)
        out = trig.apply(np.zeros((1, 8, 8), dtype=np.float32))
        assert out.shape == (1, 8, 8)
        assert out[0, 7, 7] == 1.0

    def test_apply_shape_mismatch_raises(self):
        trig = TriggerPattern.square((1, 8, 8), 2)
        with pytest.raises(ValueError):
            trig.apply(np.zeros((2, 3, 8, 8)))

    def test_apply_is_idempotent(self):
        trig = TriggerPattern.square((1, 8, 8), 2, value=0.3)
        images = np.random.default_rng(0).random((4, 1, 8, 8)).astype(np.float32)
        once = trig.apply(images)
        np.testing.assert_allclose(trig.apply(once), once)


class TestFGSMUpdate:
    def test_update_moves_against_gradient_sign(self):
        trig = TriggerPattern.square((1, 4, 4), 2, value=0.5)
        grad = np.ones((1, 4, 4), dtype=np.float32)
        before = trig.pattern.copy()
        trig.fgsm_update(grad, epsilon=0.1)
        masked_delta = (trig.pattern - before)[trig.mask]
        np.testing.assert_allclose(masked_delta, 0.1, rtol=1e-5)
        # unmasked pixels unchanged
        np.testing.assert_allclose(trig.pattern[~trig.mask], before[~trig.mask])

    def test_update_respects_clip_range(self):
        trig = TriggerPattern.square((1, 4, 4), 2, value=0.95)
        trig.fgsm_update(np.ones((1, 4, 4)), epsilon=0.5)
        assert trig.pattern.max() <= 1.0

    def test_gradient_shape_mismatch_raises(self):
        trig = TriggerPattern.square((1, 4, 4), 2)
        with pytest.raises(ValueError):
            trig.fgsm_update(np.ones((1, 3, 3)), epsilon=0.1)

    def test_copy_is_independent(self):
        trig = TriggerPattern.square((1, 4, 4), 2, value=0.5)
        clone = trig.copy()
        clone.fgsm_update(np.ones((1, 4, 4)), 0.2)
        assert trig.pattern[trig.mask].mean() == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=8),
    epsilon=st.floats(min_value=0.0, max_value=0.5),
)
def test_pattern_always_within_clip_range(size, epsilon):
    """Property: no sequence of FGSM updates escapes the pixel range."""
    trig = TriggerPattern.square((1, 8, 8), size, value=0.5)
    rng = np.random.default_rng(0)
    for _ in range(5):
        trig.fgsm_update(rng.normal(size=(1, 8, 8)), epsilon)
    assert trig.pattern.min() >= 0.0
    assert trig.pattern.max() <= 1.0
