"""Extension modules: Plundervolt, huge pages, attack time, distillation,
serialization and the CLI."""

import numpy as np
import pytest

from repro.analysis.attack_time import (
    DEEPHAMMER_SECONDS_PER_ROW,
    estimate_attack_time,
    related_work_comparison,
)
from repro.faults import PlundervoltCPU, UndervoltConfig
from repro.memory.geometry import DRAMGeometry
from repro.memory.hugepages import (
    expected_flips_in_huge_page,
    fragment_huge_page,
    profilable_4k_pages,
)

from tests.conftest import TinyCNN


class TestPlundervolt:
    def test_poc_faults_in_faulty_regime(self):
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=250.0), rng=0)
        faults = cpu.run_poc(iterations=500)
        assert faults > 0

    def test_no_faults_at_nominal_voltage(self):
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=50.0), rng=0)
        assert cpu.run_poc(iterations=500) == 0

    def test_small_operands_never_fault(self):
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=500.0), rng=0)
        for _ in range(200):
            out = cpu.multiply(
                np.array([123], dtype=np.int64),
                np.array([255], dtype=np.int64),  # <= 0xFFFF: quantized bound
                in_loop=True,
            )
            assert out[0] == 123 * 255
        assert cpu.fault_count == 0

    def test_tensor_operands_never_fault(self):
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=500.0), rng=0)
        a = np.full((4, 4), 1_000_000, dtype=np.int64)
        out = cpu.matmul(a, a)
        np.testing.assert_array_equal(out, a @ a)
        assert cpu.fault_count == 0

    def test_quantized_inference_is_fault_free(self, tiny_quantized, tiny_dataset):
        """Appendix F's negative result: int8 DNN inference cannot be faulted."""
        cpu = PlundervoltCPU(UndervoltConfig(undervolt_mv=400.0), rng=0)
        predictions, faults = cpu.run_quantized_inference(
            tiny_quantized, tiny_dataset.images[:16]
        )
        assert faults == 0
        assert predictions.shape == (16,)


class TestHugePages:
    def test_paper_example_64_banks(self):
        """Section VIII: 64 banks fragment a 2 MB page into 64 x 4-row chunks."""
        geometry = DRAMGeometry(num_banks=64, rows_per_bank=4096, row_size_bytes=8192)
        frag = fragment_huge_page(geometry)
        assert frag.num_chunks == 64
        assert frag.rows_per_chunk == 4
        assert not frag.single_row_chunks

    def test_more_banks_shrink_chunks_to_single_rows(self):
        geometry = DRAMGeometry(num_banks=256, rows_per_bank=4096, row_size_bytes=8192)
        frag = fragment_huge_page(geometry)
        assert frag.single_row_chunks

    def test_profiling_granularity(self):
        assert profilable_4k_pages() == 512
        # Paper: 512 flips in 2 MB at 1 flip/4K page "still practical".
        assert expected_flips_in_huge_page(1.0) == 512.0

    def test_misaligned_huge_page_rejected(self):
        geometry = DRAMGeometry(num_banks=4, rows_per_bank=64, row_size_bytes=8192)
        with pytest.raises(ValueError):
            fragment_huge_page(geometry, huge_page_bytes=5000)


class TestAttackTime:
    def test_paper_anchor_times(self):
        estimate = estimate_attack_time(n_flip=10, n_sides=7)
        assert estimate.seconds_per_row == pytest.approx(0.4)
        assert estimate.online_seconds == pytest.approx(4.0)
        assert estimate.profiling_minutes == pytest.approx(94.0)

    def test_15_sided_costs_double(self):
        assert estimate_attack_time(1, n_sides=15).seconds_per_row == pytest.approx(0.8)

    def test_related_work_comparison_shape(self):
        rows = related_work_comparison(n_flip=10)
        by_method = {row["method"]: row for row in rows}
        assert by_method["DeepHammer"]["seconds_per_row"] == DEEPHAMMER_SECONDS_PER_ROW
        # Only this work is stealthy (clean accuracy preserved).
        assert by_method["CFT+BR (this work)"]["stealthy"]
        assert not by_method["DeepHammer"]["stealthy"]
        assert (
            by_method["CFT+BR (this work)"]["post_attack_clean_accuracy"]
            > 5 * by_method["DeepHammer"]["post_attack_clean_accuracy"]
        )


class TestDistillation:
    def test_distillation_improves_agreement(self, tiny_dataset):
        from repro.defenses.distillation import agreement_rate, distill_checker

        teacher = TinyCNN(rng=0)
        # Give the teacher a decisive (non-uniform) behaviour to imitate.
        teacher.fc.bias.data = teacher.fc.bias.data + np.array([3, 0, 0, 0], np.float32)
        student = TinyCNN(rng=9)
        before = agreement_rate(teacher, student, tiny_dataset)
        losses = distill_checker(teacher, student, tiny_dataset, epochs=4, learning_rate=5e-3)
        after = agreement_rate(teacher, student, tiny_dataset)
        assert losses[-1] < losses[0]
        assert after >= before

    def test_guard_construction(self, tiny_dataset):
        from repro.defenses.distillation import build_deepdyve_guard

        guard = build_deepdyve_guard(
            TinyCNN(rng=0), TinyCNN(rng=1), tiny_dataset, epochs=1
        )
        predictions, stats = guard.predict(tiny_dataset.images[:8])
        assert len(predictions) == 8
        assert stats.total == 8


class TestSerialization:
    def test_offline_result_roundtrip(self, tmp_path, tiny_quantized, tiny_dataset):
        from repro.attacks import AttackConfig, CFTAttack
        from repro.utils.serialization import load_offline_result, save_offline_result

        config = AttackConfig(
            target_class=1, iterations=6, n_flip_budget=2, batch_size=16,
            trigger_size=4, seed=0,
        )
        result = CFTAttack(config).run(tiny_quantized, tiny_dataset)
        path = tmp_path / "plan.npz"
        save_offline_result(result, path)
        loaded = load_offline_result(path)
        np.testing.assert_array_equal(loaded.backdoored_weights, result.backdoored_weights)
        np.testing.assert_array_equal(loaded.trigger.pattern, result.trigger.pattern)
        assert loaded.n_flip == result.n_flip
        assert loaded.method == result.method


class TestCLI:
    def test_devices_command(self, capsys):
        from repro.cli import main

        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "K1" in out and "100.68" in out

    def test_probability_command(self, capsys):
        from repro.cli import main

        assert main(["probability", "--flips-per-page", "34", "--pages", "32768"]) == 0
        out = capsys.readouterr().out
        assert "k+l=1" in out and "k+l=3" in out

    def test_parser_rejects_unknown_command(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
