"""Hammer engine, device profiles, fault profiler and templating."""

import numpy as np
import pytest

from repro.errors import RowhammerError
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.quant.weightfile import BitLocation
from repro.rowhammer import (
    DDR3_PROFILES,
    DDR4_PROFILES,
    DEVICE_PROFILES,
    HammerEngine,
    MemoryProfiler,
    PageTemplater,
    get_profile,
)
from repro.rowhammer.profiler import FlipProfile, FlipRecord
from repro.rowhammer.templating import group_targets_by_page


class TestDeviceProfiles:
    def test_table1_counts(self):
        assert len(DDR3_PROFILES) == 14
        assert len(DDR4_PROFILES) == 6
        assert len(DEVICE_PROFILES) == 20

    def test_table1_sample_values(self):
        assert get_profile("K1").flips_per_page == pytest.approx(100.68)
        assert get_profile("F1").flips_per_page == pytest.approx(28.77)
        assert get_profile("B1").flips_per_page == pytest.approx(1.05)

    def test_trr_only_on_ddr4(self):
        assert all(not p.trr_protected for p in DDR3_PROFILES.values())
        assert all(p.trr_protected for p in DDR4_PROFILES.values())

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_profile("Z9")


class TestHammerEngine:
    @pytest.fixture
    def engines(self, small_dram):
        return (
            HammerEngine(small_dram, get_profile("K1")),  # DDR4 + TRR
            HammerEngine(small_dram, get_profile("A1")),  # DDR3
        )

    def test_trr_defeats_double_sided_on_ddr4(self, engines):
        ddr4, ddr3 = engines
        assert ddr4.intensity(2) == 0.0
        assert not ddr4.double_sided_effective()
        assert ddr3.intensity(2) > 0.0
        assert ddr3.double_sided_effective()

    def test_intensity_monotone_in_sides(self, engines):
        ddr4, _ = engines
        intensities = [ddr4.intensity(n) for n in range(3, 16)]
        assert all(a <= b for a, b in zip(intensities, intensities[1:]))
        assert ddr4.intensity(15) == pytest.approx(1.0)

    def test_intensity_capped_at_max_sides(self, engines):
        ddr4, _ = engines
        assert ddr4.intensity(30) == ddr4.intensity(15)

    def test_invalid_sides_raise(self, engines):
        ddr4, _ = engines
        with pytest.raises(RowhammerError):
            ddr4.intensity(0)

    def test_timing_matches_paper_anchors(self, engines):
        ddr4, _ = engines
        assert ddr4.seconds_per_row(7) == pytest.approx(0.4)
        assert ddr4.seconds_per_row(15) == pytest.approx(0.8, rel=0.1)

    def test_hammer_accumulates_time(self, engines):
        ddr4, _ = engines
        before = ddr4.total_seconds
        ddr4.hammer_victim(0, 1, 7)
        assert ddr4.total_seconds == pytest.approx(before + 0.4)

    def test_out_of_range_row_raises(self, engines):
        ddr4, _ = engines
        with pytest.raises(RowhammerError):
            ddr4.hammer_victim(0, 10_000, 7)


class TestProfiler:
    @pytest.fixture
    def setup(self):
        geometry = DRAMGeometry(num_banks=4, rows_per_bank=128, row_size_bytes=8192)
        dram = DRAMArray(geometry, flips_per_page_mean=25.0, seed=9)
        os_model = OSMemoryModel(dram, rng=1)
        engine = HammerEngine(dram, get_profile("K1"))
        return os_model, engine

    def test_profile_counts_and_density(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(128)
        profile = MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=15)
        assert profile.num_frames == 128
        # Full intensity reaches every cell: expect ~25/page on average.
        assert profile.avg_flips_per_page == pytest.approx(25.0, rel=0.25)

    def test_directions_roughly_balanced(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(128)
        profile = MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=15)
        up, down = profile.direction_counts()
        assert up + down == profile.num_flips
        assert 0.35 < up / profile.num_flips < 0.65

    def test_lower_sides_find_fewer_flips(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(64)
        frames = [mapping.frames[p] for p in sorted(mapping.frames)]
        profiler = MemoryProfiler(os_model, engine)
        few = profiler.profile_frames(frames, n_sides=7).num_flips
        many = profiler.profile_frames(frames, n_sides=15).num_flips
        assert few < many

    def test_profiling_restores_memory_content(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(8)
        payload = np.full(4096, 0x3C, dtype=np.uint8)
        os_model.write_page(mapping, 0, payload)
        MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=15)
        np.testing.assert_array_equal(os_model.read_page(mapping, 0), payload)

    def test_profile_is_repeatable(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(32)
        frames = [mapping.frames[p] for p in sorted(mapping.frames)]
        profiler = MemoryProfiler(os_model, engine)
        first = profiler.profile_frames(frames, n_sides=15)
        second = profiler.profile_frames(frames, n_sides=15)
        assert {r.key for r in first.records} == {r.key for r in second.records}

    def test_estimated_minutes_scales_with_size(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(32)
        profile = MemoryProfiler(os_model, engine).profile_mapping(mapping, n_sides=15)
        # 32 pages = 128 KB; paper rate is 94 min per 128 MB.
        assert profile.estimated_minutes() == pytest.approx(94.0 / 1024, rel=1e-3)

    def test_merge_rejects_overlap(self, setup):
        os_model, engine = setup
        mapping = os_model.mmap_anonymous(8)
        profiler = MemoryProfiler(os_model, engine)
        profile = profiler.profile_mapping(mapping, n_sides=15)
        with pytest.raises(RowhammerError):
            profile.merge(profile)


class TestTemplating:
    def _profile(self, records, frames):
        return FlipProfile(records=records, profiled_frames=frames, n_sides=7)

    def _record(self, frame, offset, bit, direction):
        return FlipRecord(frame=frame, byte_offset=offset, bit=bit, direction=direction, n_sides=7)

    def test_single_bit_target_matches(self):
        profile = self._profile([self._record(10, 100, 3, 1)], [10, 11])
        templater = PageTemplater(profile)
        targets = {0: [BitLocation(page=0, byte_offset=100, bit_index=3, direction=1)]}
        match = templater.match(targets)
        assert match.assignments == {0: 10}
        assert match.match_fraction == 1.0

    def test_direction_mismatch_fails(self):
        profile = self._profile([self._record(10, 100, 3, -1)], [10])
        targets = {0: [BitLocation(page=0, byte_offset=100, bit_index=3, direction=1)]}
        match = PageTemplater(profile).match(targets)
        assert match.unmatched_pages == [0]

    def test_multi_bit_page_requires_single_frame_covering_all(self):
        records = [self._record(10, 100, 3, 1), self._record(10, 200, 2, -1)]
        profile = self._profile(records, [10])
        targets = {
            0: [
                BitLocation(page=0, byte_offset=100, bit_index=3, direction=1),
                BitLocation(page=0, byte_offset=200, bit_index=2, direction=-1),
            ]
        }
        match = PageTemplater(profile).match(targets)
        assert match.assignments == {0: 10}

    def test_frames_are_not_reused(self):
        records = [self._record(10, 100, 3, 1)]
        profile = self._profile(records, [10])
        targets = {
            0: [BitLocation(page=0, byte_offset=100, bit_index=3, direction=1)],
            1: [BitLocation(page=1, byte_offset=100, bit_index=3, direction=1)],
        }
        match = PageTemplater(profile).match(targets)
        assert len(match.assignments) == 1
        assert len(match.unmatched_pages) == 1

    def test_prefers_cleanest_frame(self):
        records = [
            self._record(10, 100, 3, 1),
            self._record(11, 100, 3, 1),
            self._record(11, 500, 2, 1),  # frame 11 has an extra flip
        ]
        profile = self._profile(records, [10, 11])
        targets = {0: [BitLocation(page=0, byte_offset=100, bit_index=3, direction=1)]}
        match = PageTemplater(profile).match(targets)
        assert match.assignments == {0: 10}
        assert match.expected_accidental_flips[10] == 0

    def test_group_targets_by_page(self):
        locations = [
            BitLocation(page=2, byte_offset=0, bit_index=0, direction=1),
            BitLocation(page=2, byte_offset=1, bit_index=0, direction=1),
            BitLocation(page=5, byte_offset=9, bit_index=1, direction=-1),
        ]
        grouped = group_targets_by_page(locations)
        assert set(grouped) == {2, 5}
        assert len(grouped[2]) == 2
