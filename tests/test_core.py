"""Core layer: training loop, model cache, experiment scaling, RNG utils."""

import numpy as np
import pytest

from repro.core.experiment import ExperimentScale, format_table2
from repro.core.training import TrainingConfig, evaluate_accuracy, train_model
from repro.data.dataset import ArrayDataset
from repro.utils.rng import new_rng, spawn_rngs

from tests.conftest import TinyCNN


class TestTraining:
    def test_training_reduces_loss(self, tiny_dataset):
        model = TinyCNN(rng=0)
        history = train_model(
            model, tiny_dataset, TrainingConfig(epochs=3, batch_size=16, learning_rate=0.05)
        )
        assert len(history) == 3
        assert history[-1] < history[0]
        assert not model.training  # left in eval mode

    def test_evaluate_accuracy_bounds(self, tiny_dataset):
        model = TinyCNN(rng=0)
        accuracy = evaluate_accuracy(model, tiny_dataset)
        assert 0.0 <= accuracy <= 1.0

    def test_evaluate_accuracy_empty(self):
        empty = ArrayDataset(np.zeros((0, 3, 16, 16)), np.zeros(0))
        assert evaluate_accuracy(TinyCNN(rng=0), empty) == 0.0


class TestModelCache:
    def test_pretrained_model_caches_to_disk(self, tmp_path):
        from repro.core.training import pretrained_quantized_model

        first, _, _, _ = pretrained_quantized_model(
            "resnet20", width=0.25, epochs=1, seed=123, cache_dir=tmp_path
        )
        assert list(tmp_path.glob("*.npz"))
        second, _, _, _ = pretrained_quantized_model(
            "resnet20", width=0.25, epochs=1, seed=123, cache_dir=tmp_path
        )
        np.testing.assert_array_equal(first.flat_int8(), second.flat_int8())

    def test_unknown_dataset_rejected(self, tmp_path):
        from repro.core.training import pretrained_quantized_model

        with pytest.raises(ValueError):
            pretrained_quantized_model("resnet20", dataset="mnist", cache_dir=tmp_path)


class TestExperimentScale:
    def test_presets(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        tiny = ExperimentScale.from_env()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        full = ExperimentScale.from_env()
        assert tiny.attack_iterations < full.attack_iterations
        assert tiny.width <= full.width

    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert ExperimentScale.from_env() == ExperimentScale()

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            ExperimentScale.from_env()

    def test_format_table2_layout(self):
        rows = [
            {
                "method": "CFT+BR",
                "offline_n_flip": 10,
                "offline_ta": 91.24,
                "offline_asr": 94.62,
                "online_n_flip": 10,
                "online_ta": 89.04,
                "online_asr": 92.67,
                "r_match": 99.99,
            }
        ]
        table = format_table2(rows)
        assert "CFT+BR" in table
        assert "99.99" in table


class TestRngUtils:
    def test_new_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_new_rng_from_int_deterministic(self):
        assert new_rng(5).integers(0, 100) == new_rng(5).integers(0, 100)

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 2**32) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_rngs_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
