"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autodiff.tensor import Tensor


def numerical_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn(x)
        flat[i] = original - eps
        low = fn(x)
        flat[i] = original
        grad_flat[i] = (high - low) / (2 * eps)
    return grad


def check_gradient(
    forward: Callable[[Tensor], Tensor],
    x: np.ndarray,
    atol: float = 1e-2,
    rtol: float = 5e-2,
) -> None:
    """Assert analytic and numerical input gradients agree.

    ``forward`` maps a Tensor to a Tensor of any shape; the check reduces
    the output to a scalar with a fixed random weighting so every output
    element participates.
    """
    x = np.asarray(x, dtype=np.float64)
    weighting = np.random.default_rng(0).normal(size=forward(Tensor(x.astype(np.float32))).shape)

    def scalar(values: np.ndarray) -> float:
        out = forward(Tensor(values.astype(np.float32)))
        return float((out.numpy().astype(np.float64) * weighting).sum())

    t = Tensor(x.astype(np.float32), requires_grad=True)
    out = forward(t)
    out.backward(weighting.astype(np.float32))
    analytic = t.grad.astype(np.float64)
    numeric = numerical_gradient(scalar, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
