"""Gradient and shape checks for convolution, pooling and batch norm."""

import numpy as np
import pytest

from repro.autodiff.conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d, pad2d
from repro.autodiff.norm import batch_norm2d
from repro.autodiff.tensor import Tensor
from repro.errors import ShapeError

from tests.helpers import check_gradient

RNG = np.random.default_rng(7)


class TestConv2d:
    def test_matches_direct_convolution(self):
        x = RNG.normal(size=(1, 1, 4, 4)).astype(np.float32)
        w = RNG.normal(size=(1, 1, 3, 3)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=0).numpy()
        expected = np.zeros((1, 1, 2, 2), dtype=np.float32)
        for i in range(2):
            for j in range(2):
                expected[0, 0, i, j] = (x[0, 0, i : i + 3, j : j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_input_gradient(self, stride, padding):
        w = Tensor(RNG.normal(size=(3, 2, 3, 3)).astype(np.float32))
        check_gradient(
            lambda t: conv2d(t, w, stride=stride, padding=padding),
            RNG.normal(size=(2, 2, 6, 6)),
        )

    def test_weight_gradient(self):
        x = Tensor(RNG.normal(size=(2, 2, 5, 5)).astype(np.float32))
        check_gradient(
            lambda t: conv2d(x, t, stride=1, padding=1),
            RNG.normal(size=(3, 2, 3, 3)),
        )

    def test_bias_gradient(self):
        x = Tensor(RNG.normal(size=(2, 2, 4, 4)).astype(np.float32))
        w = Tensor(RNG.normal(size=(3, 2, 3, 3)).astype(np.float32))
        b = Tensor(RNG.normal(size=3).astype(np.float32), requires_grad=True)
        out = conv2d(x, w, b, stride=1, padding=1)
        out.backward(np.ones(out.shape, dtype=np.float32))
        np.testing.assert_allclose(b.grad, 2 * 4 * 4 * np.ones(3), rtol=1e-5)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 2, 3, 3), dtype=np.float32))
        with pytest.raises(ShapeError):
            conv2d(x, w)

    def test_empty_output_raises(self):
        x = Tensor(np.zeros((1, 1, 2, 2), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        with pytest.raises(ShapeError):
            conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_gradient(self):
        check_gradient(lambda t: avg_pool2d(t, 2), RNG.normal(size=(1, 2, 4, 4)))

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4), dtype=np.float32))
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), 1.0)

    def test_pad2d_roundtrip(self):
        check_gradient(lambda t: pad2d(t, 2), RNG.normal(size=(1, 1, 3, 3)))


class TestBatchNorm:
    def test_training_normalizes(self):
        x = Tensor(RNG.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)).astype(np.float32))
        gamma = Tensor(np.ones(4, dtype=np.float32))
        beta = Tensor(np.zeros(4, dtype=np.float32))
        out, mean, var = batch_norm2d(
            x, gamma, beta, np.zeros(4), np.ones(4), training=True
        )
        normalized = out.numpy()
        np.testing.assert_allclose(normalized.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(normalized.std(axis=(0, 2, 3)), 1.0, atol=1e-3)
        np.testing.assert_allclose(mean, x.numpy().mean(axis=(0, 2, 3)), rtol=1e-4)

    def test_inference_uses_running_stats(self):
        x = Tensor(np.full((2, 1, 2, 2), 10.0, dtype=np.float32))
        gamma = Tensor(np.ones(1, dtype=np.float32))
        beta = Tensor(np.zeros(1, dtype=np.float32))
        out, _, _ = batch_norm2d(
            x, gamma, beta, np.array([10.0]), np.array([4.0]), training=False
        )
        np.testing.assert_allclose(out.numpy(), 0.0, atol=1e-5)

    def test_training_input_gradient(self):
        gamma = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)

        def fn(t):
            out, _, _ = batch_norm2d(
                t, gamma, beta, np.zeros(2), np.ones(2), training=True
            )
            return out

        check_gradient(fn, RNG.normal(size=(4, 2, 3, 3)))

    def test_gamma_beta_gradients(self):
        x = Tensor(RNG.normal(size=(4, 2, 3, 3)).astype(np.float32))
        gamma = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        beta = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        out, _, _ = batch_norm2d(x, gamma, beta, np.zeros(2), np.ones(2), training=True)
        out.sum().backward()
        assert gamma.grad.shape == (2,)
        np.testing.assert_allclose(beta.grad, 4 * 3 * 3 * np.ones(2), rtol=1e-5)

    def test_non_nchw_raises(self):
        gamma = Tensor(np.ones(2, dtype=np.float32))
        beta = Tensor(np.zeros(2, dtype=np.float32))
        with pytest.raises(ShapeError):
            batch_norm2d(
                Tensor(np.zeros((2, 2), dtype=np.float32)),
                gamma,
                beta,
                np.zeros(2),
                np.ones(2),
                training=True,
            )
