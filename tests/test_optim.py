"""Optimizer and schedule behavior."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineSchedule, StepSchedule


def quadratic_step(optimizer, param):
    """One optimization step on f(w) = 0.5 * ||w||^2 (gradient = w)."""
    param.grad = param.data.copy()
    optimizer.step()


class TestSGD:
    def test_plain_sgd_matches_formula(self):
        p = Parameter(np.array([1.0, -2.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.9, -1.8], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v = 1.0, w = 1 - 0.1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v = 1.9, w = 0.9 - 0.19
        np.testing.assert_allclose(p.data, [0.71], rtol=1e-5)

    def test_weight_decay_pulls_toward_zero(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data, [0.9], rtol=1e-6)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -5.0], dtype=np.float32))
        opt = SGD([p], lr=0.3, momentum=0.5)
        for _ in range(100):
            quadratic_step(opt, p)
        assert np.abs(p.data).max() < 1e-3

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0], dtype=np.float32)
        opt.step()
        # Bias correction makes the first step ~= lr regardless of scale.
        np.testing.assert_allclose(p.data, [1.0 - 0.01], rtol=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([3.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, p)
        assert abs(float(p.data[0])) < 1e-2

    def test_weight_decay(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert float(p.data[0]) < 1.0


class TestSchedules:
    def test_step_schedule_decays(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_schedule_reaches_min(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=10, min_lr=0.05)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.05)

    def test_cosine_is_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=5)
        values = []
        for _ in range(5):
            sched.step()
            values.append(opt.lr)
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_schedule_args(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepSchedule(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineSchedule(opt, total_epochs=0)
