"""Live fleet observability: beacons, health detection, watch, timelines.

Layered cheapest-first, mirroring ``test_scheduler.py``:

1. **Beacon units**: atomic writes, rolling rates under an injected clock,
   reader tolerance to corrupt/foreign files, fork-discard semantics.
2. **Timeline/OpenMetrics units**: ring compaction, exposition format.
3. **Health detection**: every registered ``HEALTH_CAUSES`` slug from
   synthetic beacons (pure-function, no sleeping).
4. **Fleet end-to-end**: a two-worker fault-slowed queue drain with
   beacons + timeline sampling on merges byte-identical to the unsharded
   run, ``fleet_status`` is sane mid-drain and after, and a synthetic
   stalled worker surfaces in both ``queue-status`` and ``watch``.
"""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.errors import HEALTH_CAUSES, SweepError
from repro.parallel import (
    SweepGrid,
    SweepTask,
    init_queue,
    merge_journals,
    merged_metrics,
    queue_status,
    run_queue,
    run_sweep,
    write_merged_events,
)
from repro.parallel.scheduler import BEACON_DIR, claim_next
from repro.parallel.worker import reset_worker_state
from repro.telemetry.export import render_openmetrics, write_openmetrics
from repro.telemetry.live import (
    BEACON_SUFFIX,
    BeaconWriter,
    HealthThresholds,
    detect_health,
    fleet_status,
    fleet_trace_from_queue,
    format_fleet,
    health_issue,
    read_beacons,
    reset_live,
    write_fleet_trace,
)
from repro.telemetry.registry import TelemetryError
from repro.telemetry.timeline import TimelineSampler, read_timeline
from repro.telemetry.trace import stitch_traces, validate_trace


# ---------------------------------------------------------------------------
# Shared fakes (the same outcome shape as test_scheduler.py).
def _rich_runner(payload):
    task = SweepTask.from_json(payload["task"])
    value = float(task.seed * 10 + len(task.method))
    return {
        "status": "ok",
        "row": {
            "model": task.model, "device": task.device, "seed": task.seed,
            "method": task.method, "offline_n_flip": value, "offline_ta": 90.0,
            "offline_asr": 80.0, "online_n_flip": value, "online_ta": 88.0,
            "online_asr": 79.0, "r_match": 100.0,
        },
        "duration_seconds": 0.01,
        "metrics": {
            "counters": {"worker.flips": value},
            "gauges": {"worker.last_seed": float(task.seed)},
            "histogram_values": {"worker.loss": [value / 100.0]},
        },
        "spans": [],
        "events": [
            {"seq": 0, "kind": "task.done", "span": "attack",
             "data": {"task_id": task.task_id}},
        ],
    }


def _grid(methods=("a", "b", "c"), seeds=(0, 1)):
    return SweepGrid(methods=methods, models=("m",), devices=("K1",), seeds=seeds)


def _reference(tmp_path, grid):
    path = tmp_path / "reference.jsonl"
    run_sweep(grid, workers=1, task_runner=_rich_runner, journal_path=str(path))
    return merge_journals([path])


def _assert_identical(tmp_path, result, reference):
    assert json.dumps(result.rows, sort_keys=True) == json.dumps(
        reference.rows, sort_keys=True
    )
    assert merged_metrics(result) == merged_metrics(reference)
    got, want = tmp_path / "got.events.jsonl", tmp_path / "want.events.jsonl"
    write_merged_events(result, got)
    write_merged_events(reference, want)
    assert got.read_bytes() == want.read_bytes()


def _beacon(worker="w1", now=1000.0, **overrides):
    """A minimal synthetic beacon document for detect_health tests."""
    doc = {
        "schema": "repro-beacon/1",
        "worker": worker,
        "phase": "running",
        "updated_unix": now,
        "last_progress_unix": now,
        "tasks_done": 1,
        "tasks_failed": 0,
        "lease_expired": 0,
        "rate_tasks_per_s": 1.0,
        "current_task": "t",
    }
    doc.update(overrides)
    return doc


class _FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Beacon units.
class TestBeaconWriter:
    def test_beacon_document_shape_and_atomicity(self, tmp_path):
        clock = _FakeClock()
        path = tmp_path / f"w1{BEACON_SUFFIX}"
        beacon = BeaconWriter(path, worker="w1", interval=60.0,
                              counters_fn=lambda: {"sched.claims": 2.0},
                              clock=clock)
        beacon.start()
        try:
            doc = json.loads(path.read_text())
            assert doc["schema"] == "repro-beacon/1"
            assert doc["worker"] == "w1" and doc["phase"] == "starting"
            assert doc["counters"] == {"sched.claims": 2.0}
            # No torn temp files survive the atomic replace.
            assert list(tmp_path.glob("*.tmp")) == []
        finally:
            beacon.stop()
        assert json.loads(path.read_text())["phase"] == "done"

    def test_rate_and_progress_tracking_with_injected_clock(self, tmp_path):
        clock = _FakeClock(start=100.0)
        beacon = BeaconWriter(tmp_path / f"w{BEACON_SUFFIX}", worker="w",
                              interval=60.0, counters_fn=dict, clock=clock)
        beacon.start()
        try:
            clock.advance(10.0)
            beacon.update(tasks_done=5)
            assert beacon.payload()["last_progress_unix"] == 110.0
            clock.advance(10.0)
            beacon.update(phase="idle")  # no progress: timestamp must not move
            doc = beacon.payload()
            assert doc["last_progress_unix"] == 110.0
            # 5 tasks over the 20 s window covered by the rate samples.
            assert doc["rate_tasks_per_s"] == pytest.approx(0.25)
        finally:
            beacon.stop()

    def test_counter_deltas_are_per_interval(self, tmp_path):
        counters = {"sched.claims": 0.0}
        beacon = BeaconWriter(tmp_path / f"w{BEACON_SUFFIX}", worker="w",
                              interval=60.0, counters_fn=lambda: dict(counters))
        counters["sched.claims"] = 3.0
        assert beacon.payload()["counter_deltas"] == {"sched.claims": 3.0}
        counters["sched.claims"] = 5.0
        assert beacon.payload()["counter_deltas"] == {"sched.claims": 2.0}

    def test_read_beacons_skips_corrupt_and_foreign_files(self, tmp_path):
        (tmp_path / f"good{BEACON_SUFFIX}").write_text(
            json.dumps(_beacon(worker="good")))
        (tmp_path / f"torn{BEACON_SUFFIX}").write_text('{"schema": "repro-be')
        (tmp_path / f"alien{BEACON_SUFFIX}").write_text(
            json.dumps({"schema": "other/1", "worker": "alien"}))
        (tmp_path / f"zz{BEACON_SUFFIX}").write_text(
            json.dumps(_beacon(worker="aa")))
        beacons = read_beacons(tmp_path)
        assert [b["worker"] for b in beacons] == ["aa", "good"]
        assert read_beacons(tmp_path / "missing") == []

    def test_discard_stops_all_writes(self, tmp_path):
        path = tmp_path / f"w{BEACON_SUFFIX}"
        beacon = BeaconWriter(path, worker="w", interval=60.0, counters_fn=dict)
        beacon.start()
        before = path.read_text()
        beacon.discard()
        beacon.update(tasks_done=99)
        beacon.stop()  # must not resurrect the file either
        assert path.read_text() == before

    def test_reset_worker_state_disowns_live_writers(self, tmp_path):
        """A forked worker inherits the parent's writer objects; the
        process-state reset must discard them so the child never rewrites
        the parent's beacon path as its own."""
        path = tmp_path / f"parent{BEACON_SUFFIX}"
        beacon = BeaconWriter(path, worker="parent", interval=60.0,
                              counters_fn=dict).start()
        sampler = TimelineSampler(tmp_path / "parent.timeline.jsonl",
                                  interval=60.0, counters_fn=dict).start()
        before = path.read_text()
        reset_worker_state()
        beacon.update(tasks_done=42)
        beacon.stop()
        assert path.read_text() == before
        assert sampler.sample() is None
        reset_live()  # idempotent on an empty registry


# ---------------------------------------------------------------------------
# Timeline sampler + OpenMetrics exposition.
class TestTimelineSampler:
    def test_samples_carry_counters_deltas_and_extras(self, tmp_path):
        counters = {"sched.claims": 1.0}
        path = tmp_path / "t.timeline.jsonl"
        sampler = TimelineSampler(path, interval=60.0,
                                  counters_fn=lambda: dict(counters),
                                  extra_fn=lambda: {"worker": "w1"})
        sampler.start()
        counters["sched.claims"] = 4.0
        sampler.sample()
        sampler.stop()
        samples = read_timeline(path)
        assert len(samples) == 3  # start + explicit + final
        assert samples[0]["deltas"] == {"sched.claims": 1.0}
        assert samples[1]["deltas"] == {"sched.claims": 3.0}
        assert all(s["worker"] == "w1" for s in samples)

    def test_ring_compaction_bounds_the_file(self, tmp_path):
        path = tmp_path / "t.timeline.jsonl"
        sampler = TimelineSampler(path, interval=60.0, counters_fn=dict,
                                  max_samples=4)
        sampler.start()
        for _ in range(10):
            sampler.sample()
        sampler.stop()
        samples = read_timeline(path)
        assert len(samples) <= 4
        # The compacted file self-identifies with a schema line.
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"kind": "schema", "value": "repro-timeline/1"}

    def test_each_tick_rewrites_openmetrics_textfile(self, tmp_path):
        prom = tmp_path / "live.prom"
        sampler = TimelineSampler(tmp_path / "t.jsonl", interval=60.0,
                                  counters_fn=lambda: {"sched.claims": 7.0},
                                  openmetrics_path=prom)
        sampler.start()
        sampler.stop()
        text = prom.read_text()
        assert "# TYPE repro_sched_claims counter" in text
        assert "repro_sched_claims_total 7" in text
        assert text.endswith("# EOF\n")

    def test_read_timeline_tolerates_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "schema", "value": "repro-timeline/1"}) + "\n"
            + json.dumps({"kind": "sample", "t": 1.0, "counters": {}}) + "\n"
            + '{"kind": "sample", "t": 2.0, "coun\n'
        )
        assert len(read_timeline(path)) == 1
        assert read_timeline(tmp_path / "missing.jsonl") == []


class TestOpenMetrics:
    def test_exposition_format(self):
        text = render_openmetrics({
            "counters": {"sched.claims": 3.0},
            "gauges": {"engine.batched_speedup": 2.5, "unset": None},
            "histograms": {"train.loss": {
                "count": 4, "sum": 2.0, "p50": 0.4, "p95": 0.9}},
        })
        lines = text.splitlines()
        assert "# TYPE repro_sched_claims counter" in lines
        assert "repro_sched_claims_total 3" in lines
        assert "# TYPE repro_engine_batched_speedup gauge" in lines
        assert "repro_engine_batched_speedup 2.5" in lines
        assert "# TYPE repro_train_loss summary" in lines
        assert 'repro_train_loss{quantile="0.5"} 0.4' in lines
        assert 'repro_train_loss{quantile="0.95"} 0.9' in lines
        assert "repro_train_loss_count 4" in lines
        assert "repro_train_loss_sum 2" in lines
        assert "unset" not in text  # None gauges are skipped, not emitted as 0
        assert lines[-1] == "# EOF"

    def test_write_openmetrics_counts_lines_and_is_atomic(self, tmp_path):
        path = tmp_path / "m.prom"
        lines = write_openmetrics({"counters": {"a.b": 1.0}}, path)
        assert lines == len(path.read_text().splitlines())
        assert list(tmp_path.glob("*.tmp")) == []

    def test_bench_report_round_trips(self):
        """The full `repro bench --openmetrics` path: a build_report doc
        (histogram summaries, None gauges) renders without error."""
        from repro.telemetry.export import build_report

        registry, tracer = telemetry.MetricsRegistry(), telemetry.SpanTracer()
        registry.counter("pipeline.bits").add(3.0)
        registry.histogram("train.loss").observe(0.5)
        text = render_openmetrics(build_report(registry, tracer))
        assert "repro_pipeline_bits_total 3" in text and text.endswith("# EOF\n")


# ---------------------------------------------------------------------------
# Stitched fleet traces.
class TestStitchTraces:
    def _trace(self, name):
        return {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1,
                 "args": {"name": "repro"}},
                {"name": "sweep.task", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0.0, "dur": 5.0, "args": {"worker": name}},
            ],
            "displayTimeUnit": "ms",
        }

    def test_one_lane_per_worker(self):
        stitched = stitch_traces(
            [("w1", self._trace("w1")), ("w2", self._trace("w2"))],
            meta={"queue": "q"},
        )
        validate_trace(stitched)
        lanes = {e["pid"]: e["args"]["name"] for e in stitched["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert lanes == {1: "w1", 2: "w2"}
        spans = [e for e in stitched["traceEvents"] if e["ph"] == "X"]
        assert [s["pid"] for s in spans] == [1, 2]
        assert stitched["otherData"] == {"queue": "q"}


# ---------------------------------------------------------------------------
# Health detection (pure function over synthetic beacons -- no sleeping).
class TestDetectHealth:
    NOW = 1000.0

    def _detect(self, beacons, total=10, done=2, failed=0, expired=0, **kw):
        return detect_health(total, done, failed, beacons,
                             expired_leases=expired, now=self.NOW,
                             thresholds=HealthThresholds(**kw))

    def test_healthy_fleet_is_quiet(self):
        assert self._detect([_beacon(now=self.NOW)]) == []

    def test_stalled_worker(self):
        issues = self._detect([_beacon(updated_unix=self.NOW - 999)])
        assert [i["cause"] for i in issues] == ["stalled-worker"]
        assert issues[0]["worker"] == "w1"
        assert issues[0]["heartbeat_age_seconds"] == pytest.approx(999.0)

    def test_stale_beacon_of_drained_queue_is_fine(self):
        beacons = [_beacon(updated_unix=self.NOW - 999)]
        assert self._detect(beacons, total=10, done=10) == []
        assert self._detect([_beacon(phase="done",
                                     updated_unix=self.NOW - 999)]) == []

    def test_no_progress_while_heartbeat_fresh(self):
        beacon = _beacon(updated_unix=self.NOW,
                         last_progress_unix=self.NOW - 120,
                         current_task="m|K1|seed=0|a")
        issues = self._detect([beacon])
        assert [i["cause"] for i in issues] == ["no-progress"]
        assert issues[0]["current_task"] == "m|K1|seed=0|a"

    def test_clock_skew(self):
        issues = self._detect([_beacon(updated_unix=self.NOW + 60)])
        assert [i["cause"] for i in issues] == ["clock-skew"]
        assert issues[0]["skew_seconds"] == pytest.approx(60.0)

    def test_expired_lease_churn_sums_beacons_and_queue(self):
        beacons = [_beacon(worker="w1", now=self.NOW, lease_expired=2)]
        issues = self._detect(beacons, expired=1)
        assert [i["cause"] for i in issues] == ["expired-lease-churn"]
        assert issues[0]["expired_total"] == 3
        # ... but a drained queue's historical churn is not a live problem.
        assert self._detect(beacons, total=2, done=2, expired=1) == []

    def test_failure_rate_needs_volume_and_ratio(self):
        assert self._detect([], done=2, failed=1) == []  # below min_failures
        issues = self._detect([], done=4, failed=2)
        assert [i["cause"] for i in issues] == ["failure-rate"]
        assert (issues[0]["failed"], issues[0]["done"]) == (2, 4)

    def test_every_registered_cause_is_reachable(self):
        beacons = [
            _beacon(worker="stale", updated_unix=self.NOW - 999),
            _beacon(worker="future", updated_unix=self.NOW + 60),
            _beacon(worker="wedged", updated_unix=self.NOW,
                    last_progress_unix=self.NOW - 999, lease_expired=5),
        ]
        issues = self._detect(beacons, done=4, failed=2)
        assert {i["cause"] for i in issues} == HEALTH_CAUSES

    def test_unregistered_cause_is_rejected(self):
        with pytest.raises(TelemetryError, match="not registered"):
            health_issue("totally-new-cause", "nope")


# ---------------------------------------------------------------------------
# Fleet end-to-end: queue drain with the live layer on.
class TestFleetEndToEnd:
    def test_live_layer_never_perturbs_merged_bytes(self, tmp_path, monkeypatch):
        """Acceptance: beacons + timeline sampling + a fault-injection delay
        on one worker change nothing about the merged rows/metrics/events."""
        from repro.parallel import scheduler

        grid = _grid()
        reference = _reference(tmp_path, grid)
        manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        monkeypatch.setenv(scheduler.FAULT_DELAY_ENV, "0.02")
        slow = run_queue(tmp_path / "q", worker_id="slow", task_runner=_rich_runner,
                         max_tasks=2, wait_for_completion=False,
                         beacon_interval=0.1, timeline_interval=0.1)
        monkeypatch.delenv(scheduler.FAULT_DELAY_ENV)

        # Mid-drain snapshot: one worker finished its slice, queue not drained.
        fleet = fleet_status(tmp_path / "q")
        assert fleet["schema"] == "repro-live/1"
        assert not fleet["drained"] and fleet["done"] == 2
        assert [w["worker"] for w in fleet["workers"]] == ["slow"]
        assert fleet["drain_percent"] == 33.33  # rounded for display

        fast = run_queue(tmp_path / "q", worker_id="fast", task_runner=_rich_runner,
                         beacon_interval=0.1, timeline_interval=0.1)
        result = merge_journals([slow.journal_path, fast.journal_path])
        _assert_identical(tmp_path, result, reference)

        # The live artifacts exist, in their own subdirs, outside journals/.
        beacons = read_beacons(manifest.root / BEACON_DIR)
        assert [b["worker"] for b in beacons] == ["fast", "slow"]
        assert all(b["phase"] == "done" for b in beacons)
        assert beacons[0]["tasks_done"] == fast.claims
        assert read_timeline(manifest.timeline_path("fast"))
        assert not list((manifest.root / "journals").glob("*beacon*"))

        # Drained snapshot: ETA collapses to 0 and health is quiet.
        fleet = fleet_status(tmp_path / "q")
        assert fleet["drained"] and fleet["eta_seconds"] == 0.0
        assert fleet["done"] == 6 and fleet["health"] == []
        assert len(fleet["workers"]) == 2
        text = format_fleet(fleet)
        assert "drained: yes" in text and "health: ok" in text

    def test_queue_status_reports_heartbeats_and_lease_countdowns(self, tmp_path):
        grid = _grid()
        manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  max_tasks=1, wait_for_completion=False, beacon_interval=0.1)
        claim_next(manifest, "w2")  # a live lease, never executed
        payload = queue_status(tmp_path / "q").to_json()
        assert payload["failed"] == 0
        assert set(payload["heartbeats"]) == {"w1"}
        assert payload["heartbeats"]["w1"] < 60.0
        (lease,) = payload["leases"]
        assert lease["worker"] == "w2" and not lease["expired"]
        assert 0.0 < lease["expires_in_seconds"] <= 60.0

    def test_synthetic_stalled_worker_surfaces_everywhere(self, tmp_path):
        """A beacon whose heartbeat went stale mid-drain must raise
        ``stalled-worker`` in queue_status(), fleet_status() and the watch
        CLI -- and its dead rate must not count toward fleet throughput."""
        import time as _time

        grid = _grid()
        manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="live", task_runner=_rich_runner,
                  max_tasks=1, wait_for_completion=False, beacon_interval=0.1)
        stale = _beacon(worker="ghost", now=_time.time() - 999,
                        rate_tasks_per_s=5.0)
        beacon_dir = manifest.root / BEACON_DIR
        beacon_dir.mkdir(parents=True, exist_ok=True)
        (beacon_dir / f"ghost{BEACON_SUFFIX}").write_text(json.dumps(stale))

        status = queue_status(tmp_path / "q")
        causes = [issue["cause"] for issue in status.health]
        assert "stalled-worker" in causes
        assert status.to_json()["health"] == status.health

        fleet = fleet_status(tmp_path / "q")
        assert "stalled-worker" in [i["cause"] for i in fleet["health"]]
        assert fleet["throughput_tasks_per_s"] < 5.0
        assert "health [stalled-worker]" in format_fleet(fleet)

    def test_fleet_trace_stitches_one_lane_per_worker(self, tmp_path):
        grid = _grid(methods=("a", "b"), seeds=(0,))
        init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  max_tasks=1, wait_for_completion=False, beacon_interval=0)
        run_queue(tmp_path / "q", worker_id="w2", task_runner=_rich_runner,
                  beacon_interval=0)
        trace = fleet_trace_from_queue(tmp_path / "q")
        validate_trace(trace)
        lanes = sorted(e["args"]["name"] for e in trace["traceEvents"]
                       if e["ph"] == "M" and e["name"] == "process_name")
        assert lanes == ["w1", "w2"]
        out = tmp_path / "fleet.trace.json"
        assert write_fleet_trace(out, tmp_path / "q") == len(trace["traceEvents"])
        validate_trace(json.loads(out.read_text()))

    def test_fleet_status_rejects_non_queue_dir(self, tmp_path):
        with pytest.raises(SweepError, match="not a queue directory"):
            fleet_status(tmp_path)


# ---------------------------------------------------------------------------
# The watch CLI and the plain-sweep live directory.
class TestWatchCli:
    def _drain(self, tmp_path):
        grid = _grid(methods=("a", "b"), seeds=(0,))
        init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  beacon_interval=0.1)
        return tmp_path / "q"

    def test_watch_once_json_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        qdir = self._drain(tmp_path)
        assert main(["watch", str(qdir), "--once", "--json"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert fleet["schema"] == "repro-live/1"
        assert fleet["drained"] is True and fleet["health"] == []
        assert [w["worker"] for w in fleet["workers"]] == ["w1"]

    def test_watch_loops_until_drained_and_writes_trace(self, tmp_path, capsys):
        from repro.cli import main

        qdir = self._drain(tmp_path)
        trace_path = tmp_path / "fleet.json"
        # Already drained: the no-flag loop renders once and exits.
        assert main(["watch", str(qdir), "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "drained: yes" in out and "stitched fleet trace" in out
        validate_trace(json.loads(trace_path.read_text()))

    def test_watch_rejects_non_queue_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["watch", str(tmp_path)]) == 2
        assert "watch failed" in capsys.readouterr().err

    def test_watch_stall_after_flag_reaches_detection(self, tmp_path, capsys):
        import time as _time

        from repro.cli import main

        grid = _grid()
        manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  max_tasks=1, wait_for_completion=False, beacon_interval=0)
        beacon_dir = manifest.root / BEACON_DIR
        beacon_dir.mkdir(parents=True, exist_ok=True)
        (beacon_dir / f"ghost{BEACON_SUFFIX}").write_text(
            json.dumps(_beacon(worker="ghost", now=_time.time() - 10)))
        # 10 s of silence is a stall only under the tightened threshold.
        assert main(["watch", str(tmp_path / "q"), "--once", "--json",
                     "--stall-after", "5"]) == 0
        fleet = json.loads(capsys.readouterr().out)
        assert "stalled-worker" in [i["cause"] for i in fleet["health"]]

    def test_queue_dir_report_renders_scheduler_decisions(self, tmp_path, capsys):
        """``repro report <queue-dir>`` renders a per-worker results table
        plus the scheduler-decision table from the ``--events`` decision
        logs copied into ``<queue>/events/``."""
        from repro.cli import main
        from repro.telemetry.report import render_report

        grid = _grid(methods=("a", "b"), seeds=(0,))
        manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        telemetry.enable_events()
        telemetry.get_recorder().reset()
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  beacon_interval=0)
        events_path = manifest.events_path("w1")
        events_path.parent.mkdir(parents=True, exist_ok=True)
        telemetry.dump_events(str(events_path), meta={"worker": "w1"})

        assert main(["report", str(tmp_path / "q")]) == 0
        out = capsys.readouterr().out
        assert "# Queue fleet report" in out
        assert "## Scheduler decisions" in out
        assert "| w1 | 2 | 0 | 2 | 0 | 0 |" in out  # claims/steals/commits/...

        payload = json.loads(render_report(str(tmp_path / "q"), fmt="json"))
        assert payload["source"] == "queue"
        assert payload["report"]["sched"]["w1"]["claim"] == 2
        assert payload["report"]["sched"]["w1"]["commit"] == 2
        assert payload["report"]["workers"]["w1"]["ok"] == 2

    def test_queue_dir_report_without_decision_logs_degrades(self, tmp_path):
        from repro.telemetry.report import render_report

        grid = _grid(methods=("a",), seeds=(0,))
        init_queue(tmp_path / "q", grid, lease_ttl=60.0)
        run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                  beacon_interval=0)
        markdown = render_report(str(tmp_path / "q"))
        assert "no decision logs found" in markdown

    def test_plain_sweep_live_dir_beacon(self, tmp_path):
        grid = _grid(methods=("a",), seeds=(0, 1))
        live_dir = tmp_path / "live"
        run_sweep(grid, workers=1, task_runner=_rich_runner,
                  journal_path=str(tmp_path / "j.jsonl"),
                  live_dir=str(live_dir), beacon_interval=0.1)
        (beacon,) = read_beacons(live_dir)
        assert beacon["phase"] == "done"
        assert beacon["tasks_done"] == 2 and beacon["tasks_failed"] == 0
