"""Datasets, loaders and the synthetic task generator."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.synthetic import (
    SyntheticImageClassification,
    SyntheticSpec,
    make_cifar10_like,
    make_imagenet_like,
)


class TestArrayDataset:
    def test_basic_indexing(self):
        ds = ArrayDataset(np.zeros((5, 3, 4, 4)), np.arange(5))
        assert len(ds) == 5
        image, label = ds[2]
        assert image.shape == (3, 4, 4)
        assert label == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 3, 4, 4)), np.arange(4))

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 4)), np.arange(5))

    def test_subset_and_sample(self):
        ds = ArrayDataset(np.arange(5 * 3 * 2 * 2).reshape(5, 3, 2, 2), np.arange(5))
        sub = ds.subset(np.array([0, 4]))
        assert len(sub) == 2
        assert sub.labels.tolist() == [0, 4]
        sampled = ds.sample(3, rng=0)
        assert len(sampled) == 3
        with pytest.raises(ValueError):
            ds.sample(10)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = ArrayDataset(np.zeros((10, 1, 2, 2)), np.arange(10))
        loader = DataLoader(ds, batch_size=3)
        labels = np.concatenate([labels for _, labels in loader])
        assert sorted(labels.tolist()) == list(range(10))
        assert len(loader) == 4

    def test_drop_last(self):
        ds = ArrayDataset(np.zeros((10, 1, 2, 2)), np.arange(10))
        loader = DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(len(lbl) for _, lbl in loader) == 9

    def test_shuffle_changes_order_deterministically(self):
        ds = ArrayDataset(np.zeros((10, 1, 2, 2)), np.arange(10))
        first = np.concatenate([l for _, l in DataLoader(ds, 10, shuffle=True, rng=0)])
        second = np.concatenate([l for _, l in DataLoader(ds, 10, shuffle=True, rng=0)])
        np.testing.assert_array_equal(first, second)
        assert not np.array_equal(first, np.arange(10))

    def test_invalid_batch_size(self):
        ds = ArrayDataset(np.zeros((2, 1, 2, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)


class TestSyntheticTask:
    def test_determinism_across_instances(self):
        spec = SyntheticSpec(num_classes=3, image_size=8)
        a = SyntheticImageClassification(spec, seed=5).generate(10, "train")
        b = SyntheticImageClassification(spec, seed=5).generate(10, "train")
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_splits_are_disjoint_streams(self):
        task = SyntheticImageClassification(SyntheticSpec(num_classes=3, image_size=8), seed=5)
        train = task.generate(20, "train")
        test = task.generate(20, "test")
        assert not np.allclose(train.images, test.images)

    def test_unknown_split_raises(self):
        task = SyntheticImageClassification(seed=0)
        with pytest.raises(ValueError):
            task.generate(4, "validation")

    def test_images_are_valid(self):
        task = SyntheticImageClassification(SyntheticSpec(num_classes=4, image_size=16), seed=1)
        ds = task.generate(30, "train")
        assert ds.images.shape == (30, 3, 16, 16)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0
        assert set(np.unique(ds.labels)) <= set(range(4))

    def test_classes_are_distinguishable_by_prototype_distance(self):
        # Same-class samples should be closer to their class prototype bank
        # than to other classes' banks, on average.
        spec = SyntheticSpec(num_classes=3, image_size=16, noise_std=0.05, max_shift=0)
        task = SyntheticImageClassification(spec, seed=2)
        ds = task.generate(60, "train")
        protos = task._prototypes.mean(axis=1)  # (classes, C, H, W)
        correct = 0
        for image, label in zip(ds.images, ds.labels):
            distances = [np.linalg.norm(image - proto) for proto in protos]
            correct += int(np.argmin(distances) == label)
        assert correct / len(ds) > 0.8

    def test_factory_functions(self):
        train, test, attacker = make_cifar10_like(train_count=8, test_count=4, attacker_count=2)
        assert len(train) == 8 and len(test) == 4 and len(attacker) == 2
        assert train.images.shape[1:] == (3, 32, 32)
        train_i, _, _ = make_imagenet_like(
            train_count=6, test_count=3, attacker_count=2, num_classes=12, image_size=16
        )
        assert train_i.images.shape[1:] == (3, 16, 16)
