"""DRAM array data storage and vulnerable-cell physics."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry, PAGE_FRAME_SIZE


@pytest.fixture
def geometry():
    return DRAMGeometry(num_banks=4, rows_per_bank=32, row_size_bytes=8192)


class TestDataStorage:
    def test_read_back_what_was_written(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=0.0, seed=0)
        payload = np.arange(100, dtype=np.uint8)
        dram.write_bytes(12345, payload)
        np.testing.assert_array_equal(dram.read_bytes(12345, 100), payload)

    def test_write_spanning_rows(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=0.0, seed=0)
        start = 8192 - 50  # crosses a row boundary
        payload = np.full(100, 0xAB, dtype=np.uint8)
        dram.write_bytes(start, payload)
        np.testing.assert_array_equal(dram.read_bytes(start, 100), payload)

    def test_frame_io(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=0.0, seed=0)
        payload = np.random.default_rng(0).integers(0, 256, PAGE_FRAME_SIZE).astype(np.uint8)
        dram.write_frame(5, payload)
        np.testing.assert_array_equal(dram.read_frame(5), payload)

    def test_frame_payload_size_checked(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=0.0, seed=0)
        with pytest.raises(MemoryModelError):
            dram.write_frame(0, np.zeros(100, dtype=np.uint8))

    def test_negative_flip_mean_raises(self, geometry):
        with pytest.raises(MemoryModelError):
            DRAMArray(geometry, flips_per_page_mean=-1.0)


class TestVulnerableCells:
    def test_cells_are_deterministic_per_device(self, geometry):
        a = DRAMArray(geometry, flips_per_page_mean=10.0, seed=3)
        b = DRAMArray(geometry, flips_per_page_mean=10.0, seed=3)
        assert a.vulnerable_cells(1, 5) == b.vulnerable_cells(1, 5)

    def test_different_seeds_differ(self, geometry):
        a = DRAMArray(geometry, flips_per_page_mean=10.0, seed=3)
        b = DRAMArray(geometry, flips_per_page_mean=10.0, seed=4)
        assert a.vulnerable_cells(1, 5) != b.vulnerable_cells(1, 5)

    def test_density_matches_profile(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=12.0, seed=0)
        counts = [
            len(dram.vulnerable_cells(bank, row))
            for bank in range(geometry.num_banks)
            for row in range(geometry.rows_per_bank)
        ]
        mean_per_page = np.mean(counts) / geometry.pages_per_row
        assert mean_per_page == pytest.approx(12.0, rel=0.2)

    def test_zero_mean_has_no_cells(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=0.0, seed=0)
        assert dram.vulnerable_cells(0, 0) == []


class TestHammering:
    def test_full_intensity_flips_direction_compatible_cells(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=30.0, seed=1)
        cells = dram.vulnerable_cells(2, 3)
        up_cells = [c for c in cells if c.direction == 1]
        # victim row all zeros: only 0->1 cells can fire
        flips = dram.hammer_row(2, 3, intensity=1.0)
        assert len(flips) == len(up_cells)
        assert all(direction == 1 for _, _, direction in flips)

    def test_flips_actually_change_stored_data(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=30.0, seed=1)
        flips = dram.hammer_row(0, 1, intensity=1.0)
        row_bytes = dram.read_bytes(
            dram.geometry.frames_in_row(0, 1)[0] * PAGE_FRAME_SIZE, 8192
        )
        for column, bit, _ in flips:
            assert row_bytes[column] & (1 << bit)

    def test_hammering_is_idempotent_on_same_data(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=30.0, seed=1)
        first = dram.hammer_row(1, 1, intensity=1.0)
        second = dram.hammer_row(1, 1, intensity=1.0)
        assert first and not second  # already flipped cells cannot re-flip

    def test_one_to_zero_direction(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=30.0, seed=1)
        base = geometry.frames_in_row(3, 7)[0] * PAGE_FRAME_SIZE
        dram.write_bytes(base, np.full(8192, 0xFF, dtype=np.uint8))
        flips = dram.hammer_row(3, 7, intensity=1.0)
        assert flips and all(direction == -1 for _, _, direction in flips)

    def test_intensity_gates_cells_by_strength(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=40.0, seed=2)
        weak = len(dram.hammer_row(0, 9, intensity=0.4))
        dram2 = DRAMArray(geometry, flips_per_page_mean=40.0, seed=2)
        strong = len(dram2.hammer_row(0, 9, intensity=1.0))
        assert weak < strong

    def test_zero_intensity_never_flips(self, geometry):
        dram = DRAMArray(geometry, flips_per_page_mean=40.0, seed=2)
        assert dram.hammer_row(0, 0, intensity=0.0) == []
