"""QuantizedModel: layout, synchronization and bit-flip application."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quant import QuantizedModel
from repro.quant.bits import hamming_distance


class TestLayout:
    def test_total_params_matches_module(self, tiny_model, tiny_quantized):
        assert tiny_quantized.total_params == tiny_model.num_parameters()
        assert tiny_quantized.total_bits == 8 * tiny_quantized.total_params

    def test_offsets_are_cumulative(self, tiny_quantized):
        names = tiny_quantized.parameter_names
        offset = 0
        params = dict(tiny_quantized.module.named_parameters())
        for name in names:
            assert tiny_quantized.offset_of(name) == offset
            offset += params[name].size

    def test_locate_roundtrip(self, tiny_quantized):
        for flat_index in (0, 5, tiny_quantized.total_params - 1):
            name, local = tiny_quantized.locate(flat_index)
            assert tiny_quantized.offset_of(name) + local == flat_index

    def test_locate_out_of_range(self, tiny_quantized):
        with pytest.raises(QuantizationError):
            tiny_quantized.locate(tiny_quantized.total_params)

    def test_non_8bit_rejected(self, tiny_model):
        with pytest.raises(QuantizationError):
            QuantizedModel(tiny_model, num_bits=4)


class TestSync:
    def test_module_weights_are_dequantized_values(self, tiny_quantized):
        params = dict(tiny_quantized.module.named_parameters())
        for name in tiny_quantized.parameter_names:
            scale = tiny_quantized.scale_of(name)
            expected = tiny_quantized.quantized(name) * scale
            np.testing.assert_allclose(params[name].data, expected, rtol=1e-5)

    def test_flat_roundtrip(self, tiny_quantized):
        flat = tiny_quantized.flat_int8()
        tiny_quantized.load_flat_int8(flat)
        np.testing.assert_array_equal(tiny_quantized.flat_int8(), flat)

    def test_load_flat_wrong_size(self, tiny_quantized):
        with pytest.raises(QuantizationError):
            tiny_quantized.load_flat_int8(np.zeros(3, dtype=np.int8))

    def test_requantize_uses_original_scales(self, tiny_quantized):
        name = tiny_quantized.parameter_names[0]
        params = dict(tiny_quantized.module.named_parameters())
        scale = tiny_quantized.scale_of(name)
        params[name].data = params[name].data + 2 * scale
        tiny_quantized.requantize_from_module([name])
        assert tiny_quantized.scale_of(name) == scale  # unchanged

    def test_requantize_clips_to_range(self, tiny_quantized):
        name = tiny_quantized.parameter_names[0]
        params = dict(tiny_quantized.module.named_parameters())
        params[name].data = np.full_like(params[name].data, 1e6)
        tiny_quantized.requantize_from_module([name])
        assert tiny_quantized.quantized(name).max() <= 127


class TestBitFlips:
    def test_apply_bit_flip_changes_one_bit(self, tiny_quantized):
        before = tiny_quantized.flat_int8()
        tiny_quantized.apply_bit_flip(10, 6)
        after = tiny_quantized.flat_int8()
        assert hamming_distance(before, after) == 1
        assert before[10] != after[10]

    def test_bit_flip_syncs_module(self, tiny_quantized):
        name, local = tiny_quantized.locate(10)
        params = dict(tiny_quantized.module.named_parameters())
        before = params[name].data.reshape(-1)[local]
        tiny_quantized.apply_bit_flip(10, 6)
        after = params[name].data.reshape(-1)[local]
        assert before != after

    def test_nflip_against_clone(self, tiny_quantized):
        clone = tiny_quantized.clone()
        tiny_quantized.apply_bit_flip(3, 2)
        tiny_quantized.apply_bit_flip(5000 % tiny_quantized.total_params, 1)
        assert tiny_quantized.nflip_against(clone) == 2

    def test_set_quantized_shape_checked(self, tiny_quantized):
        name = tiny_quantized.parameter_names[0]
        with pytest.raises(QuantizationError):
            tiny_quantized.set_quantized(name, np.zeros(3, dtype=np.int8))

    def test_clone_is_independent(self, tiny_quantized):
        clone = tiny_quantized.clone()
        tiny_quantized.apply_bit_flip(0, 0)
        assert clone.nflip_against(tiny_quantized) == 1
