"""Shared fixtures: tiny models, datasets and memory systems."""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticImageClassification, SyntheticSpec
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import OSMemoryModel
from repro.nn import Conv2d, GlobalAvgPool2d, Linear, Module
from repro.quant.qmodel import QuantizedModel
from repro.telemetry.testing import telemetry_guard

# Keep telemetry disabled and empty around every test (shared with the
# benchmarks suite via repro.telemetry.testing).
_telemetry_guard = pytest.fixture(autouse=True)(telemetry_guard)


class TinyCNN(Module):
    """A small conv net for fast attack/defense tests.

    Sized to span several 4 KB weight-file pages (~12k parameters) so the
    page-level attack constraints are exercised, while staying fast.
    """

    def __init__(self, num_classes: int = 4, rng=0) -> None:
        super().__init__()
        self.conv1 = Conv2d(3, 8, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(8, 16, 3, stride=2, padding=1, rng=rng)
        self.conv3 = Conv2d(16, 24, 3, padding=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.hidden = Linear(24, 256, rng=rng)
        self.fc = Linear(256, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward_features(self, x):
        out = self.conv1(x).relu()
        out = self.conv2(out).relu()
        return self.conv3(out).relu()

    def forward_head(self, features):
        return self.fc(self.hidden(self.pool(features)).relu())

    def forward_penultimate(self, x):
        return self.hidden(self.pool(self.forward_features(x))).relu()

    def forward(self, x):
        return self.forward_head(self.forward_features(x))

    def forward_stages(self):
        """Stage decomposition for the evaluation engine (mirrors ``forward``)."""
        return [
            ("conv1", lambda x: self.conv1(x).relu(), (self.conv1,)),
            ("conv2", lambda x: self.conv2(x).relu(), (self.conv2,)),
            ("conv3", lambda x: self.conv3(x).relu(), (self.conv3,)),
            ("pool", self.pool, (self.pool,)),
            ("hidden", lambda x: self.hidden(x).relu(), (self.hidden,)),
            ("fc", self.fc, (self.fc,)),
        ]


@pytest.fixture
def tiny_model():
    return TinyCNN(rng=0)


@pytest.fixture
def tiny_quantized(tiny_model):
    return QuantizedModel(tiny_model)


def _tiny_task() -> SyntheticImageClassification:
    """The single synthetic task both dataset fixtures draw from."""
    spec = SyntheticSpec(num_classes=4, image_size=16, prototypes_per_class=2)
    return SyntheticImageClassification(spec, seed=0)


@pytest.fixture
def tiny_dataset():
    return _tiny_task().generate(64, "train")


@pytest.fixture
def tiny_test_dataset():
    return _tiny_task().generate(48, "test")


@pytest.fixture
def small_geometry():
    return DRAMGeometry(num_banks=4, rows_per_bank=64, row_size_bytes=8192)


@pytest.fixture
def small_dram(small_geometry):
    return DRAMArray(small_geometry, flips_per_page_mean=20.0, seed=7)


@pytest.fixture
def os_model(small_dram):
    return OSMemoryModel(small_dram, rng=11)
