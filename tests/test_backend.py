"""Compute backend registry and the opt-in ``fast`` profile.

The default ``numpy`` backend IS the historical code path -- its GEMM
expression is character-for-character what ``Conv2dFunction.forward``
inlined before the abstraction existed, so byte-identity tests pin it.
The ``fast`` profile trades that byte-level determinism for a fused
contiguous float32 GEMM, so it is covered by *tolerance* parity only and
explicitly excluded from the golden suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import (
    available_backends,
    backend_name,
    current_backend,
    reset_backend,
    set_backend,
)
from repro.errors import BackendError, ReproError
from tests.conftest import TinyCNN


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    yield
    reset_backend()


def _logits(model, x):
    with no_grad():
        return model(Tensor(x)).data


def _images(seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((4, 3, 16, 16)).astype(np.float32)


# ---------------------------------------------------------------------------
# Registry


def test_registry_lists_all_backends():
    assert set(available_backends()) == {"numpy", "fast", "threads"}


def test_default_backend_is_numpy_and_byte_identical(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    reset_backend()
    backend = current_backend()
    assert backend.name == "numpy"
    assert backend.byte_identical is True
    assert backend_name() == "numpy"


def test_set_backend_switches_and_describes():
    set_backend("fast")
    assert backend_name() == "fast"
    assert current_backend().byte_identical is False
    assert current_backend().describe() == {
        "name": "fast",
        "spec": "fast",
        "byte_identical": False,
    }


def test_unknown_backend_raises_backend_error():
    with pytest.raises(BackendError, match="unknown backend"):
        set_backend("cuda")
    assert issubclass(BackendError, ReproError)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "fast")
    reset_backend()
    assert backend_name() == "fast"
    monkeypatch.delenv("REPRO_BACKEND")
    reset_backend()
    assert backend_name() == "numpy"


def test_env_var_unknown_backend_raises(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "tpu")
    reset_backend()
    with pytest.raises(BackendError):
        current_backend()


# ---------------------------------------------------------------------------
# Numpy backend: the historical bytes


def test_numpy_backend_matmul_matches_historical_expression():
    rng = np.random.default_rng(0)
    cols = rng.standard_normal((3, 25, 72)).astype(np.float32)
    w_mat = rng.standard_normal((16, 72)).astype(np.float32)
    set_backend("numpy")
    out = current_backend().conv_cols_matmul(cols, w_mat)
    assert out.tobytes() == (cols @ w_mat.T).tobytes()


def test_conv_forward_unchanged_under_default_backend():
    # The backend indirection itself must not perturb conv bytes: a model
    # forward with the backend explicitly set to numpy equals one with the
    # process default untouched.
    model = TinyCNN(rng=0)
    model.eval()
    x = _images()
    reset_backend()
    baseline = _logits(model, x)
    set_backend("numpy")
    assert _logits(model, x).tobytes() == baseline.tobytes()


# ---------------------------------------------------------------------------
# Fast backend: tolerance parity only (separately marked, never golden)


@pytest.mark.fast_backend
def test_fast_backend_tolerance_parity_on_model_forward():
    model = TinyCNN(rng=0)
    model.eval()
    x = _images()
    set_backend("numpy")
    reference = _logits(model, x)
    set_backend("fast")
    fast = _logits(model, x)
    assert fast.shape == reference.shape and fast.dtype == np.float32
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@pytest.mark.fast_backend
def test_fast_backend_tolerance_parity_on_batched_scoring():
    from repro.engine import EvalEngine
    from repro.quant.bits import flip_bit
    from repro.quant.qmodel import QuantizedModel

    model = TinyCNN(rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    x = _images()
    proposals = []
    for offset in (0, qmodel.total_params // 2, qmodel.total_params - 1):
        name, local = qmodel.locate(offset)
        current = qmodel.quantized(name).reshape(-1)[local]
        proposals.append(
            (offset, int(flip_bit(np.array([current], dtype=np.int8), 6)[0]))
        )

    set_backend("numpy")
    reference = EvalEngine(model).score_candidates(qmodel, proposals, x)
    set_backend("fast")
    fast = EvalEngine(model).score_candidates(qmodel, proposals, x)
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@pytest.mark.fast_backend
def test_fast_backend_output_is_contiguous_float32():
    rng = np.random.default_rng(1)
    cols = rng.standard_normal((2, 9, 27)).astype(np.float32)
    w_mat = rng.standard_normal((8, 27)).astype(np.float32)
    set_backend("fast")
    out = current_backend().conv_cols_matmul(cols, w_mat)
    assert out.shape == (2, 9, 8)
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, cols @ w_mat.T, rtol=1e-5, atol=1e-6)


@pytest.mark.fast_backend
def test_fast_backend_cft_training_step_tolerance_parity():
    """A full CFT fine-tune run (forward + backward) under ``fast``.

    The training path now routes its dense forward, all backward GEMMs,
    the col2im scatter and batch-norm through the backend; the loss
    trajectory under ``fast`` must track the reference within tolerance.
    """
    from repro.attacks import AttackConfig, CFTAttack
    from repro.data.dataset import ArrayDataset
    from repro.nn import BatchNorm2d, Conv2d, GlobalAvgPool2d, Module
    from repro.nn import Linear as NNLinear
    from repro.quant.qmodel import QuantizedModel

    class BNNet(Module):
        def __init__(self, rng=0):
            super().__init__()
            self.conv = Conv2d(3, 4, 3, padding=1, rng=rng)
            self.bn = BatchNorm2d(4)
            self.pool = GlobalAvgPool2d()
            self.fc = NNLinear(4, 4, rng=rng)

        def forward(self, x):
            return self.fc(self.pool(self.bn(self.conv(x)).relu()))

    rng = np.random.default_rng(7)
    data = ArrayDataset(
        rng.random((16, 3, 8, 8), dtype=np.float32),
        rng.integers(0, 4, size=16),
    )
    config = AttackConfig(
        target_class=1, iterations=3, n_flip_budget=1, batch_size=8,
        trigger_size=3, seed=0,
    )

    set_backend("numpy")
    reference = CFTAttack(config, strategy="sgd").run(QuantizedModel(BNNet(rng=0)), data)
    set_backend("fast")
    fast = CFTAttack(config, strategy="sgd").run(QuantizedModel(BNNet(rng=0)), data)

    assert len(fast.loss_history) == len(reference.loss_history)
    np.testing.assert_allclose(
        fast.loss_history, reference.loss_history, rtol=1e-3, atol=1e-4
    )


# ---------------------------------------------------------------------------
# Threads backend: byte-identical at any thread count


def test_threads_spec_parses_worker_count():
    backend = set_backend("threads:3")
    assert backend.name == "threads"
    assert backend.workers == 3
    assert backend.spec == "threads:3"
    info = backend.describe()
    assert info["threads"] == 3
    assert info["byte_identical"] is True
    assert info["panel_samples"] >= 1


def test_threads_bare_spec_uses_cpu_count():
    import os

    backend = set_backend("threads")
    assert backend.workers == (os.cpu_count() or 1)
    assert backend.spec == "threads"


@pytest.mark.parametrize("spec", ["threads:x", "threads:", "threads:1:2"])
def test_threads_invalid_spec_raises(spec):
    with pytest.raises(BackendError):
        set_backend(spec)


def test_unparameterized_backend_rejects_param_suffix():
    with pytest.raises(BackendError, match="no ':<param>' suffix"):
        set_backend("numpy:2")


def test_set_backend_closes_previous_backend():
    backend = set_backend("threads:2")
    backend._ensure_pool()
    assert backend._pool is not None
    set_backend("numpy")
    assert backend._pool is None


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize(
    ("model_name", "width"), [("tinycnn", 1.0), ("resnet20", 1.0), ("vgg11", 0.25)]
)
def test_threads_forward_backward_byte_identical(model_name, width, workers):
    """threads:N reproduces the reference bytes, forward and backward.

    Batch 9 forces multiple panels (panel width 8), so the parallel path
    is actually exercised rather than the single-panel fallback.
    """
    from repro.models import build_model

    rng = np.random.default_rng(3)
    x = rng.standard_normal((9, 3, 32, 32)).astype(np.float32)

    def run():
        model = build_model(model_name, num_classes=4, width=width, rng=0)
        model.eval()
        out = model(Tensor(x, requires_grad=True))
        loss = (out * out).sum()
        loss.backward()
        grads = {
            name: p.grad.tobytes()
            for name, p in model.named_parameters()
            if p.grad is not None
        }
        return out.data.tobytes(), grads

    set_backend("numpy")
    ref_out, ref_grads = run()
    set_backend(f"threads:{workers}")
    thr_out, thr_grads = run()
    assert thr_out == ref_out
    assert set(thr_grads) == set(ref_grads)
    for name in ref_grads:
        assert thr_grads[name] == ref_grads[name], name


def test_threads_batched_scoring_matches_numpy_bytes():
    from repro.engine import EvalEngine
    from repro.quant.bits import flip_bit
    from repro.quant.qmodel import QuantizedModel

    model = TinyCNN(rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    rng = np.random.default_rng(5)
    x = rng.standard_normal((9, 3, 16, 16)).astype(np.float32)
    proposals = []
    for offset in (0, qmodel.total_params // 2, qmodel.total_params - 1):
        name, local = qmodel.locate(offset)
        current = qmodel.quantized(name).reshape(-1)[local]
        proposals.append(
            (offset, int(flip_bit(np.array([current], dtype=np.int8), 6)[0]))
        )

    set_backend("numpy")
    reference = EvalEngine(model).score_candidates(qmodel, proposals, x)
    set_backend("threads:2")
    threaded = EvalEngine(model).score_candidates(qmodel, proposals, x)
    assert threaded.tobytes() == reference.tobytes()


def test_threads_golden_pipeline_row_unchanged(tiny_dataset, tiny_test_dataset):
    """The full seeded pipeline under threads equals the golden snapshot."""
    import json

    from tests.test_golden_pipeline import GOLDEN_PATH, _run_seeded_pipeline

    set_backend("threads:2")
    row = _run_seeded_pipeline(tiny_dataset, tiny_test_dataset)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert row == golden


def test_threads_counts_gemm_calls_and_panels():
    set_backend("threads:2")
    backend = current_backend()
    rng = np.random.default_rng(2)
    cols = rng.standard_normal((17, 10, 12)).astype(np.float32)
    w_mat = rng.standard_normal((6, 12)).astype(np.float32)
    backend.conv_cols_matmul(cols, w_mat)
    assert backend.gemm_calls == 1
    assert backend.gemm_panels == 3  # ceil(17 / 8)
    assert backend.gemm_ns > 0


# ---------------------------------------------------------------------------
# CLI surface


@pytest.mark.parametrize("spec", ["bogus", "threads:x", "threads:", "numpy:4"])
def test_cli_rejects_invalid_backend_spec(spec, capsys):
    from repro.cli import main

    assert main(["--backend", spec, "devices"]) == 2
    assert "--backend:" in capsys.readouterr().err


def test_cli_backend_flag_mirrors_env_for_spawn_workers(monkeypatch, capsys):
    import os

    from repro.cli import main

    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert main(["--backend", "threads:2", "devices"]) == 0
    capsys.readouterr()
    assert os.environ["REPRO_BACKEND"] == "threads:2"
    assert backend_name() == "threads"
