"""Compute backend registry and the opt-in ``fast`` profile.

The default ``numpy`` backend IS the historical code path -- its GEMM
expression is character-for-character what ``Conv2dFunction.forward``
inlined before the abstraction existed, so byte-identity tests pin it.
The ``fast`` profile trades that byte-level determinism for a fused
contiguous float32 GEMM, so it is covered by *tolerance* parity only and
explicitly excluded from the golden suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, no_grad
from repro.backend import (
    available_backends,
    backend_name,
    current_backend,
    reset_backend,
    set_backend,
)
from repro.errors import BackendError, ReproError
from tests.conftest import TinyCNN


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process-wide backend as it found it."""
    yield
    reset_backend()


def _logits(model, x):
    with no_grad():
        return model(Tensor(x)).data


def _images(seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((4, 3, 16, 16)).astype(np.float32)


# ---------------------------------------------------------------------------
# Registry


def test_registry_lists_both_backends():
    assert set(available_backends()) == {"numpy", "fast"}


def test_default_backend_is_numpy_and_byte_identical():
    reset_backend()
    backend = current_backend()
    assert backend.name == "numpy"
    assert backend.byte_identical is True
    assert backend_name() == "numpy"


def test_set_backend_switches_and_describes():
    set_backend("fast")
    assert backend_name() == "fast"
    assert current_backend().byte_identical is False
    assert current_backend().describe() == {"name": "fast", "byte_identical": False}


def test_unknown_backend_raises_backend_error():
    with pytest.raises(BackendError, match="unknown backend"):
        set_backend("cuda")
    assert issubclass(BackendError, ReproError)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "fast")
    reset_backend()
    assert backend_name() == "fast"
    monkeypatch.delenv("REPRO_BACKEND")
    reset_backend()
    assert backend_name() == "numpy"


def test_env_var_unknown_backend_raises(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "tpu")
    reset_backend()
    with pytest.raises(BackendError):
        current_backend()


# ---------------------------------------------------------------------------
# Numpy backend: the historical bytes


def test_numpy_backend_matmul_matches_historical_expression():
    rng = np.random.default_rng(0)
    cols = rng.standard_normal((3, 25, 72)).astype(np.float32)
    w_mat = rng.standard_normal((16, 72)).astype(np.float32)
    set_backend("numpy")
    out = current_backend().conv_cols_matmul(cols, w_mat)
    assert out.tobytes() == (cols @ w_mat.T).tobytes()


def test_conv_forward_unchanged_under_default_backend():
    # The backend indirection itself must not perturb conv bytes: a model
    # forward with the backend explicitly set to numpy equals one with the
    # process default untouched.
    model = TinyCNN(rng=0)
    model.eval()
    x = _images()
    reset_backend()
    baseline = _logits(model, x)
    set_backend("numpy")
    assert _logits(model, x).tobytes() == baseline.tobytes()


# ---------------------------------------------------------------------------
# Fast backend: tolerance parity only (separately marked, never golden)


@pytest.mark.fast_backend
def test_fast_backend_tolerance_parity_on_model_forward():
    model = TinyCNN(rng=0)
    model.eval()
    x = _images()
    set_backend("numpy")
    reference = _logits(model, x)
    set_backend("fast")
    fast = _logits(model, x)
    assert fast.shape == reference.shape and fast.dtype == np.float32
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@pytest.mark.fast_backend
def test_fast_backend_tolerance_parity_on_batched_scoring():
    from repro.engine import EvalEngine
    from repro.quant.bits import flip_bit
    from repro.quant.qmodel import QuantizedModel

    model = TinyCNN(rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    x = _images()
    proposals = []
    for offset in (0, qmodel.total_params // 2, qmodel.total_params - 1):
        name, local = qmodel.locate(offset)
        current = qmodel.quantized(name).reshape(-1)[local]
        proposals.append(
            (offset, int(flip_bit(np.array([current], dtype=np.int8), 6)[0]))
        )

    set_backend("numpy")
    reference = EvalEngine(model).score_candidates(qmodel, proposals, x)
    set_backend("fast")
    fast = EvalEngine(model).score_candidates(qmodel, proposals, x)
    np.testing.assert_allclose(fast, reference, rtol=1e-4, atol=1e-5)


@pytest.mark.fast_backend
def test_fast_backend_output_is_contiguous_float32():
    rng = np.random.default_rng(1)
    cols = rng.standard_normal((2, 9, 27)).astype(np.float32)
    w_mat = rng.standard_normal((8, 27)).astype(np.float32)
    set_backend("fast")
    out = current_backend().conv_cols_matmul(cols, w_mat)
    assert out.shape == (2, 9, 8)
    assert out.dtype == np.float32
    np.testing.assert_allclose(out, cols @ w_mat.T, rtol=1e-5, atol=1e-6)
