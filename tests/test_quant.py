"""Quantization, bit manipulation and the weight-file layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import QuantizationError
from repro.quant import (
    PAGE_SIZE_BYTES,
    WeightFile,
    bit_reduce,
    dequantize,
    flip_bit,
    hamming_distance,
    int8_to_uint8,
    msb_only,
    quantize,
    uint8_to_int8,
)
from repro.quant.bits import bit_reduce_avoiding, changed_bit_positions

int8_arrays = hnp.arrays(np.int8, st.integers(1, 64), elements=st.integers(-128, 127))


class TestQuantizer:
    def test_roundtrip_error_bounded_by_half_step(self):
        w = np.random.default_rng(0).normal(size=100).astype(np.float32)
        q, params = quantize(w)
        restored = dequantize(q, params)
        assert np.abs(restored - w).max() <= params.scale / 2 + 1e-6

    def test_scale_formula(self):
        w = np.array([0.0, -1.27, 0.5])
        q, params = quantize(w)
        assert params.scale == pytest.approx(1.27 / 127)
        assert q.tolist() == [0, -127, 50]

    def test_all_zero_tensor(self):
        q, params = quantize(np.zeros(10))
        assert (q == 0).all()
        np.testing.assert_allclose(dequantize(q, params), 0.0)

    def test_qmin_qmax_symmetric(self):
        _, params = quantize(np.ones(3))
        assert params.qmax == 127
        assert params.qmin == -127

    def test_invalid_bits_raises(self):
        with pytest.raises(QuantizationError):
            quantize(np.ones(3), num_bits=1)


class TestBitOps:
    def test_twos_complement_views(self):
        assert int8_to_uint8(np.array([-1], dtype=np.int8))[0] == 255
        assert uint8_to_int8(np.array([255], dtype=np.uint8))[0] == -1

    def test_flip_bit_msb_changes_sign(self):
        out = flip_bit(np.array([1], dtype=np.int8), 7)
        assert out[0] == 1 - 128

    def test_flip_bit_out_of_range(self):
        with pytest.raises(QuantizationError):
            flip_bit(np.array([0], dtype=np.int8), 8)

    def test_msb_only_examples(self):
        values = np.array([0b0111, 0b0100, 0, 1, -1], dtype=np.int8)
        out = msb_only(values)
        assert out[0] == 0b0100
        assert out[1] == 0b0100
        assert out[2] == 0
        assert out[3] == 1
        assert int8_to_uint8(out[4:5])[0] == 0b10000000

    def test_bit_reduce_paper_example(self):
        # theta = 1101, theta* = 1010 -> Floor(0111) = 0100 -> result 1001.
        result = bit_reduce(np.array([0b1101], dtype=np.int8), np.array([0b1010], dtype=np.int8))
        assert result[0] == 0b1001

    def test_bit_reduce_identity_when_equal(self):
        a = np.array([5, -7, 0], dtype=np.int8)
        np.testing.assert_array_equal(bit_reduce(a, a), a)

    def test_bit_reduce_avoiding_forbidden_bit(self):
        original = np.array([0], dtype=np.int8)
        modified = np.array([-128], dtype=np.int8)  # only bit 7 differs
        out = bit_reduce_avoiding(original, modified, forbidden_bits=(7,))
        assert out[0] == 0  # change entirely reverted

    def test_bit_reduce_avoiding_falls_back_to_next_bit(self):
        original = np.array([0], dtype=np.int8)
        modified = uint8_to_int8(np.array([0b11000000], dtype=np.uint8))
        out = bit_reduce_avoiding(original, modified, forbidden_bits=(7,))
        assert int8_to_uint8(out)[0] == 0b01000000

    def test_hamming_distance(self):
        a = np.array([0b0000, 0b1111], dtype=np.int8)
        b = np.array([0b0001, 0b1111], dtype=np.int8)
        assert hamming_distance(a, b) == 1
        assert hamming_distance(a, a) == 0

    def test_hamming_shape_mismatch(self):
        with pytest.raises(QuantizationError):
            hamming_distance(np.zeros(2, np.int8), np.zeros(3, np.int8))

    def test_changed_bit_positions_directions(self):
        original = np.array([0b0000], dtype=np.int8)
        modified = np.array([0b0101], dtype=np.int8)
        rows = changed_bit_positions(original, modified)
        assert rows.shape == (2, 3)
        assert set(map(tuple, rows)) == {(0, 0, 1), (0, 2, 1)}


@settings(max_examples=50, deadline=None)
@given(a=int8_arrays)
def test_property_bit_reduce_at_most_one_bit(a):
    """Property: bit reduction leaves each byte within 1 bit of the original."""
    rng = np.random.default_rng(0)
    b = rng.integers(-128, 128, size=a.shape).astype(np.int8)
    reduced = bit_reduce(a, b)
    assert (np.unpackbits((int8_to_uint8(a) ^ int8_to_uint8(reduced)))
            .reshape(a.size, 8).sum(axis=1) <= 1).all()


@settings(max_examples=50, deadline=None)
@given(a=int8_arrays)
def test_property_bit_reduce_preserves_direction(a):
    """Property: the reduced value moves in the same direction as the target."""
    rng = np.random.default_rng(1)
    b = rng.integers(-128, 128, size=a.shape).astype(np.int8)
    reduced = bit_reduce(a, b).astype(np.int16)
    a16, b16 = a.astype(np.int16), b.astype(np.int16)
    changed = reduced != a16
    # Where a change survives, its sign matches the intended change's sign.
    assert (np.sign(reduced[changed] - a16[changed]) == np.sign(b16[changed] - a16[changed])).all()


@settings(max_examples=50, deadline=None)
@given(a=int8_arrays)
def test_property_quantize_roundtrip_monotone(a):
    """Property: dequantized values preserve the ordering of the integers."""
    q, params = quantize(a.astype(np.float64))
    restored = dequantize(q, params)
    order = np.argsort(a.astype(np.float64), kind="stable")
    assert (np.diff(restored[order]) >= -1e-6).all()


class TestWeightFile:
    def test_geometry(self):
        wf = WeightFile(np.zeros(PAGE_SIZE_BYTES * 2 + 10, dtype=np.int8))
        assert wf.num_pages == 3
        assert wf.page_of(PAGE_SIZE_BYTES) == 1
        assert wf.page_offset_of(PAGE_SIZE_BYTES + 5) == 5

    def test_bytes_roundtrip(self):
        data = np.random.default_rng(0).integers(-128, 128, size=100).astype(np.int8)
        wf = WeightFile(data)
        clone = WeightFile.from_bytes(wf.to_bytes())
        np.testing.assert_array_equal(clone.as_int8(), data)

    def test_page_slice_short_final_page(self):
        wf = WeightFile(np.arange(10, dtype=np.int8))
        assert wf.page_slice(0).size == 10

    def test_out_of_range_raises(self):
        wf = WeightFile(np.zeros(10, dtype=np.int8))
        with pytest.raises(QuantizationError):
            wf.read(10)
        with pytest.raises(QuantizationError):
            wf.page_slice(1)

    def test_bit_locations_against(self):
        a = WeightFile(np.zeros(PAGE_SIZE_BYTES + 4, dtype=np.int8))
        b = WeightFile(np.zeros(PAGE_SIZE_BYTES + 4, dtype=np.int8))
        b.write(3, 1)  # bit 0 set: 0 -> 1
        b.write(PAGE_SIZE_BYTES + 1, -128)  # bit 7 set in page 1
        locations = a.bit_locations_against(b)
        assert len(locations) == 2
        first, second = sorted(locations, key=lambda l: l.page)
        assert (first.page, first.byte_offset, first.bit_index, first.direction) == (0, 3, 0, 1)
        assert (second.page, second.byte_offset, second.bit_index) == (1, 1, 7)

    def test_diff_size_mismatch_raises(self):
        with pytest.raises(QuantizationError):
            WeightFile(np.zeros(4, dtype=np.int8)).bit_locations_against(
                WeightFile(np.zeros(5, dtype=np.int8))
            )
