"""Evaluation engine: parity, invalidation, eviction and determinism.

The engine's one non-negotiable contract is byte-identity: every logits
array it serves must equal the plain ``module(Tensor(x))`` forward bit for
bit, whatever mix of cache hits, flips, rebinds and evictions preceded it.
Every test here ultimately checks ``tobytes()`` equality, not ``allclose``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.autodiff.tensor import Tensor, no_grad
from repro.engine import (
    ActivationCache,
    EvalEngine,
    batch_enabled,
    compile_plan,
    default_byte_budget,
    disable_batch,
    disable_engine,
    enable_batch,
    enable_engine,
    engine_enabled,
)
from repro.engine.engine import _fingerprint, _FingerprintMemo
from repro.errors import QuantizationError
from repro.models import build_model
from repro.nn import Linear, Module, Sequential
from repro.quant.qmodel import QuantizedModel
from tests.conftest import TinyCNN


@pytest.fixture(autouse=True)
def _restore_engine_flag():
    """Leave the process-global enabled flags exactly as we found them."""
    was = engine_enabled()
    was_batch = batch_enabled()
    yield
    (enable_engine if was else disable_engine)()
    (enable_batch if was_batch else disable_batch)()


def _images(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def _plain(module, x):
    with no_grad():
        return module(Tensor(x)).data


# ---------------------------------------------------------------------------
# Parity across the model zoo


@pytest.mark.parametrize(
    "name,size",
    [("tinycnn", 16), ("resnet20", 16), ("vgg11", 32)],
)
def test_zoo_parity_and_full_prefix_hit(name, size):
    model = build_model(name, num_classes=4, rng=0)
    model.eval()
    engine = EvalEngine(model)
    assert len(engine.plan) > 1, "zoo models must stage finer than whole-model"
    x = _images((2, 3, size, size))
    assert engine(x).tobytes() == _plain(model, x).tobytes()
    # The repeat call reuses the deepest prefix: the final logits entry.
    again = engine(x)
    assert again.tobytes() == _plain(model, x).tobytes()
    assert engine.cache.stats.hits == 1 and engine.cache.stats.misses == 1


def test_conftest_model_parity(tiny_model):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((3, 3, 16, 16))
    assert engine(x).tobytes() == _plain(tiny_model, x).tobytes()
    assert engine(Tensor(x)).tobytes() == _plain(tiny_model, x).tobytes()


def test_sequential_fallback_splits_per_child():
    model = Sequential(Linear(6, 5, rng=0), Linear(5, 3, rng=1))
    model.eval()
    plan = compile_plan(model)
    assert len(plan) == 2
    engine = EvalEngine(model)
    x = _images((4, 6))
    assert engine(x).tobytes() == _plain(model, x).tobytes()


def test_whole_model_fallback_is_single_stage():
    class Opaque(Module):
        def __init__(self):
            super().__init__()
            self.fc = Linear(6, 3, rng=0)

        def forward(self, x):
            return self.fc(x).relu() + 1.0

    model = Opaque()
    model.eval()
    plan = compile_plan(model)
    assert len(plan) == 1 and plan.stages[0].name == "forward"
    engine = EvalEngine(model)
    x = _images((2, 6))
    assert engine(x).tobytes() == _plain(model, x).tobytes()


# ---------------------------------------------------------------------------
# Invalidation: flips, rebinds, buffers


def test_flip_reuses_prefix_and_revert_restores_bytes(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    base = engine(x)
    assert base.tobytes() == _plain(tiny_model, x).tobytes()

    flat = tiny_quantized.offset_of("fc.weight") + 3
    tiny_quantized.apply_bit_flip(flat, 5)
    flipped = engine(x)
    assert flipped.tobytes() == _plain(tiny_model, x).tobytes()
    assert flipped.tobytes() != base.tobytes()
    # Only fc changed, so the probe found the cached pre-fc prefix: a hit.
    assert engine.cache.stats.hits == 1 and engine.cache.stats.misses == 1

    tiny_quantized.apply_bit_flip(flat, 5)  # revert the same bit
    restored = engine(x)
    assert restored.tobytes() == base.tobytes()
    assert engine.cache.stats.hits == 2


def test_conv_flip_invalidates_the_whole_prefix(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    engine(x)
    tiny_quantized.apply_bit_flip(tiny_quantized.offset_of("conv1.weight"), 4)
    out = engine(x)
    assert out.tobytes() == _plain(tiny_model, x).tobytes()
    # Nothing upstream of conv1 exists, so the second forward is a full miss.
    assert engine.cache.stats.misses == 2 and engine.cache.stats.hits == 0


def test_parameter_rebind_invalidates_dependent_stages(tiny_model):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    engine(x)
    tiny_model.fc.weight.data = tiny_model.fc.weight.data * 1.25
    out = engine(x)
    assert out.tobytes() == _plain(tiny_model, x).tobytes()
    assert engine.cache.stats.hits == 1  # pre-fc prefix survived the rebind


def test_buffer_write_invalidates_batchnorm_stages():
    model = build_model("resnet20", num_classes=4, rng=0)
    model.eval()
    engine = EvalEngine(model)
    x = _images((2, 3, 16, 16))
    before = engine(x)
    model.bn1._set_buffer("running_mean", model.bn1.running_mean + 0.5)
    after = engine(x)
    assert after.tobytes() == _plain(model, x).tobytes()
    assert after.tobytes() != before.tobytes()


@settings(max_examples=12, deadline=None)
@given(
    flips=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**9), st.integers(0, 7)),
        max_size=6,
    )
)
def test_randomized_flip_sequences_stay_byte_identical(flips):
    model = TinyCNN(rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    engine = EvalEngine(model)
    x = _images((2, 3, 16, 16))
    assert engine(x).tobytes() == _plain(model, x).tobytes()
    for raw_index, bit in flips:
        qmodel.apply_bit_flip(raw_index % qmodel.total_params, bit)
        assert engine(x).tobytes() == _plain(model, x).tobytes()


# ---------------------------------------------------------------------------
# Cache mechanics


def test_cache_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        ActivationCache(0)


def test_cache_lru_eviction_order_and_stats():
    cache = ActivationCache(200)
    a, b, c = (np.full(25, v, dtype=np.float32) for v in (1, 2, 3))  # 100 B each
    cache.put("a", a)
    cache.put("b", b)
    assert cache.get("a") is not None  # refresh: "b" becomes the LRU victim
    cache.put("c", c)
    assert cache.keys() == ("a", "c")
    assert cache.get("b") is None
    assert cache.stats.evictions == 1 and cache.stats.evicted_bytes == 100
    assert cache.nbytes == 200


def test_cache_skips_arrays_larger_than_budget_and_serves_read_only():
    cache = ActivationCache(64)
    cache.put("big", np.zeros(1024, dtype=np.float32))
    assert len(cache) == 0
    small = np.zeros(4, dtype=np.float32)
    cache.put("small", small)
    served = cache.get("small")
    assert served.flags.writeable is False
    with pytest.raises(ValueError):
        served[0] = 1.0


def test_engine_stays_byte_identical_under_eviction_pressure(tiny_model):
    tiny_model.eval()
    # Budget fits roughly two-thirds of one forward's activations, so every
    # pass evicts -- correctness must not depend on what survives.
    engine = EvalEngine(tiny_model, byte_budget=50_000)
    batches = [_images((4, 3, 16, 16), seed=s) for s in range(3)]
    for _ in range(2):
        for x in batches:
            assert engine(x).tobytes() == _plain(tiny_model, x).tobytes()
    assert engine.cache.stats.evictions > 0
    assert engine.cache.nbytes <= 50_000


def test_training_mode_bypasses_the_cache(tiny_model):
    tiny_model.train()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    assert engine(x).tobytes() == _plain(tiny_model, x).tobytes()
    assert len(engine.cache) == 0
    assert engine.cache.stats.hits == 0 and engine.cache.stats.misses == 0


# ---------------------------------------------------------------------------
# Fingerprints


def test_fingerprint_covers_dtype_and_shape():
    flat = np.zeros(16, dtype=np.float32)
    assert _fingerprint(flat.reshape(2, 8)) != _fingerprint(flat.reshape(4, 4))
    assert _fingerprint(flat) != _fingerprint(flat.astype(np.float64))
    strided = np.zeros((4, 8), dtype=np.float32)[:, ::2]
    assert _fingerprint(strided) == _fingerprint(np.ascontiguousarray(strided))


def test_fingerprint_memo_is_identity_keyed_and_bounded():
    memo = _FingerprintMemo(capacity=2)
    x = np.arange(12, dtype=np.float32)
    digest = memo.fingerprint(x)
    assert digest == _fingerprint(x)
    assert memo.fingerprint(x) is digest  # served from the memo, not rehashed
    y, z = x.copy(), x + 1.0
    assert memo.fingerprint(y) == digest  # same content, fresh object
    memo.fingerprint(z)
    assert len(memo._entries) == 2  # x rotated out at capacity


# ---------------------------------------------------------------------------
# locate() binary search (satellite)


def test_locate_binary_search_boundaries(tiny_model, tiny_quantized):
    for name, param in tiny_model.named_parameters():
        start = tiny_quantized.offset_of(name)
        assert tiny_quantized.locate(start) == (name, 0)
        assert tiny_quantized.locate(start + param.size - 1) == (name, param.size - 1)
    with pytest.raises(QuantizationError):
        tiny_quantized.locate(-1)
    with pytest.raises(QuantizationError):
        tiny_quantized.locate(tiny_quantized.total_params)


# ---------------------------------------------------------------------------
# Gating, budget, telemetry


def test_engine_flag_toggles():
    enable_engine()
    assert engine_enabled()
    disable_engine()
    assert not engine_enabled()


def test_default_byte_budget_reads_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_CACHE_MB", "2.5")
    assert default_byte_budget() == int(2.5 * 1024 * 1024)
    monkeypatch.delenv("REPRO_ENGINE_CACHE_MB")
    assert default_byte_budget() == 64 * 1024 * 1024


def test_engine_exports_telemetry_counters(tiny_model):
    tiny_model.eval()
    x = _images((2, 3, 16, 16))
    with telemetry.isolated(enable=True) as (registry, _tracer):
        engine = EvalEngine(tiny_model)
        engine(x)
        engine(x)
        counters = registry.snapshot()["counters"]
    assert counters["engine.cache.miss"] == 1
    assert counters["engine.cache.hit"] == 1
    # The zero add still registers the counter: bench artifacts always
    # export the full engine.cache.* triple.
    assert counters["engine.cache.evicted_bytes"] == 0
    assert engine.counters() == {
        "engine.cache.hit": 1,
        "engine.cache.miss": 1,
        "engine.cache.evicted_bytes": 0,
        "engine.batch.spec_hit": 0,
        "engine.batch.spec_discard": 0,
    }


# ---------------------------------------------------------------------------
# Batched candidate scoring: one stacked suffix forward per round


def _flip_proposals(qmodel, offsets, bit=6):
    """(flat index, new byte value) pairs against the current file state."""
    from repro.quant.bits import flip_bit

    proposals = []
    for offset in offsets:
        index = int(offset) % qmodel.total_params
        name, local = qmodel.locate(index)
        current = qmodel.quantized(name).reshape(-1)[local]
        proposals.append(
            (index, int(flip_bit(np.array([current], dtype=np.int8), bit)[0]))
        )
    return proposals


def _sequential_scores(engine, qmodel, proposals, batches):
    """The reference loop: apply -> engine.forward per batch -> revert."""
    per_batch = [[] for _ in batches]
    for index, value in proposals:
        name, local = qmodel.locate(index)
        tensor = qmodel.quantized(name)
        flat = tensor.reshape(-1)
        previous = flat[local]
        flat[local] = np.int8(value)
        qmodel.set_quantized(name, flat.reshape(tensor.shape))
        for bi, x in enumerate(batches):
            per_batch[bi].append(engine.forward(x).copy())
        flat[local] = previous
        qmodel.set_quantized(name, flat.reshape(tensor.shape))
    return [np.stack(outs) for outs in per_batch]


@pytest.mark.parametrize(
    "name,size",
    [("tinycnn", 16), ("resnet20", 16), ("vgg11", 32)],
)
def test_zoo_batched_scoring_byte_identical(name, size):
    model = build_model(name, num_classes=4, rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    engine = EvalEngine(model)
    clean = _images((4, 3, size, size), seed=0)
    stamped = _images((4, 3, size, size), seed=1)
    # Spread candidates across the weight file: early conv, middle, head.
    total = qmodel.total_params
    offsets = [0, total // 5, total // 3, total // 2, (2 * total) // 3, total - 1]
    proposals = _flip_proposals(qmodel, offsets)

    expected = _sequential_scores(engine, qmodel, proposals, [clean, stamped])
    before = qmodel.flat_int8().copy()
    got = engine.score_candidates(qmodel, proposals, (clean, stamped))
    assert [g.tobytes() for g in got] == [e.tobytes() for e in expected]
    assert got[0].shape == (len(proposals), 4, 4)
    # The weight file is returned to its exact entry state.
    assert np.array_equal(qmodel.flat_int8(), before)


@settings(max_examples=10, deadline=None)
@given(
    raw=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**9), st.integers(0, 7)),
        min_size=1,
        max_size=8,
    )
)
def test_randomized_batched_proposals_stay_byte_identical(raw):
    model = TinyCNN(rng=0)
    model.eval()
    qmodel = QuantizedModel(model)
    engine = EvalEngine(model)
    x = _images((3, 3, 16, 16))
    proposals = _flip_proposals(
        qmodel, [index for index, _ in raw], bit=raw[0][1]
    )
    expected = _sequential_scores(engine, qmodel, proposals, [x])
    got = engine.score_candidates(qmodel, proposals, x)
    assert got.tobytes() == expected[0].tobytes()


def test_batched_scoring_empty_proposals(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    out = engine.score_candidates(tiny_quantized, [], x)
    assert out.shape == (0,)
    clean, stamped = engine.score_candidates(tiny_quantized, [], (x, x))
    assert clean.shape == (0,) and stamped.shape == (0,)


def test_batched_scoring_rejects_training_mode(tiny_model, tiny_quantized):
    tiny_model.train()
    engine = EvalEngine(tiny_model)
    proposals = _flip_proposals(tiny_quantized, [0])
    with pytest.raises(ValueError, match="eval mode"):
        engine.score_candidates(tiny_quantized, proposals, _images((2, 3, 16, 16)))


def test_batched_scoring_exports_telemetry_counters(tiny_model, tiny_quantized):
    tiny_model.eval()
    x = _images((2, 3, 16, 16))
    # Two stages touched (conv1 + fc), one of them the head (no suffix).
    offsets = [0, 1, tiny_quantized.offset_of("fc.weight")]
    with telemetry.isolated(enable=True) as (registry, _tracer):
        engine = EvalEngine(tiny_model)
        proposals = _flip_proposals(tiny_quantized, offsets)
        engine.score_candidates(tiny_quantized, proposals, (x, x))
        counters = registry.snapshot()["counters"]
    assert counters["engine.batch.rounds"] == 1
    assert counters["engine.batch.candidates"] == 3
    assert counters["engine.batch.groups"] == 2
    # conv1 group batches a suffix per image batch; the fc group is the head.
    assert counters["engine.batch.suffix_forwards"] == 2


def _commit(qmodel, index, value):
    """Apply one byte change for real (rebinding the module parameter)."""
    name, local = qmodel.locate(int(index))
    tensor = qmodel.quantized(name)
    flat = tensor.reshape(-1)
    previous = flat[local]
    flat[local] = np.int8(value)
    qmodel.set_quantized(name, flat.reshape(tensor.shape))
    return previous


def test_speculation_promotes_winner_byte_identically(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    proposals = _flip_proposals(tiny_quantized, [0, tiny_quantized.total_params // 2])
    engine.score_candidates(tiny_quantized, proposals, x)
    assert engine._speculation is not None

    index, value = proposals[0]
    _commit(tiny_quantized, index, value)
    assert engine.promote_speculation((index, value)) is True
    assert engine.spec_hits == 1 and engine.spec_discards == 0
    assert engine._speculation is None
    # The promoted entry serves the next forward's prefix; bytes must match
    # a fresh engine (no cache, no speculation) on the committed weights.
    promoted = engine.forward(x)
    fresh = EvalEngine(tiny_model).forward(x)
    assert promoted.tobytes() == fresh.tobytes()


def test_speculation_discarded_when_commit_not_scored(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    proposals = _flip_proposals(tiny_quantized, [0])
    engine.score_candidates(tiny_quantized, proposals, x)

    # Commit a byte that was never part of the scored round.
    other = _flip_proposals(tiny_quantized, [tiny_quantized.total_params - 1])[0]
    _commit(tiny_quantized, other[0], other[1])
    assert engine.promote_speculation(other) is False
    assert engine.spec_discards == 1
    assert engine.forward(x).tobytes() == EvalEngine(tiny_model).forward(x).tobytes()


def test_speculation_discarded_when_earlier_stage_changed(tiny_model, tiny_quantized):
    tiny_model.eval()
    engine = EvalEngine(tiny_model)
    x = _images((2, 3, 16, 16))
    # Score a head-layer candidate, then also mutate an early conv weight
    # before committing: the prefix signature moved, so the parked buffers
    # are stale and must be dropped.
    head = _flip_proposals(tiny_quantized, [tiny_quantized.offset_of("fc.weight")])
    engine.score_candidates(tiny_quantized, head, x)
    conv_flip = _flip_proposals(tiny_quantized, [0])[0]
    _commit(tiny_quantized, conv_flip[0], conv_flip[1])
    _commit(tiny_quantized, head[0][0], head[0][1])
    assert engine.promote_speculation(head[0]) is False
    assert engine.spec_discards == 1
    assert engine.forward(x).tobytes() == EvalEngine(tiny_model).forward(x).tobytes()


def test_speculation_counters_exported_via_telemetry(tiny_model, tiny_quantized):
    tiny_model.eval()
    x = _images((2, 3, 16, 16))
    with telemetry.isolated(enable=True) as (registry, _tracer):
        engine = EvalEngine(tiny_model)
        proposals = _flip_proposals(tiny_quantized, [0])
        engine.score_candidates(tiny_quantized, proposals, x)
        _commit(tiny_quantized, proposals[0][0], proposals[0][1])
        engine.promote_speculation(proposals[0])
        engine.promote_speculation(proposals[0])  # nothing parked: discard
        counters = registry.snapshot()["counters"]
    assert counters["engine.batch.spec_hit"] == 1
    assert counters["engine.batch.spec_discard"] == 1
    assert engine.counters()["engine.batch.spec_hit"] == 1
    assert engine.counters()["engine.batch.spec_discard"] == 1


def test_stage_index_of_maps_params_and_rejects_strangers(tiny_model):
    from repro.nn.module import Parameter

    plan = compile_plan(tiny_model)
    names = dict(tiny_model.named_parameters())
    stage_names = [stage.name for stage in plan.stages]
    assert stage_names[plan.stage_index_of(names["conv1.weight"])] == "conv1"
    assert stage_names[plan.stage_index_of(names["hidden.bias"])] == "hidden"
    assert stage_names[plan.stage_index_of(names["fc.weight"])] == "fc"
    with pytest.raises(ValueError, match="not read by any stage"):
        plan.stage_index_of(Parameter(np.zeros(3, dtype=np.float32)))


def test_batch_flag_toggles():
    enable_batch()
    assert batch_enabled()
    disable_batch()
    assert not batch_enabled()


def test_attack_selects_identical_flips_with_batching_on_and_off(tmp_path, monkeypatch):
    from repro.core.experiment import SCALE_PRESETS, run_single_experiment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    scale = SCALE_PRESETS["micro"]
    kwargs = dict(scale=scale, target_class=1, device="K1", seed=0)
    enable_engine()
    disable_batch()
    row_sequential = run_single_experiment("CFT+BR", "tinycnn", **kwargs)
    enable_batch()
    row_batched = run_single_experiment("CFT+BR", "tinycnn", **kwargs)
    assert json.dumps(row_sequential, sort_keys=True) == json.dumps(
        row_batched, sort_keys=True
    )


# ---------------------------------------------------------------------------
# End-to-end determinism: rows must not depend on the engine at all


def test_experiment_rows_identical_with_engine_on_and_off(tmp_path, monkeypatch):
    from repro.core.experiment import SCALE_PRESETS, run_single_experiment

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    scale = SCALE_PRESETS["micro"]
    kwargs = dict(scale=scale, target_class=1, device="K1", seed=0)
    disable_engine()
    row_off = run_single_experiment("CFT+BR", "tinycnn", **kwargs)
    enable_engine()
    row_on = run_single_experiment("CFT+BR", "tinycnn", **kwargs)
    assert json.dumps(row_off, sort_keys=True) == json.dumps(row_on, sort_keys=True)


def test_sweep_rows_identical_across_worker_counts_with_engine(tmp_path, monkeypatch):
    from repro.core.experiment import SCALE_PRESETS, run_method_comparison

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_ENGINE", "1")  # spawn workers re-read these
    monkeypatch.setenv("REPRO_ENGINE_BATCH", "1")
    enable_engine()
    enable_batch()
    scale = SCALE_PRESETS["micro"]
    kwargs = dict(
        dataset="cifar10",
        methods=("CFT", "CFT+BR"),
        scale=scale,
        target_class=1,
        device="K1",
        seed=0,
    )
    inline = run_method_comparison("tinycnn", **kwargs)
    pooled = run_method_comparison("tinycnn", workers=4, **kwargs)
    assert json.dumps(inline, sort_keys=True) == json.dumps(pooled, sort_keys=True)
