"""Cross-module property-based tests of the core invariants.

These check reconstruction-style properties that hold for *any* input:
the bit-location diff is a faithful delta encoding, selection respects the
paper's constraints for any gradient field, and the OS model's mappings are
content-faithful under arbitrary operation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.cft import WEIGHTS_PER_PAGE, group_sort_select
from repro.memory.frame_cache import PageFrameCache
from repro.quant import WeightFile
from repro.quant.bits import (
    bit_reduce,
    bit_reduce_avoiding,
    flip_bit,
    hamming_distance,
    int8_to_uint8,
)


@settings(max_examples=40, deadline=None)
@given(
    data=hnp.arrays(np.int8, st.integers(1, 600), elements=st.integers(-128, 127)),
    seed=st.integers(0, 2**16),
)
def test_property_bit_locations_are_a_faithful_delta(data, seed):
    """Applying the diff's flips to the original reproduces the target."""
    rng = np.random.default_rng(seed)
    modified = data.copy()
    flip_count = int(rng.integers(0, min(16, data.size)))
    for _ in range(flip_count):
        index = int(rng.integers(0, data.size))
        bit = int(rng.integers(0, 8))
        modified[index] = flip_bit(modified[index : index + 1], bit)[0]

    original_file = WeightFile(data)
    modified_file = WeightFile(modified)
    locations = original_file.bit_locations_against(modified_file)

    rebuilt = data.copy()
    for loc in locations:
        index = loc.flat_byte_index
        rebuilt[index] = flip_bit(rebuilt[index : index + 1], loc.bit_index)[0]
        # Direction is consistent with the target's bit value.
        target_bit = bool(np.uint8(modified[index]) & np.uint8(1 << loc.bit_index))
        assert (loc.direction == 1) == target_bit
    np.testing.assert_array_equal(rebuilt, modified)


_INT8_ARRAYS = hnp.arrays(np.int8, st.integers(1, 256), elements=st.integers(-128, 127))


@settings(max_examples=60, deadline=None)
@given(original=_INT8_ARRAYS, seed=st.integers(0, 2**16))
def test_property_bit_reduce_keeps_msb_of_the_change(original, seed):
    """For any (original, modified) pair the reduction differs from the
    original in at most one bit per weight -- exactly one wherever the
    weight changed at all -- and that bit is the most significant changed
    bit, so the Hamming distance never grows."""
    rng = np.random.default_rng(seed)
    modified = rng.integers(-128, 128, size=original.shape).astype(np.int8)
    reduced = bit_reduce(original, modified)

    diff_full = int8_to_uint8(original) ^ int8_to_uint8(modified)
    diff_kept = int8_to_uint8(original) ^ int8_to_uint8(reduced)
    # At most one bit kept per byte; exactly one iff the weight changed.
    popcounts = np.unpackbits(diff_kept[..., None], axis=-1).sum(axis=-1)
    assert np.all(popcounts <= 1)
    assert np.array_equal(popcounts == 1, diff_full != 0)
    # The kept bit is the change mask's most significant bit: a subset of
    # the mask, with nothing of the mask above it.
    assert np.all(diff_kept & ~diff_full == 0)
    assert np.all(diff_full < 2 * np.maximum(diff_kept.astype(np.int32), 1))
    # Never increases N_flip, and reducing again changes nothing.
    assert hamming_distance(original, reduced) <= hamming_distance(original, modified)
    np.testing.assert_array_equal(bit_reduce(original, reduced), reduced)


@settings(max_examples=60, deadline=None)
@given(
    original=_INT8_ARRAYS,
    seed=st.integers(0, 2**16),
    forbidden=st.sets(st.integers(0, 7), max_size=7),
)
def test_property_bit_reduce_avoiding_never_touches_forbidden_bits(original, seed, forbidden):
    """The RADAR-evading variant keeps the invariants of plain reduction
    while never flipping a forbidden position."""
    rng = np.random.default_rng(seed)
    modified = rng.integers(-128, 128, size=original.shape).astype(np.int8)
    reduced = bit_reduce_avoiding(original, modified, forbidden_bits=tuple(forbidden))

    diff_kept = int8_to_uint8(original) ^ int8_to_uint8(reduced)
    popcounts = np.unpackbits(diff_kept[..., None], axis=-1).sum(axis=-1)
    assert np.all(popcounts <= 1)
    for bit in forbidden:
        assert not np.any(diff_kept & np.uint8(1 << bit))
    # A weight whose only changes were forbidden reverts to the original.
    mask = np.uint8(0xFF)
    for bit in forbidden:
        mask &= np.uint8(~np.uint8(1 << bit))
    allowed_diff = (int8_to_uint8(original) ^ int8_to_uint8(modified)) & mask
    np.testing.assert_array_equal(reduced[allowed_diff == 0], original[allowed_diff == 0])


@settings(max_examples=60, deadline=None)
@given(
    weights_per_page=st.integers(2, 64),
    n_pages=st.integers(1, 8),
    n_flip=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_property_group_sort_select_for_any_page_size(weights_per_page, n_pages, n_flip, seed):
    """C1/C2 hold for arbitrary page sizes: at most ``n_flip`` selections,
    never two from the same page, each its page group's argmax."""
    if n_flip > n_pages:
        n_flip = n_pages
    rng = np.random.default_rng(seed)
    n_w = n_pages * weights_per_page - int(rng.integers(0, weights_per_page // 2 + 1))
    grads = np.abs(rng.normal(size=n_w))
    selected = group_sort_select(grads, n_flip, weights_per_page=weights_per_page)

    assert 1 <= len(selected) <= n_flip  # C1: one weight per flip
    pages = [int(index) // weights_per_page for index in selected]
    assert len(set(pages)) == len(pages)  # C2: never two flips in one page
    pages_per_group = max(1, n_w // (weights_per_page * n_flip))
    span = weights_per_page * pages_per_group
    for index in selected:
        group = min(int(index) // span, n_flip - 1)
        lo = group * span
        hi = n_w if group == n_flip - 1 else (group + 1) * span
        assert grads[index] == grads[lo:hi].max()


@settings(max_examples=30, deadline=None)
@given(
    n_pages=st.integers(1, 6),
    n_flip=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_property_group_sort_select_constraints(n_pages, n_flip, seed):
    """For any gradient field: <= n_flip picks, one per page-aligned group,
    each the maximum-magnitude weight of its group."""
    if n_flip > n_pages:
        n_flip = n_pages
    rng = np.random.default_rng(seed)
    n_w = n_pages * WEIGHTS_PER_PAGE - int(rng.integers(0, WEIGHTS_PER_PAGE // 2))
    grads = rng.normal(size=n_w)
    selected = group_sort_select(np.abs(grads), n_flip)

    assert 1 <= len(selected) <= n_flip
    pages = set()
    pages_per_group = max(1, n_w // (WEIGHTS_PER_PAGE * n_flip))
    span = WEIGHTS_PER_PAGE * pages_per_group
    for index in selected:
        group = min(index // span, n_flip - 1)
        assert group not in pages
        pages.add(group)
        # The pick is its group's argmax.
        lo = group * span
        hi = n_w if group == n_flip - 1 else (group + 1) * span
        assert np.abs(grads[index]) == np.abs(grads[lo:hi]).max()


@settings(max_examples=30, deadline=None)
@given(operations=st.lists(st.integers(0, 49), min_size=1, max_size=60))
def test_property_frame_cache_is_lifo_under_any_sequence(operations):
    """Model-based: the frame cache behaves as a stack for any op sequence."""
    cache = PageFrameCache()
    model_stack = []
    for op in operations:
        if op % 2 == 0 and not cache.contains(op):
            cache.release(op)
            model_stack.append(op)
        elif len(cache):
            assert cache.allocate() == model_stack.pop()
    assert cache.peek_allocation_order() == list(reversed(model_stack))


@settings(max_examples=15, deadline=None)
@given(
    num_pages=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_property_file_mapping_is_content_faithful(num_pages, seed):
    """mmap of any registered file reads back exactly its content."""
    from repro.memory.dram import DRAMArray
    from repro.memory.geometry import DRAMGeometry
    from repro.memory.mmap import OSMemoryModel

    rng = np.random.default_rng(seed)
    geometry = DRAMGeometry(num_banks=4, rows_per_bank=32, row_size_bytes=8192)
    os_model = OSMemoryModel(DRAMArray(geometry, 0.0, seed=0), rng=seed)
    size = int(rng.integers(1, num_pages * 4096 + 1))
    content = rng.integers(0, 256, size=size).astype(np.uint8).tobytes()
    os_model.register_file("f", content)
    mapping = os_model.mmap_file("f")
    assert os_model.read_mapping(mapping)[: len(content)] == content


@settings(max_examples=20, deadline=None)
@given(
    requirements=st.lists(
        st.tuples(st.integers(0, 4095), st.integers(0, 7), st.sampled_from([1, -1])),
        min_size=1,
        max_size=4,
        unique=True,
    )
)
def test_property_templating_assignments_always_cover_requirements(requirements):
    """Any frame the templater assigns covers every required flip of its page."""
    from repro.quant.weightfile import BitLocation
    from repro.rowhammer.profiler import FlipProfile, FlipRecord
    from repro.rowhammer.templating import PageTemplater

    # Build a profile where frame 100 covers all requirements and frame 101
    # covers only the first.
    records = [
        FlipRecord(frame=100, byte_offset=o, bit=b, direction=d, n_sides=7)
        for o, b, d in requirements
    ]
    first = requirements[0]
    records.append(
        FlipRecord(frame=101, byte_offset=first[0], bit=first[1], direction=first[2], n_sides=7)
    )
    profile = FlipProfile(records=records, profiled_frames=[100, 101], n_sides=7)
    templater = PageTemplater(profile)
    targets = {
        0: [BitLocation(page=0, byte_offset=o, bit_index=b, direction=d) for o, b, d in requirements]
    }
    match = templater.match(targets)
    assert match.matched_pages == [0]
    frame = match.assignments[0]
    covered = templater._frame_flips[frame]
    for o, b, d in requirements:
        assert (o, b, d) in covered
