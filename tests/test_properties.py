"""Cross-module property-based tests of the core invariants.

These check reconstruction-style properties that hold for *any* input:
the bit-location diff is a faithful delta encoding, selection respects the
paper's constraints for any gradient field, and the OS model's mappings are
content-faithful under arbitrary operation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.attacks.cft import WEIGHTS_PER_PAGE, group_sort_select
from repro.memory.frame_cache import PageFrameCache
from repro.quant import WeightFile
from repro.quant.bits import flip_bit


@settings(max_examples=40, deadline=None)
@given(
    data=hnp.arrays(np.int8, st.integers(1, 600), elements=st.integers(-128, 127)),
    seed=st.integers(0, 2**16),
)
def test_property_bit_locations_are_a_faithful_delta(data, seed):
    """Applying the diff's flips to the original reproduces the target."""
    rng = np.random.default_rng(seed)
    modified = data.copy()
    flip_count = int(rng.integers(0, min(16, data.size)))
    for _ in range(flip_count):
        index = int(rng.integers(0, data.size))
        bit = int(rng.integers(0, 8))
        modified[index] = flip_bit(modified[index : index + 1], bit)[0]

    original_file = WeightFile(data)
    modified_file = WeightFile(modified)
    locations = original_file.bit_locations_against(modified_file)

    rebuilt = data.copy()
    for loc in locations:
        index = loc.flat_byte_index
        rebuilt[index] = flip_bit(rebuilt[index : index + 1], loc.bit_index)[0]
        # Direction is consistent with the target's bit value.
        target_bit = bool(np.uint8(modified[index]) & np.uint8(1 << loc.bit_index))
        assert (loc.direction == 1) == target_bit
    np.testing.assert_array_equal(rebuilt, modified)


@settings(max_examples=30, deadline=None)
@given(
    n_pages=st.integers(1, 6),
    n_flip=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_property_group_sort_select_constraints(n_pages, n_flip, seed):
    """For any gradient field: <= n_flip picks, one per page-aligned group,
    each the maximum-magnitude weight of its group."""
    if n_flip > n_pages:
        n_flip = n_pages
    rng = np.random.default_rng(seed)
    n_w = n_pages * WEIGHTS_PER_PAGE - int(rng.integers(0, WEIGHTS_PER_PAGE // 2))
    grads = rng.normal(size=n_w)
    selected = group_sort_select(np.abs(grads), n_flip)

    assert 1 <= len(selected) <= n_flip
    pages = set()
    pages_per_group = max(1, n_w // (WEIGHTS_PER_PAGE * n_flip))
    span = WEIGHTS_PER_PAGE * pages_per_group
    for index in selected:
        group = min(index // span, n_flip - 1)
        assert group not in pages
        pages.add(group)
        # The pick is its group's argmax.
        lo = group * span
        hi = n_w if group == n_flip - 1 else (group + 1) * span
        assert np.abs(grads[index]) == np.abs(grads[lo:hi]).max()


@settings(max_examples=30, deadline=None)
@given(operations=st.lists(st.integers(0, 49), min_size=1, max_size=60))
def test_property_frame_cache_is_lifo_under_any_sequence(operations):
    """Model-based: the frame cache behaves as a stack for any op sequence."""
    cache = PageFrameCache()
    model_stack = []
    for op in operations:
        if op % 2 == 0 and not cache.contains(op):
            cache.release(op)
            model_stack.append(op)
        elif len(cache):
            assert cache.allocate() == model_stack.pop()
    assert cache.peek_allocation_order() == list(reversed(model_stack))


@settings(max_examples=15, deadline=None)
@given(
    num_pages=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_property_file_mapping_is_content_faithful(num_pages, seed):
    """mmap of any registered file reads back exactly its content."""
    from repro.memory.dram import DRAMArray
    from repro.memory.geometry import DRAMGeometry
    from repro.memory.mmap import OSMemoryModel

    rng = np.random.default_rng(seed)
    geometry = DRAMGeometry(num_banks=4, rows_per_bank=32, row_size_bytes=8192)
    os_model = OSMemoryModel(DRAMArray(geometry, 0.0, seed=0), rng=seed)
    size = int(rng.integers(1, num_pages * 4096 + 1))
    content = rng.integers(0, 256, size=size).astype(np.uint8).tobytes()
    os_model.register_file("f", content)
    mapping = os_model.mmap_file("f")
    assert os_model.read_mapping(mapping)[: len(content)] == content


@settings(max_examples=20, deadline=None)
@given(
    requirements=st.lists(
        st.tuples(st.integers(0, 4095), st.integers(0, 7), st.sampled_from([1, -1])),
        min_size=1,
        max_size=4,
        unique=True,
    )
)
def test_property_templating_assignments_always_cover_requirements(requirements):
    """Any frame the templater assigns covers every required flip of its page."""
    from repro.quant.weightfile import BitLocation
    from repro.rowhammer.profiler import FlipProfile, FlipRecord
    from repro.rowhammer.templating import PageTemplater

    # Build a profile where frame 100 covers all requirements and frame 101
    # covers only the first.
    records = [
        FlipRecord(frame=100, byte_offset=o, bit=b, direction=d, n_sides=7)
        for o, b, d in requirements
    ]
    first = requirements[0]
    records.append(
        FlipRecord(frame=101, byte_offset=first[0], bit=first[1], direction=first[2], n_sides=7)
    )
    profile = FlipProfile(records=records, profiled_frames=[100, 101], n_sides=7)
    templater = PageTemplater(profile)
    targets = {
        0: [BitLocation(page=0, byte_offset=o, bit_index=b, direction=d) for o, b, d in requirements]
    }
    match = templater.match(targets)
    assert match.matched_pages == [0]
    frame = match.assignments[0]
    covered = templater._frame_flips[frame]
    for o, b, d in requirements:
        assert (o, b, d) in covered
