"""The work-stealing queue scheduler and its determinism contract.

Mirrors ``test_merge.py``'s layering, cheapest first:

1. **Protocol units**: queue init/attach validation, grid-order claiming,
   lease expiry and the rename-serialized steal, commit-marker dedup.
2. **Fake-runner byte identity**: interleaved workers, a killed worker, a
   wedged-then-stolen worker -- every fault mode merges to the rows,
   metrics and flight record of the unsharded run.
3. **Queue-mode merge fault injection**: every queue-specific
   :class:`MergeError` cause, and which degrade under ``allow_incomplete``.
4. **CLI end-to-end** (tier-1 acceptance): the real micro-scale pipeline
   through ``repro sweep --queue`` + ``repro queue-status`` +
   ``repro merge``, byte-identical to the unsharded run.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

import pytest

from repro import telemetry
from repro.errors import MergeError, SweepError
from repro.parallel import (
    SweepGrid,
    SweepJournal,
    SweepTask,
    init_queue,
    load_queue,
    merge_journals,
    merged_metrics,
    queue_status,
    run_queue,
    run_sweep,
    write_merged_events,
)
from repro.parallel import scheduler
from repro.parallel.journal import build_result_record
from repro.parallel.scheduler import claim_next, try_commit


# ---------------------------------------------------------------------------
# Shared fakes (same shapes as test_merge.py, so the contracts line up).
def _rich_runner(payload):
    task = SweepTask.from_json(payload["task"])
    value = float(task.seed * 10 + len(task.method))
    return {
        "status": "ok",
        "row": {
            "model": task.model, "device": task.device, "seed": task.seed,
            "method": task.method, "offline_n_flip": value, "offline_ta": 90.0,
            "offline_asr": 80.0, "online_n_flip": value, "online_ta": 88.0,
            "online_asr": 79.0, "r_match": 100.0,
        },
        "duration_seconds": 0.01,
        "metrics": {
            "counters": {"worker.flips": value},
            "gauges": {"worker.last_seed": float(task.seed)},
            "histogram_values": {"worker.loss": [value / 100.0]},
        },
        "spans": [],
        "events": [
            {"seq": 0, "kind": "task.done", "span": "attack",
             "data": {"task_id": task.task_id}},
        ],
    }


def _grid(methods=("a", "b", "c"), seeds=(0, 1)):
    return SweepGrid(methods=methods, models=("m",), devices=("K1",), seeds=seeds)


def _reference(tmp_path, grid):
    """Unsharded run + its journal-backed MergeResult (the byte oracle)."""
    path = tmp_path / "reference.jsonl"
    run_sweep(grid, workers=1, task_runner=_rich_runner, journal_path=str(path))
    return merge_journals([path])


def _assert_identical(tmp_path, result, reference):
    assert json.dumps(result.rows, sort_keys=True) == json.dumps(
        reference.rows, sort_keys=True
    )
    assert merged_metrics(result) == merged_metrics(reference)
    got, want = tmp_path / "got.events.jsonl", tmp_path / "want.events.jsonl"
    write_merged_events(result, got)
    write_merged_events(reference, want)
    assert got.read_bytes() == want.read_bytes()


class _NoHeartbeat:
    """Stand-in for a wedged worker whose heartbeat thread died."""

    def __init__(self, lease):
        pass

    def start(self):
        return self

    def stop(self):
        pass


# ---------------------------------------------------------------------------
# Queue init / attach / manifest validation.
def test_init_queue_creates_and_reattaches(tmp_path):
    grid = _grid()
    manifest = init_queue(tmp_path / "q", grid, lease_ttl=5.0)
    assert manifest.total_tasks == len(grid.expand())
    assert manifest.grid_sha == grid.grid_sha()
    again = init_queue(tmp_path / "q", grid)  # attach, not clobber
    assert again.grid_sha == manifest.grid_sha
    assert load_queue(tmp_path / "q").lease_ttl == 5.0


def test_init_queue_rejects_different_grid(tmp_path):
    init_queue(tmp_path / "q", _grid())
    with pytest.raises(SweepError, match="different grid"):
        init_queue(tmp_path / "q", _grid(seeds=(7,)))


def test_load_queue_rejects_non_queue_and_corrupt_manifest(tmp_path):
    with pytest.raises(SweepError, match="not a queue directory"):
        load_queue(tmp_path)
    manifest = init_queue(tmp_path / "q", _grid())
    payload = json.loads((manifest.root / "queue.json").read_text())
    payload["tasks"] = payload["tasks"][:-1]  # no longer hashes to grid_sha
    (manifest.root / "queue.json").write_text(json.dumps(payload))
    with pytest.raises(SweepError, match="inconsistent"):
        load_queue(tmp_path / "q")


def test_init_queue_rejects_nonpositive_ttl(tmp_path):
    with pytest.raises(SweepError, match="lease_ttl"):
        init_queue(tmp_path / "q", _grid(), lease_ttl=0)


# ---------------------------------------------------------------------------
# Claim / steal / commit protocol units.
def test_claims_follow_grid_order_and_exclude_leased_tasks(tmp_path):
    manifest = init_queue(tmp_path / "q", _grid(), lease_ttl=60.0)
    first, stole, _ = claim_next(manifest, "w1")
    assert (first.task_id, stole) == (manifest.task_ids[0], False)
    second, _, _ = claim_next(manifest, "w2")
    assert second.task_id == manifest.task_ids[1]  # w1's lease skipped
    first.release()
    third, _, _ = claim_next(manifest, "w2")
    assert third.task_id == manifest.task_ids[0]  # released -> claimable again


def test_expired_lease_is_stolen_exactly_once(tmp_path):
    manifest = init_queue(tmp_path / "q", _grid(), lease_ttl=0.05)
    lease, _, _ = claim_next(manifest, "dead")
    time.sleep(0.1)
    stolen, stole, _ = claim_next(manifest, "thief")
    assert stole and stolen.task_id == lease.task_id
    assert stolen.worker == "thief"
    # The original holder must not resurrect its lease file post-steal.
    assert lease.renew() is False


def test_commit_marker_first_writer_wins(tmp_path):
    manifest = init_queue(tmp_path / "q", _grid(), lease_ttl=60.0)
    mine, _, _ = claim_next(manifest, "w1")
    theirs = scheduler.Lease(
        path=mine.path, worker="w2", task_id=mine.task_id,
        task_index=mine.task_index, ttl=60.0, deadline=mine.deadline,
    )
    assert try_commit(manifest, mine, "ok") == (True, "w1")
    assert try_commit(manifest, theirs, "ok") == (False, "w1")


# ---------------------------------------------------------------------------
# Byte identity under every scheduling/fault mode.
def test_interleaved_workers_merge_byte_identical(tmp_path):
    grid = _grid()
    reference = _reference(tmp_path, grid)
    init_queue(tmp_path / "q", grid, lease_ttl=60.0)
    r1 = run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                   max_tasks=2, wait_for_completion=False)
    r2 = run_queue(tmp_path / "q", worker_id="w2", task_runner=_rich_runner,
                   max_tasks=2, wait_for_completion=False)
    r3 = run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner)
    assert (r1.claims, r2.claims) == (2, 2)
    assert r1.claims + r2.claims + r3.claims == reference.total_tasks
    assert queue_status(tmp_path / "q").complete
    # w1 reattached to its own journal; merge sees one journal per worker.
    result = merge_journals([r1.journal_path, r2.journal_path])
    assert result.workers == ["w1", "w2"]
    _assert_identical(tmp_path, result, reference)


def test_killed_worker_before_journaling_is_stolen(tmp_path):
    """Worker dies after claiming, before writing anything: lease expires,
    a survivor steals the task, and the merge shows no trace of the death."""
    grid = _grid()
    reference = _reference(tmp_path, grid)
    manifest = init_queue(tmp_path / "q", grid, lease_ttl=0.05)
    claim_next(manifest, "dead-worker")  # claims, then "crashes": no release
    time.sleep(0.1)
    survivor = run_queue(tmp_path / "q", worker_id="survivor",
                         task_runner=_rich_runner)
    assert survivor.steals == 1 and survivor.lease_expired == 1
    assert survivor.claims == reference.total_tasks
    result = merge_journals([survivor.journal_path])
    _assert_identical(tmp_path, result, reference)


def test_killed_worker_after_journaling_dedups_identically(tmp_path):
    """Worker dies between journal append and commit: the task is re-run by
    another worker, the duplicate rows are identical, and merge keeps the
    deterministic winner."""
    grid = _grid()
    reference = _reference(tmp_path, grid)
    manifest = init_queue(tmp_path / "q", grid, lease_ttl=0.05)
    lease, _, _ = claim_next(manifest, "aa-crashed")
    outcome = _rich_runner({"task": manifest.tasks[0].to_json()})
    with SweepJournal(manifest.journal_path("aa-crashed")) as journal:
        journal.append_header(
            grid_sha=manifest.grid_sha, total_tasks=manifest.total_tasks,
            schedule="queue", worker="aa-crashed", grid_task_ids=manifest.task_ids,
        )
        journal.append(build_result_record(
            lease.task_id, "ok", 1, 0.01, row=outcome["row"],
            metrics=outcome["metrics"], spans=outcome["spans"],
            events=outcome["events"], worker="aa-crashed",
        ))
    time.sleep(0.1)  # ... and dies here, without ever committing
    survivor = run_queue(tmp_path / "q", worker_id="zz-survivor",
                         task_runner=_rich_runner)
    assert survivor.claims == reference.total_tasks  # task 0 re-run
    result = merge_journals([
        manifest.journal_path("aa-crashed"), survivor.journal_path,
    ])
    assert result.workers == ["aa-crashed", "zz-survivor"]
    _assert_identical(tmp_path, result, reference)


def test_wedged_worker_is_stolen_and_supersedes_itself(tmp_path, monkeypatch):
    """The full race: a wedged worker's lease expires mid-task, a thief
    steals and commits, then the original finishes anyway -- its late
    result loses the commit race and is retracted with a structured
    tombstone, and the merge stays byte-identical."""
    monkeypatch.setattr(scheduler, "_Heartbeat", _NoHeartbeat)
    grid = _grid()
    reference = _reference(tmp_path, grid)
    init_queue(tmp_path / "q", grid, lease_ttl=0.4)

    def wedged_runner(payload):
        time.sleep(2.0)  # well past the TTL; no heartbeat to renew
        return _rich_runner(payload)

    results = {}

    def run_wedged():
        results["wedged"] = run_queue(
            tmp_path / "q", worker_id="wedged", task_runner=wedged_runner,
            max_tasks=1, wait_for_completion=False,
        )

    thread = threading.Thread(target=run_wedged)
    thread.start()
    time.sleep(1.0)  # lease (0.4 s) is now expired; wedged still asleep
    thief = run_queue(tmp_path / "q", worker_id="thief", task_runner=_rich_runner)
    thread.join()
    wedged = results["wedged"]

    assert thief.steals >= 1 and thief.claims == reference.total_tasks
    assert wedged.superseded == 1 and wedged.outcomes == []
    state = SweepJournal.load(wedged.journal_path)
    tombstone = state.records[reference.task_ids[0]]
    assert tombstone["status"] == "superseded"
    assert tombstone["cause"] == "duplicate-completion"
    assert tombstone["winner"] == "thief"

    result = merge_journals([wedged.journal_path, thief.journal_path])
    _assert_identical(tmp_path, result, reference)


def test_fault_delay_env_slows_but_never_changes_bytes(tmp_path, monkeypatch):
    grid = _grid(methods=("a", "b"), seeds=(0,))
    reference = _reference(tmp_path, grid)
    init_queue(tmp_path / "q", grid, lease_ttl=60.0)
    monkeypatch.setenv(scheduler.FAULT_DELAY_ENV, "0.05")
    slow = run_queue(tmp_path / "q", worker_id="slow", task_runner=_rich_runner,
                     max_tasks=1, wait_for_completion=False)
    monkeypatch.delenv(scheduler.FAULT_DELAY_ENV)
    fast = run_queue(tmp_path / "q", worker_id="fast", task_runner=_rich_runner)
    result = merge_journals([slow.journal_path, fast.journal_path])
    _assert_identical(tmp_path, result, reference)


def test_sched_counters_are_exact_and_stay_out_of_merged_metrics(
    tmp_path, monkeypatch
):
    """With telemetry on, a fault-injected two-worker drain (plus one dead
    claimer) records exact ``sched.*`` counters in the process registry --
    and none of them leak into the merged (deterministic) metrics."""
    grid = _grid()  # 6 tasks
    reference = _reference(tmp_path, grid)
    telemetry.enable()
    telemetry.get_registry().reset()
    manifest = init_queue(tmp_path / "q", grid, lease_ttl=0.05)
    claim_next(manifest, "dead")  # 1 claim, then "crashes" without releasing
    time.sleep(0.1)
    monkeypatch.setenv(scheduler.FAULT_DELAY_ENV, "0.01")
    slow = run_queue(tmp_path / "q", worker_id="slow", task_runner=_rich_runner,
                     max_tasks=2, wait_for_completion=False)
    monkeypatch.delenv(scheduler.FAULT_DELAY_ENV)
    fast = run_queue(tmp_path / "q", worker_id="fast", task_runner=_rich_runner)

    counters = telemetry.get_registry().snapshot()["counters"]
    # dead's 1 claim + slow's 2 + fast's 4 = 7; exactly one of them stole
    # the dead worker's expired lease.
    assert counters["sched.claims"] == 7.0
    assert counters["sched.steals"] == 1.0
    assert counters["sched.lease_expired"] == 1.0
    assert "sched.superseded" not in counters  # no commit race happened
    assert slow.steals + fast.steals == 1

    result = merge_journals([slow.journal_path, fast.journal_path])
    _assert_identical(tmp_path, result, reference)
    merged = merged_metrics(result)
    assert not [k for k in merged["counters"] if k.startswith("sched.")]


# ---------------------------------------------------------------------------
# queue-status and worker-side validation.
def test_queue_status_counts(tmp_path):
    grid = _grid()
    manifest = init_queue(tmp_path / "q", grid, lease_ttl=60.0)
    run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
              max_tasks=2, wait_for_completion=False)
    claim_next(manifest, "w2")  # one live lease, never executed
    status = queue_status(tmp_path / "q")
    assert (status.done, status.leased, status.open_tasks) == (
        2, 1, manifest.total_tasks - 2
    )
    assert not status.complete
    assert status.workers == ["w1"]
    assert status.to_json()["expired_leases"] == 0


def test_run_queue_rejects_foreign_journal_identity(tmp_path):
    grid = _grid(methods=("a",), seeds=(0,))
    manifest = init_queue(tmp_path / "q", grid)
    run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner)
    # Another worker id reusing w1's journal file is a misconfiguration.
    shutil.copy(manifest.journal_path("w1"), manifest.journal_path("w2"))
    with pytest.raises(SweepError, match="belongs to worker"):
        run_queue(tmp_path / "q", worker_id="w2", task_runner=_rich_runner)
    with pytest.raises(SweepError, match="no filename-safe characters"):
        run_queue(tmp_path / "q", worker_id="///", task_runner=_rich_runner)


# ---------------------------------------------------------------------------
# Queue-mode merge fault injection: the structured causes.
def _drain(tmp_path, grid, workers=("w1", "w2")):
    init_queue(tmp_path / "q", grid, lease_ttl=60.0)
    paths = []
    for index, worker_id in enumerate(workers):
        last = index == len(workers) - 1
        result = run_queue(
            tmp_path / "q", worker_id=worker_id, task_runner=_rich_runner,
            max_tasks=None if last else 2, wait_for_completion=last,
        )
        paths.append(result.journal_path)
    return paths


def _edit_header(path, **changes):
    from pathlib import Path

    path = Path(path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    for key, value in changes.items():
        if value is None:
            header.pop(key, None)
        else:
            header[key] = value
    lines[0] = json.dumps(header, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")


def _cause(paths, **kwargs):
    with pytest.raises(MergeError) as excinfo:
        merge_journals(paths, **kwargs)
    return excinfo.value.cause


def test_merge_rejects_mixed_schedules(tmp_path):
    grid = _grid()
    queue_paths = _drain(tmp_path, grid)
    shard_path = tmp_path / "shard.jsonl"
    run_sweep(grid, task_runner=_rich_runner, shard=(0, 2),
              journal_path=str(shard_path))
    assert _cause([queue_paths[0], shard_path]) == "mixed-schedule"


def test_merge_rejects_missing_queue_metadata(tmp_path):
    paths = _drain(tmp_path, _grid())
    _edit_header(paths[0], worker=None)
    assert _cause(paths) == "missing-queue-metadata"


def test_merge_rejects_duplicate_worker(tmp_path):
    paths = _drain(tmp_path, _grid())
    copy = tmp_path / "q" / "journals" / "other-host.journal.jsonl"
    shutil.copy(paths[0], copy)  # same header worker id under a new filename
    assert _cause(paths + [str(copy)]) == "duplicate-worker"


def test_merge_rejects_grid_tasks_mismatch(tmp_path):
    paths = _drain(tmp_path, _grid())
    ids = json.loads(
        open(paths[0]).readline()
    )["grid_task_ids"]
    _edit_header(paths[0], grid_task_ids=list(reversed(ids)))
    assert _cause(paths) == "grid-tasks-mismatch"


def test_merge_rejects_foreign_result(tmp_path):
    paths = _drain(tmp_path, _grid())
    with open(paths[0], "a", encoding="utf-8") as handle:
        handle.write(json.dumps(build_result_record(
            "not|in|this|grid|seed=9", "ok", 1, 0.0, row={"x": 1}
        )) + "\n")
    assert _cause(paths) == "foreign-result"


def test_merge_rejects_conflicting_duplicate_rows(tmp_path):
    grid = _grid()
    reference = _reference(tmp_path, grid)
    paths = _drain(tmp_path, grid, workers=("w1",))
    # Forge a second worker that claims a different value for one task.
    forged = tmp_path / "q" / "journals" / "w2.journal.jsonl"
    shutil.copy(paths[0], forged)
    _edit_header(forged, worker="w2")
    lines = forged.read_text().splitlines()
    record = json.loads(lines[1])
    record["row"]["offline_n_flip"] = 99999.0
    lines[1] = json.dumps(record, sort_keys=True)
    forged.write_text("\n".join(lines) + "\n")
    assert _cause([paths[0], str(forged)]) == "conflicting-result"
    # ... but identical duplicates are benign (steal races produce them).
    _edit_header(forged, worker="w3")
    record = json.loads(open(paths[0]).read().splitlines()[1])
    lines[1] = json.dumps(dict(record, worker="w3"), sort_keys=True)
    forged.write_text("\n".join(lines) + "\n")
    result = merge_journals([paths[0], str(forged)])
    _assert_identical(tmp_path, result, reference)


def test_merge_missing_result_degrades_for_undrained_queue(tmp_path):
    grid = _grid()
    init_queue(tmp_path / "q", grid, lease_ttl=60.0)
    partial = run_queue(tmp_path / "q", worker_id="w1", task_runner=_rich_runner,
                        max_tasks=2, wait_for_completion=False)
    assert _cause([partial.journal_path]) == "missing-result"
    result = merge_journals([partial.journal_path], allow_incomplete=True)
    assert len(result.rows) == 2
    assert result.missing_count == len(grid.expand()) - 2
    assert result.task_ids == [task.task_id for task in grid.expand()]


# ---------------------------------------------------------------------------
# Tier-1 acceptance: the real micro-scale pipeline over the CLI.
def test_cli_queue_sweep_is_byte_identical_to_unsharded_sweep(tmp_path, monkeypatch):
    """``repro sweep --queue`` + ``repro merge <dir>`` reproduce the
    unsharded sweep's rows and flight record byte-for-byte, and
    ``repro queue-status`` tracks drain state through its exit code."""
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = [
        "sweep", "--methods", "CFT,CFT+BR", "--models", "tinycnn",
        "--devices", "K1", "--target", "1", "--scale", "micro",
    ]
    ref_rows = tmp_path / "ref.json"
    ref_events = tmp_path / "ref.events.jsonl"
    assert main(argv + ["--out", str(ref_rows), "--events", str(ref_events)]) == 0

    qdir = tmp_path / "q"
    assert main(argv + [
        "--queue", str(qdir), "--worker-id", "w1", "--lease-ttl", "60",
        "--out", str(tmp_path / "w1.json"),
        "--events", str(tmp_path / "w1.sched.jsonl"),
    ]) == 0
    assert main(["queue-status", str(qdir)]) == 0  # drained -> exit 0
    # A late joiner finds nothing to claim and exits cleanly with no rows.
    assert main(argv + [
        "--queue", str(qdir), "--worker-id", "w2",
        "--out", str(tmp_path / "w2.json"),
    ]) == 0
    assert json.loads((tmp_path / "w2.json").read_text()) == []

    merged_rows = tmp_path / "merged.json"
    merged_events_path = tmp_path / "merged.events.jsonl"
    assert main([
        "merge", str(qdir), "--out", str(merged_rows),
        "--events", str(merged_events_path),
        "--journal", str(tmp_path / "merged.journal.jsonl"),
        "--no-manifest",
    ]) == 0
    assert merged_rows.read_bytes() == ref_rows.read_bytes()
    assert merged_events_path.read_bytes() == ref_events.read_bytes()
    # The per-worker scheduler decision log is the claim/commit audit trail.
    sched_kinds = [
        json.loads(line).get("kind")
        for line in (tmp_path / "w1.sched.jsonl").read_text().splitlines()
    ]
    assert "sched.claim" in sched_kinds and "sched.commit" in sched_kinds


def test_cli_queue_rejects_shard_and_workers_combos(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    base = ["sweep", "--queue", str(tmp_path / "q"), "--scale", "micro",
            "--methods", "CFT", "--models", "tinycnn",
            "--out", str(tmp_path / "rows.json")]
    assert main(base + ["--shard", "0/2"]) == 2
    assert main(base + ["--workers", "4"]) == 2
    err = capsys.readouterr().err
    assert "incompatible with --shard" in err and "inline" in err
