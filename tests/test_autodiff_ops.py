"""Gradient checks and semantics for the elementwise/linear-algebra ops."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor, concat, no_grad, stack
from repro.errors import GradientError

from tests.helpers import check_gradient

RNG = np.random.default_rng(42)


def _rand(*shape):
    return RNG.normal(size=shape)


class TestArithmetic:
    def test_add_gradients(self):
        b = Tensor(_rand(3, 4).astype(np.float32))
        check_gradient(lambda t: t + b, _rand(3, 4))

    def test_add_broadcast_gradients(self):
        b = Tensor(_rand(4).astype(np.float32), requires_grad=True)
        a = Tensor(_rand(3, 4).astype(np.float32), requires_grad=True)
        out = a + b
        out.backward(np.ones((3, 4), dtype=np.float32))
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(4))

    def test_sub_and_rsub(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        out = 5.0 - a
        out.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_mul_gradients(self):
        b = Tensor(_rand(3, 4).astype(np.float32))
        check_gradient(lambda t: t * b, _rand(3, 4))

    def test_div_gradients(self):
        b = Tensor((np.abs(_rand(3, 4)) + 1.0).astype(np.float32))
        check_gradient(lambda t: t / b, _rand(3, 4))

    def test_rdiv(self):
        a = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = 8.0 / a
        out.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [-2.0, -0.5])

    def test_neg_and_pow(self):
        check_gradient(lambda t: -(t**2.0), _rand(5))

    def test_matmul_gradients(self):
        b = Tensor(_rand(4, 2).astype(np.float32))
        check_gradient(lambda t: t @ b, _rand(3, 4))

    def test_matmul_both_sides_accumulate(self):
        a = Tensor(_rand(2, 3).astype(np.float32), requires_grad=True)
        b = Tensor(_rand(3, 2).astype(np.float32), requires_grad=True)
        out = (a @ b).sum()
        out.backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 2)


class TestElementwise:
    @pytest.mark.parametrize(
        "op",
        [
            lambda t: t.exp(),
            lambda t: t.sigmoid(),
            lambda t: t.tanh(),
            lambda t: t.relu(),
            lambda t: t.abs(),
        ],
    )
    def test_unary_gradients(self, op):
        # Offset from zero to avoid the relu/abs kink.
        x = _rand(4, 4)
        x = np.where(np.abs(x) < 0.1, 0.25, x)
        check_gradient(op, x)

    def test_log_gradient(self):
        check_gradient(lambda t: t.log(), np.abs(_rand(4, 4)) + 0.5)

    def test_clip_gradient_is_masked(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = a.clip(-1.0, 1.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_gradients(self):
        check_gradient(lambda t: t.sum(axis=1), _rand(3, 5))

    def test_sum_keepdims(self):
        out = Tensor(_rand(3, 5).astype(np.float32)).sum(axis=0, keepdims=True)
        assert out.shape == (1, 5)

    def test_mean_gradients(self):
        check_gradient(lambda t: t.mean(axis=(0, 2)), _rand(2, 3, 4))

    def test_max_gradient_goes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 3.0]]), requires_grad=True)
        a.max(axis=1).backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        a.max(axis=1).backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_roundtrip_gradient(self):
        check_gradient(lambda t: t.reshape(6, 2), _rand(3, 4))

    def test_transpose_gradient(self):
        check_gradient(lambda t: t.transpose(1, 0, 2), _rand(2, 3, 4))

    def test_getitem_gradient_scatters(self):
        a = Tensor(_rand(4, 4).astype(np.float32), requires_grad=True)
        out = a[1:3, :2].sum()
        out.backward()
        expected = np.zeros((4, 4))
        expected[1:3, :2] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_stack_and_concat_gradients(self):
        a = Tensor(_rand(2, 3).astype(np.float32), requires_grad=True)
        b = Tensor(_rand(2, 3).astype(np.float32), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        a.zero_grad()
        concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))


class TestTapeSemantics:
    def test_backward_requires_scalar_or_gradient(self):
        a = Tensor(_rand(3).astype(np.float32), requires_grad=True)
        with pytest.raises(GradientError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(GradientError):
            Tensor(np.ones(3)).backward()

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_no_grad_suppresses_tape(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        out = (b + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_shared_leaf_in_two_branches(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_detach_cuts_the_tape(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = (a.detach() * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0])

    def test_deep_chain_does_not_overflow(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 0.0
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
