"""Module system, layers and parameter bookkeeping."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Module


class TestParameterRegistration:
    def test_named_parameters_are_hierarchical(self):
        seq = Sequential(Linear(4, 3, rng=0), ReLU(), Linear(3, 2, rng=0))
        names = [name for name, _ in seq.named_parameters()]
        assert names == ["m0.weight", "m0.bias", "m2.weight", "m2.bias"]

    def test_num_parameters(self):
        layer = Linear(4, 3, rng=0)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones((1, 2), dtype=np.float32))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_train_eval_propagates(self):
        seq = Sequential(BatchNorm2d(3), Sequential(BatchNorm2d(3)))
        seq.eval()
        assert not seq[0].training
        assert not seq[1][0].training
        seq.train()
        assert seq[1][0].training


class TestStateDict:
    def test_roundtrip_preserves_parameters_and_buffers(self):
        bn = BatchNorm2d(2)
        bn(Tensor(np.random.default_rng(0).normal(size=(4, 2, 3, 3)).astype(np.float32)))
        state = bn.state_dict()
        fresh = BatchNorm2d(2)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
        np.testing.assert_allclose(fresh.weight.data, bn.weight.data)

    def test_shape_mismatch_raises(self):
        layer = Linear(4, 3, rng=0)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_unknown_key_raises(self):
        layer = Linear(4, 3, rng=0)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(1)})

    def test_state_dict_is_a_copy(self):
        layer = Linear(2, 2, rng=0)
        state = layer.state_dict()
        state["weight"][:] = 0
        assert not np.allclose(layer.weight.data, 0)


class TestLayers:
    def test_linear_forward_shape_and_value(self):
        layer = Linear(3, 2, rng=0)
        layer.weight.data = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.float32)
        layer.bias.data = np.array([1.0, -1.0], dtype=np.float32)
        out = layer(Tensor(np.array([[2.0, 3.0, 4.0]], dtype=np.float32)))
        np.testing.assert_allclose(out.numpy(), [[3.0, 2.0]])

    def test_linear_without_bias(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        out = layer(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_batchnorm_updates_running_stats_in_train_only(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.random.default_rng(1).normal(3.0, 1.0, size=(8, 2, 4, 4)).astype(np.float32))
        bn.train()
        bn(x)
        after_train = bn.running_mean.copy()
        assert not np.allclose(after_train, 0.0)
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, after_train)

    def test_flatten_and_identity(self):
        x = Tensor(np.zeros((2, 3, 4, 4), dtype=np.float32))
        assert Flatten()(x).shape == (2, 48)
        assert Identity()(x) is x

    def test_pooling_layers(self):
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32))
        assert MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 2)

    def test_sequential_iteration_and_indexing(self):
        first, second = Linear(2, 2, rng=0), ReLU()
        seq = Sequential(first, second)
        assert len(seq) == 2
        assert seq[0] is first
        assert list(seq)[1] is second
