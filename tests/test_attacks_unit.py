"""Unit tests for attack building blocks (selection, objective, config)."""

import numpy as np
import pytest

from repro.attacks import AttackConfig, attack_loss_and_grads, group_sort_select
from repro.attacks.cft import WEIGHTS_PER_PAGE
from repro.attacks.objective import flatten_grads
from repro.data.trigger import TriggerPattern
from repro.errors import AttackError


class TestAttackConfig:
    def test_defaults_follow_paper(self):
        config = AttackConfig()
        assert config.alpha == 0.5
        assert config.epsilon == 0.001
        assert config.trigger_size == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.5},
            {"epsilon": -0.1},
            {"iterations": 0},
            {"n_flip_budget": 0},
            {"update_rule": "newton"},
            {"step_quanta": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(AttackError):
            AttackConfig(**kwargs)


class TestGroupSortSelect:
    def test_selects_top_per_group(self):
        n = WEIGHTS_PER_PAGE * 4
        grads = np.zeros(n)
        grads[100] = 5.0  # group 0
        grads[WEIGHTS_PER_PAGE + 7] = 3.0  # group 1
        grads[2 * WEIGHTS_PER_PAGE + 9] = 4.0  # group 2
        grads[3 * WEIGHTS_PER_PAGE + 1] = 1.0  # group 3
        selected = group_sort_select(grads, n_flip=4)
        assert set(selected) == {100, WEIGHTS_PER_PAGE + 7, 2 * WEIGHTS_PER_PAGE + 9, 3 * WEIGHTS_PER_PAGE + 1}

    def test_one_selection_per_page_group(self):
        n = WEIGHTS_PER_PAGE * 6
        grads = np.random.default_rng(0).random(n)
        selected = group_sort_select(grads, n_flip=3)
        assert len(selected) == 3
        pages = selected // WEIGHTS_PER_PAGE
        assert len(set(pages.tolist())) == 3  # no page collision

    def test_trailing_weights_fold_into_last_group(self):
        n = WEIGHTS_PER_PAGE * 2 + 100
        grads = np.zeros(n)
        grads[-1] = 9.0
        selected = group_sort_select(grads, n_flip=2)
        assert n - 1 in selected

    def test_budget_exceeding_pages_raises(self):
        grads = np.random.default_rng(0).random(WEIGHTS_PER_PAGE)  # one page
        with pytest.raises(AttackError):
            group_sort_select(grads, n_flip=2)

    def test_small_model_single_group(self):
        grads = np.array([1.0, 9.0, 3.0])
        selected = group_sort_select(grads, n_flip=1)
        assert selected.tolist() == [1]


class TestObjective:
    def test_loss_components_and_grads(self, tiny_model, tiny_dataset):
        trigger = TriggerPattern.square((3, 16, 16), 4)
        tiny_model.eval()
        result = attack_loss_and_grads(
            tiny_model,
            tiny_dataset.images[:16],
            tiny_dataset.labels[:16],
            trigger,
            target_class=1,
            alpha=0.5,
        )
        assert result.loss == pytest.approx(
            0.5 * result.clean_loss + 0.5 * result.trigger_loss, rel=1e-5
        )
        assert set(result.param_grads) == {n for n, _ in tiny_model.named_parameters()}
        assert result.trigger_grad is not None
        assert result.trigger_grad.shape == (3, 16, 16)

    def test_alpha_zero_ignores_trigger_loss(self, tiny_model, tiny_dataset):
        trigger = TriggerPattern.square((3, 16, 16), 4)
        result = attack_loss_and_grads(
            tiny_model,
            tiny_dataset.images[:8],
            tiny_dataset.labels[:8],
            trigger,
            target_class=1,
            alpha=0.0,
        )
        assert result.loss == pytest.approx(result.clean_loss, rel=1e-5)

    def test_trigger_grad_optional(self, tiny_model, tiny_dataset):
        trigger = TriggerPattern.square((3, 16, 16), 4)
        result = attack_loss_and_grads(
            tiny_model,
            tiny_dataset.images[:8],
            tiny_dataset.labels[:8],
            trigger,
            target_class=1,
            alpha=0.5,
            need_trigger_grad=False,
        )
        assert result.trigger_grad is None

    def test_flatten_grads_order(self, tiny_model, tiny_dataset):
        trigger = TriggerPattern.square((3, 16, 16), 4)
        result = attack_loss_and_grads(
            tiny_model,
            tiny_dataset.images[:8],
            tiny_dataset.labels[:8],
            trigger,
            target_class=1,
            alpha=0.5,
        )
        names = [n for n, _ in tiny_model.named_parameters()]
        flat = flatten_grads(result.param_grads, names)
        assert flat.size == tiny_model.num_parameters()
        np.testing.assert_allclose(
            flat[: result.param_grads[names[0]].size],
            result.param_grads[names[0]].reshape(-1),
        )
