#!/usr/bin/env python
"""Docs-freshness gate: fail CI when code outgrows the operator docs.

Four invariants, each checked from the single source of truth in code so
the README runbook and DESIGN chapter cannot silently rot:

1. Every CLI subcommand (from ``repro.cli.build_parser``) is mentioned in
   README.md.
2. Every registered ``MergeError`` cause (``repro.errors.MERGE_ERROR_CAUSES``)
   appears in both README.md (the troubleshooting table) and DESIGN.md.
3. The registries themselves are honest: the set of causes actually used in
   ``src/repro/`` (grepped as ``MergeError("<cause>"`` /
   ``health_issue("<cause>"``) equals the registered set -- no unregistered
   cause, no dead registry entry.
4. Every live-health cause (``repro.errors.HEALTH_CAUSES``, surfaced by
   ``repro watch`` / ``repro queue-status``) appears in both README.md and
   DESIGN.md.
5. Every registered compute backend (``repro.backend.available_backends``)
   appears backticked in README.md's backend table.

Run from the repo root: ``PYTHONPATH=src python tools/check_docs.py``.
Exit code 0 when the docs are fresh, 1 with a per-item report otherwise.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
_RAISE_RE = re.compile(r"MergeError\(\s*[\"']([a-z-]+)[\"']")
_HEALTH_RE = re.compile(r"health_issue\(\s*\n?\s*[\"']([a-z-]+)[\"']")


def cli_subcommands():
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("repro.cli.build_parser() has no subparsers")


def raised_causes():
    causes = set()
    for path in (REPO / "src" / "repro").rglob("*.py"):
        causes.update(_RAISE_RE.findall(path.read_text(encoding="utf-8")))
    return causes


def emitted_health_causes():
    causes = set()
    for path in (REPO / "src" / "repro").rglob("*.py"):
        causes.update(_HEALTH_RE.findall(path.read_text(encoding="utf-8")))
    return causes


def main() -> int:
    from repro.errors import HEALTH_CAUSES, MERGE_ERROR_CAUSES

    readme = (REPO / "README.md").read_text(encoding="utf-8")
    design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    problems = []

    for command in cli_subcommands():
        if command not in readme:
            problems.append(
                f"CLI subcommand `{command}` is not documented in README.md"
            )

    for cause in sorted(MERGE_ERROR_CAUSES):
        if cause not in readme:
            problems.append(
                f"MergeError cause `{cause}` is missing from the README.md "
                "troubleshooting table"
            )
        if cause not in design:
            problems.append(f"MergeError cause `{cause}` is missing from DESIGN.md")

    in_code = raised_causes()
    for cause in sorted(in_code - MERGE_ERROR_CAUSES):
        problems.append(
            f"MergeError cause `{cause}` is raised in code but not registered "
            "in repro.errors.MERGE_ERROR_CAUSES"
        )
    for cause in sorted(MERGE_ERROR_CAUSES - in_code):
        problems.append(
            f"MergeError cause `{cause}` is registered but never raised "
            "(stale registry entry?)"
        )

    for cause in sorted(HEALTH_CAUSES):
        if cause not in readme:
            problems.append(
                f"health cause `{cause}` is missing from the README.md "
                "live-observability section"
            )
        if cause not in design:
            problems.append(f"health cause `{cause}` is missing from DESIGN.md")

    in_code = emitted_health_causes()
    for cause in sorted(in_code - HEALTH_CAUSES):
        problems.append(
            f"health cause `{cause}` is emitted in code but not registered "
            "in repro.errors.HEALTH_CAUSES"
        )
    for cause in sorted(HEALTH_CAUSES - in_code):
        problems.append(
            f"health cause `{cause}` is registered but never emitted "
            "(stale registry entry?)"
        )

    from repro.backend import available_backends

    for backend in available_backends():
        if f"`{backend}`" not in readme:
            problems.append(
                f"compute backend `{backend}` is registered but missing from "
                "the README.md backend table"
            )

    if problems:
        print("docs freshness check FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(
        f"docs freshness OK: {len(cli_subcommands())} subcommand(s), "
        f"{len(MERGE_ERROR_CAUSES)} MergeError cause(s) and "
        f"{len(HEALTH_CAUSES)} health cause(s) documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
