"""Symmetric per-tensor quantization, matching the paper's Section IV-C.

A floating-point weight tensor ``W_fp`` is re-encoded as signed integers
``W_q = round(W_fp / delta)`` with ``delta = max|W_fp| / (2^(Nq-1) - 1)``,
stored in two's-complement form (Nq = 8 in all experiments).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.errors import QuantizationError


@dataclasses.dataclass(frozen=True)
class QuantizationParams:
    """Quantization metadata for one tensor."""

    scale: float
    num_bits: int = 8

    @property
    def qmin(self) -> int:
        return -(2 ** (self.num_bits - 1)) + 1

    @property
    def qmax(self) -> int:
        return 2 ** (self.num_bits - 1) - 1


def quantize(weights: np.ndarray, num_bits: int = 8) -> Tuple[np.ndarray, QuantizationParams]:
    """Quantize a float tensor to signed ``num_bits`` integers.

    Returns the integer tensor (dtype int8 for num_bits == 8, else int16)
    and the :class:`QuantizationParams` needed to dequantize.
    """
    if not 2 <= num_bits <= 16:
        raise QuantizationError(f"num_bits must be in [2, 16], got {num_bits}")
    weights = np.asarray(weights, dtype=np.float64)
    qmax = 2 ** (num_bits - 1) - 1
    peak = float(np.max(np.abs(weights))) if weights.size else 0.0
    if peak == 0.0:
        # All-zero tensor: any positive scale round-trips correctly.
        scale = 1.0
    else:
        scale = peak / qmax
    q = np.clip(np.round(weights / scale), -qmax, qmax)
    dtype = np.int8 if num_bits <= 8 else np.int16
    return q.astype(dtype), QuantizationParams(scale=scale, num_bits=num_bits)


def dequantize(q: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Map integer weights back to float32."""
    return (np.asarray(q, dtype=np.float64) * params.scale).astype(np.float32)
