"""The serialized weight file and its 4 KB page layout.

When the deployed model is loaded, the OS page cache stores the weight file
in fixed 4 KB pages (Figure 3).  With 8-bit weights, each page holds exactly
4096 weights; the page/offset geometry below is what both the grouping
constraint (C2) and the online Rowhammer phase operate on.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.quant.bits import int8_to_uint8

PAGE_SIZE_BYTES = 4096
PAGE_SIZE_BITS = PAGE_SIZE_BYTES * 8


@dataclasses.dataclass(frozen=True)
class BitLocation:
    """A single bit in the weight file, in page coordinates.

    Attributes
    ----------
    page:
        Page index within the file.
    byte_offset:
        Byte offset within the page (0..4095).
    bit_index:
        Bit within the byte, 0 = LSB .. 7 = MSB.
    direction:
        +1 for a 0->1 flip, -1 for 1->0 (the flip the attack needs).
    """

    page: int
    byte_offset: int
    bit_index: int
    direction: int

    @property
    def flat_byte_index(self) -> int:
        return self.page * PAGE_SIZE_BYTES + self.byte_offset


class WeightFile:
    """A byte-level view of the serialized int8 weights."""

    def __init__(self, flat_int8: np.ndarray) -> None:
        flat_int8 = np.asarray(flat_int8, dtype=np.int8)
        if flat_int8.ndim != 1:
            raise QuantizationError(f"weight file needs a flat vector, got {flat_int8.shape}")
        self._data = flat_int8.copy()

    @classmethod
    def from_bytes(cls, raw: bytes) -> "WeightFile":
        return cls(np.frombuffer(raw, dtype=np.int8))

    def to_bytes(self) -> bytes:
        return int8_to_uint8(self._data).tobytes()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._data.size)

    @property
    def num_pages(self) -> int:
        """Number of 4 KB pages the file occupies (last page may be partial)."""
        return (len(self) + PAGE_SIZE_BYTES - 1) // PAGE_SIZE_BYTES

    def page_of(self, flat_index: int) -> int:
        self._check_index(flat_index)
        return flat_index // PAGE_SIZE_BYTES

    def page_offset_of(self, flat_index: int) -> int:
        self._check_index(flat_index)
        return flat_index % PAGE_SIZE_BYTES

    def page_slice(self, page: int) -> np.ndarray:
        """Return the int8 contents of one page (copy; short final page allowed)."""
        if not 0 <= page < self.num_pages:
            raise QuantizationError(f"page {page} out of range [0, {self.num_pages})")
        start = page * PAGE_SIZE_BYTES
        return self._data[start : start + PAGE_SIZE_BYTES].copy()

    def pages(self) -> Iterator[Tuple[int, np.ndarray]]:
        for page in range(self.num_pages):
            yield page, self.page_slice(page)

    def _check_index(self, flat_index: int) -> None:
        if not 0 <= flat_index < len(self):
            raise QuantizationError(
                f"byte index {flat_index} out of range [0, {len(self)})"
            )

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    def read(self, flat_index: int) -> int:
        self._check_index(flat_index)
        return int(self._data[flat_index])

    def write(self, flat_index: int, value: int) -> None:
        self._check_index(flat_index)
        self._data[flat_index] = np.int8(value)

    def as_int8(self) -> np.ndarray:
        return self._data.copy()

    def bit_locations_against(self, other: "WeightFile") -> List[BitLocation]:
        """All bit differences between two files, in page coordinates."""
        if len(other) != len(self):
            raise QuantizationError(
                f"cannot diff files of different sizes ({len(self)} vs {len(other)})"
            )
        mine = int8_to_uint8(self._data)
        theirs = int8_to_uint8(other._data)
        diff = mine ^ theirs
        locations: List[BitLocation] = []
        for idx in np.nonzero(diff)[0]:
            d = int(diff[idx])
            for bit in range(8):
                if d & (1 << bit):
                    direction = 1 if int(theirs[idx]) & (1 << bit) else -1
                    locations.append(
                        BitLocation(
                            page=int(idx) // PAGE_SIZE_BYTES,
                            byte_offset=int(idx) % PAGE_SIZE_BYTES,
                            bit_index=bit,
                            direction=direction,
                        )
                    )
        return locations
