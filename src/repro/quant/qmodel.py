"""Quantized model wrapper: the deployed artifact the attack targets.

A :class:`QuantizedModel` snapshots a float model's parameters into int8
(per-tensor symmetric scales, Section IV-C), defines the canonical flat
weight-file layout (parameters concatenated in ``named_parameters`` order,
one byte per weight), and keeps the float model's parameters in sync with
the integer weights so inference always reflects the deployed bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.nn.module import Module
from repro.quant.bits import flip_bit, hamming_distance
from repro.quant.quantizer import QuantizationParams, dequantize, quantize


class QuantizedModel:
    """An int8-quantized view over a float model.

    Parameters
    ----------
    module:
        The float model whose parameters are quantized.  The module is
        mutated in place whenever :meth:`sync_to_module` runs (which all
        integer-mutating methods call automatically).
    num_bits:
        Quantization width; the paper uses 8 everywhere.
    """

    def __init__(self, module: Module, num_bits: int = 8) -> None:
        if num_bits != 8:
            raise QuantizationError(
                f"the weight-file layout assumes 8-bit weights, got {num_bits}"
            )
        self.module = module
        self.num_bits = num_bits
        self._names: List[str] = []
        self._shapes: Dict[str, Tuple[int, ...]] = {}
        self._offsets: Dict[str, int] = {}
        self._qparams: Dict[str, QuantizationParams] = {}
        self._qweights: Dict[str, np.ndarray] = {}

        offset = 0
        for name, param in module.named_parameters():
            q, params = quantize(param.data, num_bits=num_bits)
            self._names.append(name)
            self._shapes[name] = param.data.shape
            self._offsets[name] = offset
            self._qparams[name] = params
            self._qweights[name] = q
            offset += param.size
        self._total = offset
        self.sync_to_module()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def parameter_names(self) -> List[str]:
        return list(self._names)

    @property
    def total_params(self) -> int:
        """Number of weights == number of bytes in the weight file."""
        return self._total

    @property
    def total_bits(self) -> int:
        return self._total * 8

    def offset_of(self, name: str) -> int:
        return self._offsets[name]

    def scale_of(self, name: str) -> float:
        return self._qparams[name].scale

    def qparams_of(self, name: str) -> QuantizationParams:
        return self._qparams[name]

    def locate(self, flat_index: int) -> Tuple[str, int]:
        """Map a flat weight-file byte index to (parameter name, local index)."""
        if not 0 <= flat_index < self._total:
            raise QuantizationError(
                f"flat index {flat_index} out of range [0, {self._total})"
            )
        for name in reversed(self._names):
            start = self._offsets[name]
            if flat_index >= start:
                return name, flat_index - start
        raise QuantizationError("unreachable: empty layout")  # pragma: no cover

    # ------------------------------------------------------------------
    # Integer weight access
    # ------------------------------------------------------------------
    def quantized(self, name: str) -> np.ndarray:
        """Return the int8 tensor for one parameter (copy)."""
        return self._qweights[name].copy()

    def flat_int8(self) -> np.ndarray:
        """Concatenate all int8 weights in weight-file order."""
        return np.concatenate([self._qweights[n].reshape(-1) for n in self._names])

    def load_flat_int8(self, flat: np.ndarray) -> None:
        """Replace all integer weights from a flat int8 vector."""
        flat = np.asarray(flat, dtype=np.int8)
        if flat.size != self._total:
            raise QuantizationError(
                f"flat vector has {flat.size} entries, layout needs {self._total}"
            )
        for name in self._names:
            start = self._offsets[name]
            size = int(np.prod(self._shapes[name]))
            self._qweights[name] = flat[start : start + size].reshape(self._shapes[name]).copy()
        self.sync_to_module()

    def set_quantized(self, name: str, values: np.ndarray) -> None:
        """Overwrite one parameter's integer weights."""
        values = np.asarray(values, dtype=np.int8)
        if values.shape != self._shapes[name]:
            raise QuantizationError(
                f"shape mismatch for {name!r}: {values.shape} vs {self._shapes[name]}"
            )
        self._qweights[name] = values.copy()
        self.sync_to_module()

    def apply_bit_flip(self, flat_index: int, bit_index: int) -> None:
        """Flip one bit of one weight byte, as Rowhammer would in DRAM."""
        name, local = self.locate(flat_index)
        q = self._qweights[name].reshape(-1)
        q[local] = flip_bit(q[local : local + 1], bit_index)[0]
        self.sync_to_module()

    # ------------------------------------------------------------------
    # Float <-> int synchronization
    # ------------------------------------------------------------------
    def sync_to_module(self) -> None:
        """Write dequantized weights into the float module's parameters."""
        params = dict(self.module.named_parameters())
        for name in self._names:
            params[name].data = dequantize(self._qweights[name], self._qparams[name])

    def requantize_from_module(self, names: Optional[List[str]] = None) -> None:
        """Pull float parameters back into the integer domain.

        Uses the *original* per-tensor scales (the deployed file's scales are
        fixed at deployment time), clipping to the representable range.  This
        is the projection CFT performs after each fine-tuning step.
        """
        params = dict(self.module.named_parameters())
        for name in names if names is not None else self._names:
            qp = self._qparams[name]
            q = np.clip(np.round(params[name].data / qp.scale), qp.qmin, qp.qmax)
            self._qweights[name] = q.astype(np.int8)

    def clone(self) -> "QuantizedModel":
        """Deep-copy the integer state onto a snapshot sharing the module.

        The clone records the same module reference but independent integer
        weights; call :meth:`sync_to_module` on whichever copy should drive
        inference.
        """
        import copy

        twin = object.__new__(QuantizedModel)
        twin.module = self.module
        twin.num_bits = self.num_bits
        twin._names = list(self._names)
        twin._shapes = dict(self._shapes)
        twin._offsets = dict(self._offsets)
        twin._qparams = dict(self._qparams)
        twin._qweights = {k: v.copy() for k, v in self._qweights.items()}
        twin._total = self._total
        return twin

    def nflip_against(self, other: "QuantizedModel") -> int:
        """Hamming distance in bits between two quantized states (N_flip)."""
        return hamming_distance(self.flat_int8(), other.flat_int8())
