"""Quantized model wrapper: the deployed artifact the attack targets.

A :class:`QuantizedModel` snapshots a float model's parameters into int8
(per-tensor symmetric scales, Section IV-C), defines the canonical flat
weight-file layout (parameters concatenated in ``named_parameters`` order,
one byte per weight), and keeps the float model's parameters in sync with
the integer weights so inference always reflects the deployed bytes.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import QuantizationError
from repro.nn.module import Module
from repro.quant.bits import flip_bit, hamming_distance
from repro.quant.quantizer import QuantizationParams, dequantize, quantize


class QuantizedModel:
    """An int8-quantized view over a float model.

    Parameters
    ----------
    module:
        The float model whose parameters are quantized.  The module is
        mutated in place whenever :meth:`sync_to_module` runs (which all
        integer-mutating methods call automatically).
    num_bits:
        Quantization width; the paper uses 8 everywhere.
    """

    def __init__(self, module: Module, num_bits: int = 8) -> None:
        if num_bits != 8:
            raise QuantizationError(
                f"the weight-file layout assumes 8-bit weights, got {num_bits}"
            )
        self.module = module
        self.num_bits = num_bits
        self._names: List[str] = []
        self._shapes: Dict[str, Tuple[int, ...]] = {}
        self._offsets: Dict[str, int] = {}
        self._qparams: Dict[str, QuantizationParams] = {}
        self._qweights: Dict[str, np.ndarray] = {}
        # Names whose integer weights changed since the last sync, and the
        # parameter version recorded at that sync: together they let
        # sync_to_module skip parameters whose dequantized value the module
        # already holds, so a single committed flip dirties a single layer
        # (the evaluation engine's prefix cache depends on this sparsity).
        self._dirty: Set[str] = set()
        self._synced_versions: Dict[str, int] = {}

        offset = 0
        for name, param in module.named_parameters():
            q, params = quantize(param.data, num_bits=num_bits)
            self._names.append(name)
            self._shapes[name] = param.data.shape
            self._offsets[name] = offset
            self._qparams[name] = params
            self._qweights[name] = q
            self._dirty.add(name)
            offset += param.size
        self._total = offset
        # Cumulative start offsets in layout order, for O(log L) locate().
        self._starts: List[int] = [self._offsets[name] for name in self._names]
        self.sync_to_module()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def parameter_names(self) -> List[str]:
        return list(self._names)

    @property
    def total_params(self) -> int:
        """Number of weights == number of bytes in the weight file."""
        return self._total

    @property
    def total_bits(self) -> int:
        return self._total * 8

    def offset_of(self, name: str) -> int:
        return self._offsets[name]

    def scale_of(self, name: str) -> float:
        return self._qparams[name].scale

    def qparams_of(self, name: str) -> QuantizationParams:
        return self._qparams[name]

    def locate(self, flat_index: int) -> Tuple[str, int]:
        """Map a flat weight-file byte index to (parameter name, local index).

        Binary-searches the precomputed cumulative offsets, so the per-flip
        cost is O(log L) in the number of layers rather than a linear scan
        (this runs for every committed flip event).
        """
        if not 0 <= flat_index < self._total:
            raise QuantizationError(
                f"flat index {flat_index} out of range [0, {self._total})"
            )
        position = bisect.bisect_right(self._starts, flat_index) - 1
        name = self._names[position]
        return name, flat_index - self._starts[position]

    # ------------------------------------------------------------------
    # Integer weight access
    # ------------------------------------------------------------------
    def quantized(self, name: str) -> np.ndarray:
        """Return the int8 tensor for one parameter (copy)."""
        return self._qweights[name].copy()

    def flat_int8(self) -> np.ndarray:
        """Concatenate all int8 weights in weight-file order."""
        return np.concatenate([self._qweights[n].reshape(-1) for n in self._names])

    def load_flat_int8(self, flat: np.ndarray) -> None:
        """Replace all integer weights from a flat int8 vector.

        Layers whose bytes are unchanged are left untouched (and not
        re-synced), so a flip-sparse load dirties only the affected layers.
        """
        flat = np.asarray(flat, dtype=np.int8)
        if flat.size != self._total:
            raise QuantizationError(
                f"flat vector has {flat.size} entries, layout needs {self._total}"
            )
        for name in self._names:
            start = self._offsets[name]
            size = int(np.prod(self._shapes[name]))
            chunk = flat[start : start + size].reshape(self._shapes[name])
            if not np.array_equal(chunk, self._qweights[name]):
                self._qweights[name] = chunk.copy()
                self._dirty.add(name)
        self.sync_to_module()

    def set_quantized(self, name: str, values: np.ndarray) -> None:
        """Overwrite one parameter's integer weights."""
        values = np.asarray(values, dtype=np.int8)
        if values.shape != self._shapes[name]:
            raise QuantizationError(
                f"shape mismatch for {name!r}: {values.shape} vs {self._shapes[name]}"
            )
        if not np.array_equal(values, self._qweights[name]):
            self._qweights[name] = values.copy()
            self._dirty.add(name)
        self.sync_to_module()

    def apply_bit_flip(self, flat_index: int, bit_index: int) -> None:
        """Flip one bit of one weight byte, as Rowhammer would in DRAM."""
        name, local = self.locate(flat_index)
        q = self._qweights[name].reshape(-1)
        q[local] = flip_bit(q[local : local + 1], bit_index)[0]
        self._dirty.add(name)
        self.sync_to_module()

    # ------------------------------------------------------------------
    # Float <-> int synchronization
    # ------------------------------------------------------------------
    def sync_to_module(self) -> None:
        """Write dequantized weights into the float module's parameters.

        A parameter is rewritten only when its integer weights changed since
        the last sync **or** its float tensor was rebound by someone else in
        the meantime (tracked via :attr:`~repro.nn.module.Parameter.version`).
        Skipped parameters already hold exactly the bytes a rewrite would
        produce, so behavior is identical to an unconditional sync while
        leaving untouched layers' versions -- and therefore the evaluation
        engine's cached activation prefixes -- intact.
        """
        params = dict(self.module.named_parameters())
        for name in self._names:
            param = params[name]
            if name not in self._dirty and self._synced_versions.get(name) == param.version:
                continue
            param.data = dequantize(self._qweights[name], self._qparams[name])
            self._synced_versions[name] = param.version
        self._dirty.clear()

    def requantize_from_module(self, names: Optional[List[str]] = None) -> None:
        """Pull float parameters back into the integer domain.

        Uses the *original* per-tensor scales (the deployed file's scales are
        fixed at deployment time), clipping to the representable range.  This
        is the projection CFT performs after each fine-tuning step.
        """
        params = dict(self.module.named_parameters())
        for name in names if names is not None else self._names:
            qp = self._qparams[name]
            q = np.clip(np.round(params[name].data / qp.scale), qp.qmin, qp.qmax)
            q = q.astype(np.int8)
            if not np.array_equal(q, self._qweights[name]):
                self._qweights[name] = q
                self._dirty.add(name)

    def clone(self) -> "QuantizedModel":
        """Deep-copy the integer state onto a snapshot sharing the module.

        The clone records the same module reference but independent integer
        weights; call :meth:`sync_to_module` on whichever copy should drive
        inference.
        """
        import copy

        twin = object.__new__(QuantizedModel)
        twin.module = self.module
        twin.num_bits = self.num_bits
        twin._names = list(self._names)
        twin._shapes = dict(self._shapes)
        twin._offsets = dict(self._offsets)
        twin._qparams = dict(self._qparams)
        twin._qweights = {k: v.copy() for k, v in self._qweights.items()}
        twin._total = self._total
        twin._starts = list(self._starts)
        # The twin has never synced: its first sync_to_module must write
        # every parameter, exactly as a freshly built QuantizedModel would.
        twin._dirty = set(twin._names)
        twin._synced_versions = {}
        return twin

    def nflip_against(self, other: "QuantizedModel") -> int:
        """Hamming distance in bits between two quantized states (N_flip)."""
        return hamming_distance(self.flat_int8(), other.flat_int8())
