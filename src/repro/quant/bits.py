"""Bit-level operations on two's-complement quantized weights.

These implement the paper's bit machinery: Hamming distances for N_flip
(Section V-B), single-bit flips for the Rowhammer injection, and the
*Bit Reduction* operator ``Floor((theta + dtheta) XOR theta) XOR theta``
(Algorithm 1, Step 4), which keeps only the most significant changed bit so
each modified weight differs from the original in exactly one bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import QuantizationError

IntArray = np.ndarray


def int8_to_uint8(values: IntArray) -> IntArray:
    """Reinterpret signed int8 values as their two's-complement bytes."""
    return np.asarray(values, dtype=np.int8).view(np.uint8)


def uint8_to_int8(values: IntArray) -> IntArray:
    """Reinterpret raw bytes as signed int8 values."""
    return np.asarray(values, dtype=np.uint8).view(np.int8)


def bits_of(values: IntArray) -> IntArray:
    """Expand int8 values to a (..., 8) array of bits, MSB first."""
    raw = int8_to_uint8(values)
    return np.unpackbits(raw[..., None], axis=-1)


def flip_bit(values: IntArray, bit_index: Union[int, IntArray]) -> IntArray:
    """Flip one bit per value; ``bit_index`` 0 = LSB, 7 = MSB (sign bit)."""
    bit_index = np.asarray(bit_index)
    if np.any((bit_index < 0) | (bit_index > 7)):
        raise QuantizationError(f"bit_index out of range [0, 7]: {bit_index}")
    raw = int8_to_uint8(values)
    mask = (np.uint8(1) << bit_index.astype(np.uint8)).astype(np.uint8)
    return uint8_to_int8(raw ^ mask)


def msb_only(values: IntArray) -> IntArray:
    """Keep only the most significant set bit of each byte (``Floor`` in the paper).

    ``Floor(0b0111) == 0b0100``; zero maps to zero.
    """
    smear = int8_to_uint8(values).astype(np.uint16)
    # Smear the highest set bit downward, then isolate it.
    smear |= smear >> 1
    smear |= smear >> 2
    smear |= smear >> 4
    out = smear - (smear >> 1)
    return uint8_to_int8(out.astype(np.uint8))


def bit_reduce(original: IntArray, modified: IntArray) -> IntArray:
    """Bit Reduction (Algorithm 1, Step 4).

    Returns ``original XOR Floor(original XOR modified)``: the value closest
    to ``modified`` that differs from ``original`` in at most one bit, keeping
    the change's direction and as much of its magnitude as possible.
    """
    orig_raw = int8_to_uint8(original)
    mod_raw = int8_to_uint8(modified)
    diff = orig_raw ^ mod_raw
    keep = int8_to_uint8(msb_only(uint8_to_int8(diff)))
    return uint8_to_int8(orig_raw ^ keep)


def bit_reduce_avoiding(
    original: IntArray, modified: IntArray, forbidden_bits: "tuple" = ()
) -> IntArray:
    """Bit reduction that never flips the listed bit positions.

    Used to bypass MSB-checksum defenses like RADAR (Section VI-B): before
    isolating the most significant changed bit, the forbidden positions are
    cleared from the change mask, so the kept flip is the most significant
    *allowed* changed bit (a weight whose only change was forbidden reverts
    to its original value).
    """
    orig_raw = int8_to_uint8(original)
    mod_raw = int8_to_uint8(modified)
    diff = orig_raw ^ mod_raw
    mask = 0xFF
    for bit in forbidden_bits:
        if not 0 <= bit <= 7:
            raise QuantizationError(f"forbidden bit {bit} out of range [0, 7]")
        mask &= ~(1 << bit)
    diff = diff & np.uint8(mask)
    keep = int8_to_uint8(msb_only(uint8_to_int8(diff)))
    return uint8_to_int8(orig_raw ^ keep)


def hamming_distance(a: IntArray, b: IntArray) -> int:
    """Total number of differing bits between two int8 arrays (N_flip)."""
    a = np.asarray(a, dtype=np.int8)
    b = np.asarray(b, dtype=np.int8)
    if a.shape != b.shape:
        raise QuantizationError(f"shape mismatch: {a.shape} vs {b.shape}")
    diff = int8_to_uint8(a) ^ int8_to_uint8(b)
    return int(np.unpackbits(diff.reshape(-1)).sum())


def changed_bit_positions(original: IntArray, modified: IntArray) -> np.ndarray:
    """Return (flat_index, bit_index, direction) rows for every changed bit.

    ``bit_index`` counts from 0 = LSB to 7 = MSB.  ``direction`` is +1 for a
    0->1 flip (the bit is set in ``modified``) and -1 for 1->0.
    """
    orig = int8_to_uint8(np.asarray(original)).reshape(-1)
    mod = int8_to_uint8(np.asarray(modified)).reshape(-1)
    diff = orig ^ mod
    rows = []
    nonzero = np.nonzero(diff)[0]
    for idx in nonzero:
        d = int(diff[idx])
        for bit in range(8):
            if d & (1 << bit):
                direction = 1 if int(mod[idx]) & (1 << bit) else -1
                rows.append((int(idx), bit, direction))
    return np.array(rows, dtype=np.int64).reshape(-1, 3)
