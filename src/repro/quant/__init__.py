"""TensorRT-style int8 quantization and bit-level weight manipulation."""

from repro.quant.quantizer import QuantizationParams, dequantize, quantize
from repro.quant.bits import (
    bit_reduce,
    bits_of,
    flip_bit,
    hamming_distance,
    int8_to_uint8,
    msb_only,
    uint8_to_int8,
)
from repro.quant.qmodel import QuantizedModel
from repro.quant.weightfile import PAGE_SIZE_BYTES, WeightFile

__all__ = [
    "QuantizationParams",
    "quantize",
    "dequantize",
    "bits_of",
    "flip_bit",
    "msb_only",
    "bit_reduce",
    "hamming_distance",
    "int8_to_uint8",
    "uint8_to_int8",
    "QuantizedModel",
    "WeightFile",
    "PAGE_SIZE_BYTES",
]
