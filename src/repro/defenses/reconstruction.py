"""Weight Reconstruction (Li et al., DAC 2020) -- a recovery defense.

At deployment time the defense records per-output-group statistics of every
weight tensor; after a suspected fault it clips each weight back into its
group's plausible range, redistributing a bit flip's large deviation across
the group.  Section VI-C evaluates two attacker postures:

- *unaware*: the attack optimizes against the undefended model and the
  reconstruction afterwards clips its flips, collapsing ASR;
- *aware*: the attack applies the reconstruction inside its own loop (this
  module's ``constrain_attack`` hook), so it only keeps flips that survive
  clipping -- and bypasses the defense.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro.errors import DefenseError
from repro.quant.qmodel import QuantizedModel


@dataclasses.dataclass(frozen=True)
class GroupStats:
    """Clipping interval of one weight group."""

    low: np.ndarray
    high: np.ndarray


class WeightReconstructionDefense:
    """Per-group clipping reconstruction over quantized weights."""

    def __init__(self, qmodel: QuantizedModel, num_sigmas: float = 3.0) -> None:
        """Fit group statistics on the clean deployed weights.

        Groups are per output row/filter (axis 0) of each tensor; the
        plausible interval is mean +/- ``num_sigmas`` standard deviations,
        in the integer weight domain.
        """
        if num_sigmas <= 0:
            raise DefenseError(f"num_sigmas must be positive, got {num_sigmas}")
        self.num_sigmas = num_sigmas
        self._stats: Dict[str, GroupStats] = {}
        for name in qmodel.parameter_names:
            weights = qmodel.quantized(name).astype(np.float64)
            grouped = weights.reshape(weights.shape[0], -1) if weights.ndim > 1 else weights[None, :]
            mean = grouped.mean(axis=1)
            std = grouped.std(axis=1)
            self._stats[name] = GroupStats(
                low=mean - num_sigmas * std, high=mean + num_sigmas * std
            )

    def reconstruct(self, qmodel: QuantizedModel) -> int:
        """Clip out-of-range weights in place; returns how many were clipped."""
        clipped = 0
        for name in qmodel.parameter_names:
            weights = qmodel.quantized(name).astype(np.float64)
            original_shape = weights.shape
            grouped = weights.reshape(weights.shape[0], -1) if weights.ndim > 1 else weights[None, :]
            stats = self._stats[name]
            low = stats.low[:, None]
            high = stats.high[:, None]
            out_of_range = (grouped < low) | (grouped > high)
            if out_of_range.any():
                clipped += int(out_of_range.sum())
                grouped = np.clip(grouped, low, high)
                qmodel.set_quantized(
                    name, np.round(grouped).reshape(original_shape).astype(np.int8)
                )
        return clipped

    def survives(self, qmodel: QuantizedModel, name: str) -> np.ndarray:
        """Boolean map of which current weights are inside their group range."""
        weights = qmodel.quantized(name).astype(np.float64)
        grouped = weights.reshape(weights.shape[0], -1) if weights.ndim > 1 else weights[None, :]
        stats = self._stats[name]
        inside = (grouped >= stats.low[:, None]) & (grouped <= stats.high[:, None])
        return inside.reshape(weights.shape)

    def constrain_attack(self, qmodel: QuantizedModel) -> int:
        """Defense-aware attack hook: apply reconstruction mid-optimization.

        Calling this after each attack projection makes the optimizer route
        around the clipping (only in-range flips persist), which is exactly
        the paper's "attacker is aware of the defense" scenario.
        """
        return self.reconstruct(qmodel)
