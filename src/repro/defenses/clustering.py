"""Piecewise Weight Clustering (He et al. 2020) -- a relaxation of BNNs.

A penalty term pulls each layer's positive weights toward their positive
mean and negative weights toward their negative mean, so the distribution
forms two tight clusters.  Bit flips then produce out-of-cluster outliers
whose effect is both more visible and less useful, strengthening the
TA-vs-ASR trade-off the attacker faces (Section VI-A).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autodiff import cross_entropy
from repro.autodiff.tensor import Function, Tensor
from repro.data.dataset import ArrayDataset, DataLoader
from repro.nn.module import Module
from repro.optim import SGD, CosineSchedule


class _PWCTerm(Function):
    """Sum of squared distances of weights to their sign-cluster mean."""

    def forward(self, w: np.ndarray) -> np.ndarray:
        flat = w.reshape(-1)
        pos = flat >= 0
        mean_pos = flat[pos].mean() if pos.any() else 0.0
        mean_neg = flat[~pos].mean() if (~pos).any() else 0.0
        centers = np.where(pos, mean_pos, mean_neg)
        residual = flat - centers
        self.save_for_backward(residual.reshape(w.shape))
        return np.asarray((residual**2).sum(), dtype=w.dtype)

    def backward(self, grad: np.ndarray):
        (residual,) = self.saved
        # Treat the cluster means as constants (standard PWC practice).
        return (2.0 * residual * np.asarray(grad),)


def pwc_penalty(model: Module, weight_names: Optional[List[str]] = None) -> Tensor:
    """Total PWC penalty over the model's weight tensors.

    Skips 1-D parameters (biases, batch-norm affine) whose distribution is
    not expected to be bimodal.
    """
    total: Optional[Tensor] = None
    for name, param in model.named_parameters():
        if weight_names is not None and name not in weight_names:
            continue
        if param.data.ndim < 2:
            continue
        term = _PWCTerm.apply(param)
        total = term if total is None else total + term
    if total is None:
        raise ValueError("model has no multi-dimensional weight tensors")
    return total


def train_with_pwc(
    model: Module,
    train_data: ArrayDataset,
    epochs: int = 10,
    penalty_lambda: float = 1e-3,
    learning_rate: float = 0.1,
    batch_size: int = 64,
    seed: int = 0,
) -> List[float]:
    """Train a model with the PWC penalty added to the loss (Section VI-A)."""
    optimizer = SGD(model.parameters(), lr=learning_rate, momentum=0.9, weight_decay=5e-4)
    schedule = CosineSchedule(optimizer, total_epochs=epochs)
    loader = DataLoader(train_data, batch_size=batch_size, shuffle=True, rng=seed)
    history: List[float] = []
    for _ in range(epochs):
        model.train()
        total = 0.0
        for images, labels in loader:
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(images)), labels) + pwc_penalty(model) * penalty_lambda
            loss.backward()
            optimizer.step()
            total += loss.item()
        schedule.step()
        history.append(total / max(1, len(loader)))
    model.eval()
    return history


def cluster_tightness(model: Module) -> float:
    """Mean within-cluster standard deviation across weight tensors.

    Lower is tighter; used in tests to verify the penalty actually clusters.
    """
    spreads = []
    for _, param in model.named_parameters():
        if param.data.ndim < 2:
            continue
        flat = param.data.reshape(-1)
        pos = flat >= 0
        for side in (flat[pos], flat[~pos]):
            if side.size > 1:
                spreads.append(float(side.std()))
    return float(np.mean(spreads)) if spreads else 0.0
