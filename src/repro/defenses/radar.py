"""RADAR (Li et al. 2021) -- checksum-based runtime detection.

RADAR groups the weights and stores a checksum over each group's most
significant bits, validated at every inference.  Full-bit protection costs
up to 40 % inference overhead (Section VI-B); MSB-only protection is cheap
but can be bypassed by an attacker who constrains the optimization to never
touch the protected bit positions (the ``protected_bits`` the detector
covers), which our attack supports via ``AttackConfig``-level constraints.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.quant.bits import int8_to_uint8
from repro.quant.qmodel import QuantizedModel

# Paper estimate: full-size bit protection costs 40.11 % time on ResNet-20.
FULL_PROTECTION_TIME_OVERHEAD_PERCENT = 40.11


@dataclasses.dataclass
class RadarReport:
    """Detection outcome over all groups."""

    flagged_groups: List[int]
    total_groups: int

    @property
    def detected(self) -> bool:
        return bool(self.flagged_groups)


class RadarDetector:
    """Per-group checksums over selected bit positions of the weight file."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        group_size: int = 512,
        protected_bits: Sequence[int] = (7,),
    ) -> None:
        """Fit checksums on the clean weights.

        ``protected_bits`` lists the bit indices (7 = MSB) covered by the
        checksum; the default MSB-only setting is the low-overhead deployment
        the paper analyzes.
        """
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size
        self.protected_bits = tuple(sorted(set(protected_bits)))
        if any(not 0 <= b <= 7 for b in self.protected_bits):
            raise ValueError(f"bit indices must be in [0, 7], got {protected_bits}")
        self._checksums = self._compute(qmodel)

    def _mask(self) -> int:
        mask = 0
        for bit in self.protected_bits:
            mask |= 1 << bit
        return mask

    def _compute(self, qmodel: QuantizedModel) -> np.ndarray:
        raw = int8_to_uint8(qmodel.flat_int8())
        masked = raw & np.uint8(self._mask())
        groups = np.array_split(masked, max(1, (raw.size + self.group_size - 1) // self.group_size))
        # Simple additive checksum per group (sufficient to detect any
        # single-bit change within the protected positions).
        return np.array([int(g.astype(np.uint32).sum()) for g in groups], dtype=np.uint64)

    def check(self, qmodel: QuantizedModel) -> RadarReport:
        """Validate the current weights against the stored checksums."""
        current = self._compute(qmodel)
        flagged = np.nonzero(current != self._checksums)[0].tolist()
        return RadarReport(flagged_groups=flagged, total_groups=len(self._checksums))

    @property
    def time_overhead_percent(self) -> float:
        """Inference-time overhead if every bit were protected (paper est.)."""
        return FULL_PROTECTION_TIME_OVERHEAD_PERCENT * len(self.protected_bits) / 8.0
