"""SentiNet (Chou et al. 2020) -- GradCAM-based adversarial-input filtering.

SentiNet extracts the salient region of an input (via GradCAM), pastes it
onto a pool of benign images and measures how often the pasted region hijacks
their predictions.  Universal triggers hijack almost everything; benign
salient regions rarely transfer.  The paper's observation (Fig. 8): after a
backdoor injection the model's focus reliably shifts onto the trigger, so
SentiNet *can* flag triggered inputs, but salient benign objects also
transfer occasionally, producing false positives even on clean models.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.gradcam import gradcam_heatmap
from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.nn.module import Module


@dataclasses.dataclass
class SentiNetVerdict:
    """Result of analyzing one input."""

    fooled_fraction: float
    predicted_class: int
    flagged: bool


class SentiNetDetector:
    """Filters inputs whose salient region hijacks benign images."""

    def __init__(
        self,
        model: Module,
        benign_pool: np.ndarray,
        saliency_quantile: float = 0.85,
        threshold: float = 0.5,
    ) -> None:
        """``benign_pool`` is a (N, C, H, W) batch of held-out clean images."""
        if not 0.0 < saliency_quantile < 1.0:
            raise ValueError(f"saliency_quantile must be in (0, 1), got {saliency_quantile}")
        self.model = model
        self.benign_pool = np.asarray(benign_pool, dtype=np.float32)
        self.saliency_quantile = saliency_quantile
        self.threshold = threshold
        # The detector re-runs the frozen model on every analyzed input;
        # caching the unchanged layer prefixes is free speedup (the GradCAM
        # pass needs gradients, so it stays on the plain forward).
        from repro.engine import EvalEngine, engine_enabled

        self._engine = EvalEngine(model) if engine_enabled() else None

    def _logits(self, batch: np.ndarray) -> np.ndarray:
        if self._engine is not None:
            return self._engine.forward(batch)
        with no_grad():
            return self.model(Tensor(batch)).data

    def _salient_mask(self, image: np.ndarray, class_index: int) -> np.ndarray:
        """Image-resolution boolean mask of the most salient region."""
        heatmap = gradcam_heatmap(self.model, image, class_index)
        cutoff = np.quantile(heatmap, self.saliency_quantile)
        coarse = heatmap >= max(cutoff, 1e-9)
        # Upsample the feature-resolution mask to image resolution.
        h, w = image.shape[1:]
        h_f, w_f = coarse.shape
        rows = np.floor(np.arange(h) * h_f / h).astype(int)
        cols = np.floor(np.arange(w) * w_f / w).astype(int)
        return coarse[np.ix_(rows, cols)]

    def analyze(self, image: np.ndarray) -> SentiNetVerdict:
        """Score one input by pasting its salient region onto the pool."""
        image = np.asarray(image, dtype=np.float32)
        self.model.eval()
        predicted = int(self._logits(image[None]).argmax())
        mask = self._salient_mask(image, predicted)

        pasted = self.benign_pool.copy()
        pasted[:, :, mask] = image[:, mask]
        hijacked = self._logits(pasted).argmax(axis=1)
        fooled = float((hijacked == predicted).mean())
        return SentiNetVerdict(
            fooled_fraction=fooled,
            predicted_class=predicted,
            flagged=fooled >= self.threshold,
        )

    def false_positive_rate(self, clean_images: np.ndarray) -> float:
        """Fraction of clean inputs the detector flags (the paper's caveat)."""
        flags = [self.analyze(img).flagged for img in clean_images]
        return float(np.mean(flags)) if flags else 0.0
