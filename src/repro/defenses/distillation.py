"""Checker-model distillation for DeepDyve.

DeepDyve deploys a much smaller checker model distilled from the original:
it must agree with the deployed model on (nearly) all clean inputs while
costing a fraction of the compute.  This module trains such a checker by
matching the deployed model's soft predictions (temperature-scaled
distillation), then wraps both in a :class:`~repro.defenses.deepdyve.DeepDyveGuard`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autodiff import log_softmax, no_grad
from repro.autodiff.tensor import Tensor
from repro.data.dataset import ArrayDataset, DataLoader
from repro.defenses.deepdyve import DeepDyveGuard
from repro.nn.module import Module
from repro.optim import Adam
from repro.utils.rng import SeedLike


def soft_cross_entropy(student_logits: Tensor, teacher_probs: np.ndarray) -> Tensor:
    """Mean cross-entropy against soft teacher targets."""
    log_probs = log_softmax(student_logits)
    targets = Tensor(np.asarray(teacher_probs, dtype=np.float32))
    return -(targets * log_probs).sum(axis=1).mean()


def distill_checker(
    teacher: Module,
    student: Module,
    data: ArrayDataset,
    epochs: int = 5,
    temperature: float = 2.0,
    learning_rate: float = 1e-3,
    batch_size: int = 32,
    rng: SeedLike = 0,
) -> List[float]:
    """Distill ``teacher``'s behaviour into the (smaller) ``student``.

    Returns per-epoch distillation losses.  The teacher is only queried
    (never updated); the student trains on the teacher's temperature-scaled
    soft predictions over ``data``.
    """
    teacher.eval()
    with no_grad():
        logits = []
        for start in range(0, len(data), 256):
            logits.append(teacher(Tensor(data.images[start : start + 256])).numpy())
        teacher_logits = np.concatenate(logits) / temperature
    shifted = teacher_logits - teacher_logits.max(axis=1, keepdims=True)
    teacher_probs = np.exp(shifted)
    teacher_probs /= teacher_probs.sum(axis=1, keepdims=True)

    optimizer = Adam(student.parameters(), lr=learning_rate)
    # Batches carry sample indices so each image pairs with its soft target.
    index_dataset = ArrayDataset(data.images, np.arange(len(data)))
    loader = DataLoader(index_dataset, batch_size=batch_size, shuffle=True, rng=rng)

    history: List[float] = []
    for _ in range(epochs):
        student.train()
        total = 0.0
        for images, indices in loader:
            optimizer.zero_grad()
            loss = soft_cross_entropy(student(Tensor(images)), teacher_probs[indices])
            loss.backward()
            optimizer.step()
            total += loss.item()
        history.append(total / max(1, len(loader)))
    student.eval()
    return history


def agreement_rate(a: Module, b: Module, data: ArrayDataset, batch_size: int = 256) -> float:
    """Fraction of inputs on which two models predict the same class."""
    a.eval()
    b.eval()
    agree = 0
    with no_grad():
        for start in range(0, len(data), batch_size):
            images = Tensor(data.images[start : start + batch_size])
            agree += int(
                (a(images).numpy().argmax(1) == b(images).numpy().argmax(1)).sum()
            )
    return agree / len(data) if len(data) else 0.0


def build_deepdyve_guard(
    deployed: Module,
    checker: Module,
    calibration_data: ArrayDataset,
    epochs: int = 5,
    rng: SeedLike = 0,
) -> DeepDyveGuard:
    """Distill ``checker`` from ``deployed`` and wrap both in a guard."""
    distill_checker(deployed, checker, calibration_data, epochs=epochs, rng=rng)
    return DeepDyveGuard(deployed=deployed, checker=checker)
