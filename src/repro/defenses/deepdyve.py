"""DeepDyve (Li et al. 2020) -- dynamic verification with a checker model.

A small checker model shadows the deployed model; disagreement triggers a
re-run of the original.  The scheme assumes faults are *transient*, but
Rowhammer flips persist in the page cache, so the re-run consults the same
corrupted weights and the backdoor survives (Section VI-B): DeepDyve raises
alarms yet still emits the attacker's target class.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.autodiff import no_grad
from repro.autodiff.tensor import Tensor
from repro.nn.module import Module


@dataclasses.dataclass
class DeepDyveStats:
    """Bookkeeping of one guarded inference batch."""

    alarms: int
    reruns: int
    total: int

    @property
    def alarm_rate(self) -> float:
        return self.alarms / self.total if self.total else 0.0


class DeepDyveGuard:
    """Wraps a deployed model with a checker for dynamic verification."""

    def __init__(self, deployed: Module, checker: Module) -> None:
        self.deployed = deployed
        self.checker = checker

    def predict(self, images: np.ndarray) -> Tuple[np.ndarray, DeepDyveStats]:
        """Guarded batch prediction.

        For each sample: if checker and deployed agree, accept immediately;
        otherwise raise an alarm and re-run the deployed model, accepting
        the second result (the protocol from the paper).  Because the fault
        is persistent, the re-run reproduces the corrupted prediction.
        """
        self.deployed.eval()
        self.checker.eval()
        with no_grad():
            main = self.deployed(Tensor(images)).numpy().argmax(axis=1)
            check = self.checker(Tensor(images)).numpy().argmax(axis=1)
            disagree = main != check
            reruns = int(disagree.sum())
            if reruns:
                # Re-run the deployed model on the disputed samples.  The
                # weights in memory are unchanged, so the result is too.
                rerun = self.deployed(Tensor(images[disagree])).numpy().argmax(axis=1)
                main = main.copy()
                main[disagree] = rerun
        return main, DeepDyveStats(alarms=reruns, reruns=reruns, total=len(images))
