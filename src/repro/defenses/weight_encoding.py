"""Concurrent weight encoding detection (Liu et al. 2020).

The defense adds an encoding pass ``y_j = phi(sum_i B_i K_ij)`` over the
weights of the most fault-sensitive layers and checks the decoded signature
at inference time.  Its O(N^2) time and O(N) storage costs force deployments
to protect only the top-most sensitive layers -- but this attack spreads its
flips uniformly over *all* layers (constraint C2), so partial coverage
misses most of them (Section VI-B).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.quant.qmodel import QuantizedModel
from repro.utils.rng import SeedLike, new_rng


@dataclasses.dataclass
class EncodingOverhead:
    """Estimated deployment costs of encoding one model (paper's estimates)."""

    execution_seconds: float
    storage_megabytes: float
    storage_overhead_percent: float


def encoding_overhead_estimate(num_parameters: int) -> EncodingOverhead:
    """Scale the paper's ResNet-34 overhead numbers to a model size.

    Section VI-B estimates 834.27 s execution (O(N^2)) and 374.86 MB /
    446 % storage (O(N)) for ResNet-34's 21,779,648 parameters.
    """
    reference_params = 21_779_648
    reference_seconds = 834.27
    reference_storage_mb = 374.86
    ratio = num_parameters / reference_params
    return EncodingOverhead(
        execution_seconds=reference_seconds * ratio**2,
        storage_megabytes=reference_storage_mb * ratio,
        storage_overhead_percent=446.0,
    )


class WeightEncodingDetector:
    """Random-projection signatures over the protected layers' weights."""

    def __init__(
        self,
        qmodel: QuantizedModel,
        protected_layers: Optional[Sequence[str]] = None,
        signature_dim: int = 16,
        rng: SeedLike = 0,
    ) -> None:
        """Fit signatures on the current (clean) weights.

        ``protected_layers`` defaults to the single largest parameter tensor,
        mirroring the "top-most sensitive layers only" deployment the
        overhead forces.
        """
        rng = new_rng(rng)
        if protected_layers is None:
            largest = max(
                qmodel.parameter_names, key=lambda n: qmodel.quantized(n).size
            )
            protected_layers = [largest]
        self.protected_layers = list(protected_layers)
        self.signature_dim = signature_dim
        self._projections: Dict[str, np.ndarray] = {}
        self._signatures: Dict[str, np.ndarray] = {}
        for name in self.protected_layers:
            weights = qmodel.quantized(name).reshape(-1).astype(np.float64)
            projection = rng.normal(size=(weights.size, signature_dim))
            self._projections[name] = projection
            self._signatures[name] = weights @ projection

    def detect(self, qmodel: QuantizedModel, tolerance: float = 1e-6) -> List[str]:
        """Return the protected layers whose signature no longer matches."""
        flagged: List[str] = []
        for name in self.protected_layers:
            weights = qmodel.quantized(name).reshape(-1).astype(np.float64)
            signature = weights @ self._projections[name]
            if not np.allclose(signature, self._signatures[name], atol=tolerance):
                flagged.append(name)
        return flagged

    def coverage(self, qmodel: QuantizedModel) -> float:
        """Fraction of the model's weights the detector actually protects."""
        protected = sum(qmodel.quantized(n).size for n in self.protected_layers)
        return protected / qmodel.total_params
