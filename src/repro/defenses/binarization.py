"""Binarization-aware training (He et al. 2020) -- a prevention defense.

Binarized layers compute with ``sign(w) * mean|w|`` so every weight is one
bit in memory.  Against this attack the defense works by *shrinking the
weight file*: a binarized ResNet-32 occupies only ~65 pages, and since
constraint C2 caps N_flip at the page count, the attacker's budget collapses
(Section VI-A).  The cost is reduced clean accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff.tensor import Function, Tensor
from repro.autodiff.conv import conv2d
from repro.nn import Conv2d, Linear, Module
from repro.quant.weightfile import PAGE_SIZE_BYTES


class _BinarizeSTE(Function):
    """Per-tensor weight binarization with a straight-through estimator."""

    def forward(self, w: np.ndarray) -> np.ndarray:
        scale = np.mean(np.abs(w))
        self.save_for_backward(w)
        return (np.where(w >= 0, 1.0, -1.0) * scale).astype(w.dtype)

    def backward(self, grad: np.ndarray):
        (w,) = self.saved
        # Straight-through: pass gradients where |w| <= 1, as in BNN training.
        return (grad * (np.abs(w) <= 1.0),)


def binarize_weights(weight: Tensor) -> Tensor:
    """Differentiable binarization of a weight tensor (STE backward)."""
    return _BinarizeSTE.apply(weight)


class BinarizedConv2d(Conv2d):
    """Conv2d whose effective weights are binarized at every forward pass."""

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(
            x, binarize_weights(self.weight), self.bias, stride=self.stride, padding=self.padding
        )


class BinarizedLinear(Linear):
    """Linear layer with binarized effective weights."""

    def forward(self, x: Tensor) -> Tensor:
        out = x @ binarize_weights(self.weight).transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


def binarize_network(model: Module) -> int:
    """Swap every Conv2d/Linear in ``model`` for its binarized variant.

    Mutates the module tree in place (parameters are preserved) and returns
    the number of layers converted.
    """
    converted = 0
    for _, module in model.named_modules():
        for child_name, child in list(module._modules.items()):
            replacement: Optional[Module] = None
            if type(child) is Conv2d:
                replacement = BinarizedConv2d.__new__(BinarizedConv2d)
            elif type(child) is Linear:
                replacement = BinarizedLinear.__new__(BinarizedLinear)
            if replacement is None:
                continue
            replacement.__dict__.update(child.__dict__)
            replacement._parameters = child._parameters
            replacement._modules = child._modules
            replacement._buffers = child._buffers
            setattr(module, child_name, replacement)
            converted += 1
    return converted


def binarized_page_count(model: Module) -> int:
    """Memory pages a deployed binarized model occupies (1 bit per weight).

    This is the defense's security argument: N_flip cannot exceed the page
    count, and binarization divides the page count by 8.
    """
    bits = model.num_parameters()  # one bit per binarized weight
    page_bits = PAGE_SIZE_BYTES * 8
    return (bits + page_bits - 1) // page_bits
