"""Countermeasures evaluated in Section VI of the paper."""

from repro.defenses.binarization import BinarizedConv2d, BinarizedLinear, binarize_network
from repro.defenses.clustering import pwc_penalty, train_with_pwc
from repro.defenses.deepdyve import DeepDyveGuard
from repro.defenses.weight_encoding import WeightEncodingDetector, encoding_overhead_estimate
from repro.defenses.radar import RadarDetector
from repro.defenses.sentinet import SentiNetDetector
from repro.defenses.reconstruction import WeightReconstructionDefense

__all__ = [
    "BinarizedConv2d",
    "BinarizedLinear",
    "binarize_network",
    "pwc_penalty",
    "train_with_pwc",
    "DeepDyveGuard",
    "WeightEncodingDetector",
    "encoding_overhead_estimate",
    "RadarDetector",
    "SentiNetDetector",
    "WeightReconstructionDefense",
]
