"""Saving and loading attack artifacts (offline results, triggers).

The offline phase can run on a different machine than the online phase (the
paper's attacker profiles the victim's DRAM on site but optimizes on a
GPU box), so the backdoor plan must round-trip through a file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.attacks.base import OfflineAttackResult
from repro.data.trigger import TriggerPattern

PathLike = Union[str, Path]


def save_offline_result(result: OfflineAttackResult, path: PathLike) -> None:
    """Serialize an offline attack result to an ``.npz`` file."""
    np.savez(
        Path(path),
        original_weights=result.original_weights,
        backdoored_weights=result.backdoored_weights,
        trigger_mask=result.trigger.mask,
        trigger_pattern=result.trigger.pattern,
        trigger_clip=np.asarray(result.trigger.clip_range, dtype=np.float64),
        n_flip=np.asarray(result.n_flip),
        loss_history=np.asarray(result.loss_history, dtype=np.float64),
        method=np.asarray(result.method),
    )


def load_offline_result(path: PathLike) -> OfflineAttackResult:
    """Load an offline attack result saved by :func:`save_offline_result`."""
    with np.load(Path(path), allow_pickle=False) as payload:
        trigger = TriggerPattern(
            mask=payload["trigger_mask"],
            pattern=payload["trigger_pattern"],
            clip_range=tuple(payload["trigger_clip"].tolist()),
        )
        return OfflineAttackResult(
            original_weights=payload["original_weights"],
            backdoored_weights=payload["backdoored_weights"],
            trigger=trigger,
            n_flip=int(payload["n_flip"]),
            loss_history=payload["loss_history"].tolist(),
            method=str(payload["method"]),
        )
