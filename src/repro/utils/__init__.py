"""Shared utilities: seeded RNG management and serialization helpers."""

from repro.utils.rng import new_rng, spawn_rngs

__all__ = ["new_rng", "spawn_rngs"]
