"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps all
experiments reproducible end-to-end.
"""

from __future__ import annotations

import hashlib
from typing import List, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged) or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Split ``seed`` into ``count`` independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so children are
    statistically independent regardless of how many are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a stable child sequence from the generator's own stream.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(root: int, *components: object) -> int:
    """Derive a stable 32-bit child seed from ``root`` and a label path.

    Components are hashed through SHA-256 of their string form, so --
    unlike :func:`hash` -- the result is identical across processes,
    platforms and interpreter restarts.  The parallel sweep runner keys
    every task's seed this way, which is what makes sweep results
    independent of worker count and scheduling order.
    """
    entropy = [int(root) & 0xFFFF_FFFF_FFFF_FFFF]
    for component in components:
        digest = hashlib.sha256(str(component).encode("utf-8")).digest()
        entropy.append(int.from_bytes(digest[:8], "little"))
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, np.uint32)[0])
