"""Neural-network layers built on :mod:`repro.autodiff`."""

from repro.nn.module import Module, Parameter
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "Sequential",
]
