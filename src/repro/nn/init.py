"""Parameter initialization schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def kaiming_normal(shape, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """He-normal initialization for ReLU networks."""
    rng = new_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """He-uniform initialization (PyTorch's Linear/Conv default family)."""
    rng = new_rng(rng)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def uniform_bias(shape, fan_in: int, rng: SeedLike = None) -> np.ndarray:
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    rng = new_rng(rng)
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
