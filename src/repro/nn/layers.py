"""Standard layers: Linear, Conv2d, BatchNorm2d, pooling and containers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autodiff.conv import avg_pool2d, conv2d, global_avg_pool2d, max_pool2d
from repro.autodiff.norm import batch_norm2d
from repro.autodiff.ops import LinearFunction
from repro.autodiff.tensor import Tensor
from repro.nn.init import kaiming_normal, uniform_bias
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike, new_rng


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(kaiming_normal((out_features, in_features), in_features, rng))
        self.bias: Optional[Parameter] = (
            Parameter(uniform_bias((out_features,), in_features, rng)) if bias else None
        )
        self._wt_cache: Optional[tuple] = None  # (weight.version, transposed view)

    def weight_t(self) -> np.ndarray:
        """Transposed weight view, cached until the parameter is rebound.

        A *view* (not a contiguous copy) so the forward GEMM sees the same
        operand layout -- and therefore the same BLAS kernel selection and
        bytes -- as the historical ``x @ weight.transpose()`` tape path.
        Keyed on :attr:`Parameter.version`: any rebind (optimizer step, bit
        flip commit, restore) invalidates the cache, exactly like the
        engine's activation cache.
        """
        version = self.weight.version
        cache = self._wt_cache
        if cache is None or cache[0] != version:
            cache = (version, np.transpose(self.weight.data))
            self._wt_cache = cache
        return cache[1]

    def forward(self, x: Tensor) -> Tensor:
        return LinearFunction.apply(x, self.weight, self.bias, w_t=self.weight_t())


class Conv2d(Module):
    """2-D convolution layer over NCHW inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            kaiming_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias: Optional[Parameter] = (
            Parameter(uniform_bias((out_channels,), fan_in, rng)) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        out, batch_mean, batch_var = batch_norm2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            eps=self.eps,
        )
        if self.training:
            m = self.momentum
            self._set_buffer(
                "running_mean",
                ((1 - m) * self.running_mean + m * batch_mean).astype(np.float32),
            )
            self._set_buffer(
                "running_var",
                ((1 - m) * self.running_var + m * batch_var).astype(np.float32),
            )
        return out


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Identity(Module):
    """Pass-through module (used for absent shortcut projections)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order = []
        for index, module in enumerate(modules):
            name = f"m{index}"
            setattr(self, name, module)
            self._order.append(name)

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x
