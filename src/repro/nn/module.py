"""Module base class: parameter registration, traversal and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable module parameter."""

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all network modules.

    Subclasses assign :class:`Parameter`, :class:`Module` or buffer
    (plain ndarray registered via :meth:`register_buffer`) attributes; the
    base class tracks them for iteration, state saving and mode switching.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the attribute."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name -> array copy of parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: np.array(buf, copy=True) for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for name, value in state.items():
            if name in params:
                target = params[name]
                value = np.asarray(value, dtype=target.data.dtype)
                if value.shape != target.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{value.shape} vs {target.data.shape}"
                    )
                target.data = value.copy()
            elif name in buffer_owners:
                owner, attr = buffer_owners[name]
                owner._set_buffer(attr, np.array(value, copy=True))
            else:
                raise KeyError(f"unexpected key {name!r} in state dict")

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for mod_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{mod_name}."))
        return owners

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())
