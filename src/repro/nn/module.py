"""Module base class: parameter registration, traversal and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.autodiff.tensor import Tensor


# The slot descriptor Tensor defines for ``data``; Parameter shadows it with
# a property below so every rebind can be observed, and uses this descriptor
# to reach the underlying storage.
_TENSOR_DATA_SLOT = Tensor.data


class Parameter(Tensor):
    """A tensor registered as a trainable module parameter.

    Every rebind of :attr:`data` bumps a monotonically increasing
    :attr:`version` counter.  The evaluation engine
    (:mod:`repro.engine`) keys its layer-prefix activation cache on these
    versions, so any weight write -- an optimizer step, a quantized-model
    sync, a committed bit flip -- invalidates exactly the cached prefixes
    that depended on the touched parameter.  Code must rebind ``data``
    (``param.data = new``) rather than mutate it in place for the
    invalidation to be seen; every writer in this codebase does.
    """

    def __init__(self, data: Any) -> None:
        super().__init__(data, requires_grad=True)

    @property
    def data(self) -> np.ndarray:
        return _TENSOR_DATA_SLOT.__get__(self, Parameter)

    @data.setter
    def data(self, value: np.ndarray) -> None:
        _TENSOR_DATA_SLOT.__set__(self, value)
        self.__dict__["_version"] = self.__dict__.get("_version", 0) + 1

    @property
    def version(self) -> int:
        """Number of times :attr:`data` has been rebound (never decreases)."""
        return self.__dict__.get("_version", 0)


class Module:
    """Base class for all network modules.

    Subclasses assign :class:`Parameter`, :class:`Module` or buffer
    (plain ndarray registered via :meth:`register_buffer`) attributes; the
    base class tracks them for iteration, state saving and mode switching.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_buffers_version", 0)
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, "_buffers_version", self._buffers_version + 1)
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the attribute.

        Bumps :attr:`buffers_version` so cached activations that depended on
        the old buffer state (e.g. batch-norm running statistics) are
        invalidated by the evaluation engine.
        """
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = value
        object.__setattr__(self, "_buffers_version", self._buffers_version + 1)
        object.__setattr__(self, name, value)

    @property
    def buffers_version(self) -> int:
        """Write counter over this module's own buffers (not submodules)."""
        return self._buffers_version

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield (f"{prefix}{name}", getattr(self, name))
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    # ------------------------------------------------------------------
    # Modes and gradients
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for module in self._modules.values():
            module.eval()
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name -> array copy of parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: np.array(buf, copy=True) for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        for name, value in state.items():
            if name in params:
                target = params[name]
                value = np.asarray(value, dtype=target.data.dtype)
                if value.shape != target.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{value.shape} vs {target.data.shape}"
                    )
                target.data = value.copy()
            elif name in buffer_owners:
                owner, attr = buffer_owners[name]
                owner._set_buffer(attr, np.array(value, copy=True))
            else:
                raise KeyError(f"unexpected key {name!r} in state dict")

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for mod_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{mod_name}."))
        return owners

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())
