"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """A tensor operation received operands with incompatible shapes."""


class GradientError(ReproError):
    """Backpropagation was requested in an invalid state."""


class QuantizationError(ReproError):
    """Quantization or bit-level manipulation failed."""


class BackendError(ReproError):
    """An unknown or misconfigured compute backend was requested."""


class MemoryModelError(ReproError):
    """The DRAM/OS memory simulation was driven into an invalid state."""


class RowhammerError(ReproError):
    """A Rowhammer profiling or hammering operation failed."""


class AttackError(ReproError):
    """An attack was configured or executed incorrectly."""


class DefenseError(ReproError):
    """A defense was configured or executed incorrectly."""


class SweepError(ReproError):
    """A parallel experiment sweep was misconfigured or failed permanently."""
