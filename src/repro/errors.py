"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """A tensor operation received operands with incompatible shapes."""


class GradientError(ReproError):
    """Backpropagation was requested in an invalid state."""


class QuantizationError(ReproError):
    """Quantization or bit-level manipulation failed."""


class BackendError(ReproError):
    """An unknown or misconfigured compute backend was requested."""


class MemoryModelError(ReproError):
    """The DRAM/OS memory simulation was driven into an invalid state."""


class RowhammerError(ReproError):
    """A Rowhammer profiling or hammering operation failed."""


class AttackError(ReproError):
    """An attack was configured or executed incorrectly."""


class DefenseError(ReproError):
    """A defense was configured or executed incorrectly."""


class SweepError(ReproError):
    """A parallel experiment sweep was misconfigured or failed permanently."""


class MergeError(SweepError):
    """Merging sweep journals failed (or would silently lose data).

    Carries a machine-readable ``cause`` slug plus a JSON-able ``details``
    dict naming the offending journals, task IDs or grid SHAs, so callers
    (and tests) can react to the specific failure instead of parsing the
    message.  Every cause is registered in :data:`MERGE_ERROR_CAUSES` and
    documented in the README troubleshooting table (``tools/check_docs.py``
    enforces both).  Causes:

    - ``"no-journals"``          -- nothing to merge;
    - ``"unreadable-journal"``   -- a named journal file does not exist;
    - ``"missing-header"``       -- a journal has no (intact) header line;
    - ``"mixed-schedule"``       -- shard-mode and queue-mode journals were
      passed to one merge (they describe different runs);
    - ``"missing-shard-metadata"`` -- a shard journal predates sharding
      (header lacks ``shard_index``/``shard_count``/``shard_task_ids``);
    - ``"missing-queue-metadata"`` -- a ``schedule=queue`` journal header
      lacks ``worker``/``grid_task_ids``;
    - ``"sha-mismatch"``         -- journals were written for different grids;
    - ``"grid-tasks-mismatch"``  -- queue journals agree on the grid SHA but
      disagree on the grid's task-id list (corrupted/edited header);
    - ``"shard-count-mismatch"`` -- journals disagree on the split's ``n``;
    - ``"duplicate-shard"``      -- the same shard index appears twice;
    - ``"duplicate-worker"``     -- two queue journals claim the same worker
      id (a journal merged twice, or two hosts misconfigured alike);
    - ``"duplicate-task"``       -- a task ID is claimed by several shards
      (identical result rows);
    - ``"conflicting-result"``   -- one task has *different* result rows
      across journals (a shard duplicate, or two queue workers that somehow
      both committed);
    - ``"foreign-result"``       -- a journal records a task outside its own
      shard slice (shard mode) or outside the grid (queue mode);
    - ``"missing-shard"``        -- a shard index of the split has no journal
      (degradable via ``allow_incomplete``);
    - ``"incomplete-coverage"``  -- shard slices do not add up to the full
      grid (degradable via ``allow_incomplete``);
    - ``"missing-result"``       -- a covered task holds no final result --
      killed mid-sweep, a torn trailing line, or (queue mode) a task no
      worker completed (degradable via ``allow_incomplete``);
    - ``"missing-events"``       -- a merged flight record was requested but
      a result carries no event stream.
    """

    def __init__(self, cause: str, message: str, **details: object) -> None:
        super().__init__(message)
        self.cause = cause
        self.details = details


#: Every live-health cause slug :func:`repro.telemetry.live.health_issue`
#: may emit, mirroring :data:`MERGE_ERROR_CAUSES`: machine-readable, in one
#: registry, and required (by ``tools/check_docs.py``) to be documented in
#: both README.md and DESIGN.md.  Health issues are advisory observations
#: over a *live* fleet (``repro watch`` / ``repro queue-status``), not
#: exceptions -- the determinism contract is unaffected either way.
#:
#: - ``"stalled-worker"``       -- a worker's beacon stopped updating while
#:   the queue still holds open tasks (process died or wedged);
#: - ``"expired-lease-churn"``  -- leases keep expiring and being re-stolen
#:   (lease TTL likely shorter than the task duration);
#: - ``"failure-rate"``         -- an abnormal share of committed tasks
#:   failed terminally;
#: - ``"no-progress"``          -- a worker heartbeats but has not committed
#:   a task for a long time (wedged mid-task, or starved);
#: - ``"clock-skew"``           -- a beacon is timestamped in this host's
#:   future (unsynchronized clocks make ages/ETAs untrustworthy).
HEALTH_CAUSES = frozenset(
    {
        "stalled-worker",
        "expired-lease-churn",
        "failure-rate",
        "no-progress",
        "clock-skew",
    }
)


#: Every ``MergeError.cause`` slug the library raises, in one place, so the
#: docs-freshness gate (``tools/check_docs.py``) and the operator runbook can
#: be checked against the code instead of rotting silently.
MERGE_ERROR_CAUSES = frozenset(
    {
        "no-journals",
        "unreadable-journal",
        "missing-header",
        "mixed-schedule",
        "missing-shard-metadata",
        "missing-queue-metadata",
        "sha-mismatch",
        "grid-tasks-mismatch",
        "shard-count-mismatch",
        "duplicate-shard",
        "duplicate-worker",
        "duplicate-task",
        "conflicting-result",
        "foreign-result",
        "missing-shard",
        "incomplete-coverage",
        "missing-result",
        "missing-events",
    }
)
