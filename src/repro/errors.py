"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError):
    """A tensor operation received operands with incompatible shapes."""


class GradientError(ReproError):
    """Backpropagation was requested in an invalid state."""


class QuantizationError(ReproError):
    """Quantization or bit-level manipulation failed."""


class BackendError(ReproError):
    """An unknown or misconfigured compute backend was requested."""


class MemoryModelError(ReproError):
    """The DRAM/OS memory simulation was driven into an invalid state."""


class RowhammerError(ReproError):
    """A Rowhammer profiling or hammering operation failed."""


class AttackError(ReproError):
    """An attack was configured or executed incorrectly."""


class DefenseError(ReproError):
    """A defense was configured or executed incorrectly."""


class SweepError(ReproError):
    """A parallel experiment sweep was misconfigured or failed permanently."""


class MergeError(SweepError):
    """Merging shard journals failed (or would silently lose data).

    Carries a machine-readable ``cause`` slug plus a JSON-able ``details``
    dict naming the offending journals, task IDs or grid SHAs, so callers
    (and tests) can react to the specific failure instead of parsing the
    message.  Causes:

    - ``"no-journals"``          -- nothing to merge;
    - ``"unreadable-journal"``   -- a named journal file does not exist;
    - ``"missing-header"``       -- a journal has no (intact) header line;
    - ``"missing-shard-metadata"`` -- a journal predates sharding (header
      lacks ``shard_index``/``shard_count``/``shard_task_ids``);
    - ``"sha-mismatch"``         -- journals were written for different grids;
    - ``"shard-count-mismatch"`` -- journals disagree on the split's ``n``;
    - ``"duplicate-shard"``      -- the same shard index appears twice;
    - ``"duplicate-task"``       -- a task ID is claimed by several shards
      (identical result rows);
    - ``"conflicting-result"``   -- a duplicated task ID has *different*
      result rows across journals;
    - ``"foreign-result"``       -- a journal records a task outside its own
      shard slice;
    - ``"missing-shard"``        -- a shard index of the split has no journal
      (degradable via ``allow_incomplete``);
    - ``"incomplete-coverage"``  -- shard slices do not add up to the full
      grid (degradable via ``allow_incomplete``);
    - ``"missing-result"``       -- a shard journal covers a task but holds
      no result for it, e.g. killed mid-sweep or a torn trailing line
      (degradable via ``allow_incomplete``);
    - ``"missing-events"``       -- a merged flight record was requested but
      a result carries no event stream.
    """

    def __init__(self, cause: str, message: str, **details: object) -> None:
        super().__init__(message)
        self.cause = cause
        self.details = details
