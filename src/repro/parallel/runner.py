"""Process-pool sweep runner with checkpoint/resume and retry-with-backoff.

The runner shards an expanded :class:`~repro.parallel.grid.SweepGrid`
across ``ProcessPoolExecutor`` workers.  Three guarantees:

- **Determinism**: every task carries its own explicit seed, result rows
  are returned in grid order, and worker telemetry is merged in grid order
  -- so ``workers=N`` never changes any output, numeric or telemetric.
- **Checkpointing**: each finished task is appended (and flushed) to a
  JSONL journal; ``resume=True`` skips tasks the journal already records
  as successful, re-running only the remainder.
- **Degradation**: a task that raises is retried with exponential backoff
  up to ``max_attempts``; a worker that dies outright (``BrokenProcessPool``)
  breaks the whole pool, so in-flight siblings are resubmitted uncharged and
  the rebuilt pool finishes serially -- only the provably-crashing task is
  charged attempts, and the sweep finishes with a structured failure record
  instead of crashing.

Multi-host scale-out layers on top of the same guarantees, in two modes.
``shard=(i, n)`` runs one *static* contiguous slice of the canonical grid
order against its own journal (header pinned to the *full* grid's SHA);
:mod:`repro.parallel.scheduler` instead lets heterogeneous hosts claim
tasks *dynamically* from a filesystem-backed work-stealing queue, each
appending to its own ``schedule=queue`` journal.  Either way,
:mod:`repro.parallel.merge` reassembles the journals into the
byte-identical unsharded result.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import time
from collections import deque
from pathlib import Path
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.errors import SweepError
from repro.log import get_logger
from repro.parallel import worker
from repro.parallel.grid import (
    ShardLike,
    ShardSpec,
    SweepGrid,
    SweepTask,
    ensure_unique,
    grid_sha_of,
)
from repro.parallel.journal import SCHEDULE_SHARD, SweepJournal, build_result_record
from repro.telemetry.live import BEACON_SUFFIX, BeaconWriter
from repro.telemetry.spans import SpanRecord

TaskRunner = Callable[[Dict[str, object]], Dict[str, object]]

log = get_logger(__name__)


@dataclasses.dataclass
class TaskOutcome:
    """Final state of one grid task after all attempts (or a resume skip)."""

    task: SweepTask
    status: str  # "ok" | "failed" | "resumed"
    attempts: int = 0
    duration_seconds: float = 0.0
    row: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    metrics: Optional[Dict[str, object]] = None
    spans: Optional[List[Dict[str, object]]] = None
    events: Optional[List[Dict[str, object]]] = None


@dataclasses.dataclass
class SweepResult:
    """Everything a finished sweep (or one shard of it) produced, in grid order.

    ``grid_sha`` and ``total_tasks`` always describe the *full* grid; for a
    sharded run ``outcomes`` covers only this shard's contiguous slice.
    """

    outcomes: List[TaskOutcome]
    grid_sha: str
    journal_path: Optional[str] = None
    shard: Optional[ShardSpec] = None
    total_tasks: int = 0

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Result rows of successful (or resumed) tasks, in grid order."""
        return [o.row for o in self.outcomes if o.row is not None]

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def resumed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "resumed")

    @property
    def completed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")


def run_sweep(
    grid: Union[SweepGrid, Sequence[SweepTask]],
    workers: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
    max_attempts: int = 2,
    backoff_seconds: float = 0.25,
    mp_context: str = "spawn",
    capture_telemetry: Optional[bool] = None,
    capture_events: Optional[bool] = None,
    task_runner: TaskRunner = worker.execute_task,
    shard: Optional[ShardLike] = None,
    live_dir: Optional[str] = None,
    beacon_interval: float = 2.0,
) -> SweepResult:
    """Run every grid task, fanned out over ``workers`` processes.

    ``workers <= 1`` executes tasks inline (no pool) -- numerically
    identical to any pooled run, since each task is a pure function of its
    descriptor.  ``capture_telemetry`` defaults to the parent's
    :func:`repro.telemetry.enabled` state; when on, worker metrics and
    span trees are merged into the parent registry in grid order.
    ``capture_events`` likewise defaults to
    :func:`repro.telemetry.events_enabled`; when on, every worker's flight
    record ships back and is renumbered into the parent recorder in grid
    order, so the merged stream is identical for any worker count.

    ``shard`` restricts the run to one contiguous slice of the canonical
    grid order (a :class:`~repro.parallel.grid.ShardSpec`, an ``'i/n'``
    string, or an ``(i, n)`` pair): the grid SHA and journal header still
    describe the *full* grid, so ``count`` hosts each running one shard
    against their own journal can later be reassembled by
    :func:`repro.parallel.merge.merge_journals` -- byte-identical to an
    unsharded run.  Resume/retry semantics are unchanged within a shard.

    ``live_dir`` points a status beacon (:mod:`repro.telemetry.live`) at
    that directory: one ``<worker>.beacon.json`` kept fresh every
    ``beacon_interval`` seconds for the whole sweep.  Purely a sidecar --
    rows, journal, metrics and flight record are byte-identical with or
    without it.
    """
    if max_attempts < 1:
        raise SweepError(f"max_attempts must be positive, got {max_attempts}")
    full_tasks = ensure_unique(grid.expand() if isinstance(grid, SweepGrid) else list(grid))
    sha = grid_sha_of(full_tasks)
    spec = ShardSpec.coerce(shard) if shard is not None else None
    tasks = list(spec.slice(full_tasks)) if spec is not None else list(full_tasks)
    if capture_telemetry is None:
        capture_telemetry = telemetry.enabled()
    if capture_events is None:
        capture_events = telemetry.events_enabled()
    payloads = [
        {
            "task": task.to_json(),
            "telemetry": capture_telemetry,
            "events": capture_events,
        }
        for task in tasks
    ]

    outcomes: Dict[int, TaskOutcome] = {}
    journal: Optional[SweepJournal] = None
    beacon: Optional[BeaconWriter] = None
    if live_dir is not None:
        beacon_id = f"{socket.gethostname()}-{os.getpid()}"
        if spec is not None:
            beacon_id += f"-shard{spec.index}"
        beacon = BeaconWriter(
            Path(live_dir) / f"{beacon_id}{BEACON_SUFFIX}",
            worker=beacon_id,
            interval=beacon_interval,
        ).start()

    def _beacon_progress() -> None:
        if beacon is None:
            return
        beacon.update(
            phase="running",
            tasks_done=sum(1 for o in outcomes.values() if o.status != "failed"),
            tasks_failed=sum(1 for o in outcomes.values() if o.status == "failed"),
            claims=len(outcomes),
        )

    try:
        if journal_path is not None:
            journal = _open_journal(
                journal_path, sha, tasks, len(full_tasks), spec, resume, outcomes
            )
        elif resume:
            raise SweepError("resume=True requires a journal_path to resume from")

        pending = [index for index in range(len(tasks)) if index not in outcomes]
        log.info(
            "sweep %s%s: %d task(s), %d pending, workers=%d",
            sha[:12], f" shard {spec}" if spec is not None else "",
            len(tasks), len(pending), workers,
        )

        def finalize(index: int, attempt: int, outcome_dict: Dict[str, object]) -> None:
            outcome = TaskOutcome(
                task=tasks[index],
                status=str(outcome_dict.get("status", "failed")),
                attempts=attempt,
                duration_seconds=float(outcome_dict.get("duration_seconds", 0.0)),
                row=outcome_dict.get("row"),
                error=outcome_dict.get("error"),
                metrics=outcome_dict.get("metrics"),
                spans=outcome_dict.get("spans"),
                events=outcome_dict.get("events"),
            )
            outcomes[index] = outcome
            if journal is not None:
                # Ship telemetry through the journal too: a journal is its
                # task's *complete* output, so `repro merge` can rebuild the
                # merged metrics snapshot and flight record without talking
                # to the host that ran it.
                journal.append(
                    build_result_record(
                        tasks[index].task_id,
                        outcome.status,
                        attempt,
                        outcome.duration_seconds,
                        row=outcome.row,
                        error=outcome.error,
                        metrics=outcome.metrics,
                        spans=outcome.spans,
                        events=outcome.events,
                    )
                )
            _beacon_progress()

        with telemetry.span("sweep", workers=workers, tasks=len(tasks)):
            if pending:
                if workers <= 1:
                    _run_inline(
                        pending, payloads, task_runner, max_attempts, backoff_seconds, finalize
                    )
                else:
                    _run_pool(
                        pending,
                        payloads,
                        task_runner,
                        workers,
                        max_attempts,
                        backoff_seconds,
                        mp_context,
                        finalize,
                    )
            ordered = [outcomes[index] for index in range(len(tasks))]
            _record_sweep_telemetry(ordered)
    finally:
        if journal is not None:
            journal.close()
        if beacon is not None:
            beacon.stop(phase="done")
    return SweepResult(
        outcomes=ordered, grid_sha=sha, journal_path=journal_path,
        shard=spec, total_tasks=len(full_tasks),
    )


# ---------------------------------------------------------------------------
def _open_journal(
    journal_path: str,
    sha: str,
    tasks: Sequence[SweepTask],
    total_tasks: int,
    spec: Optional[ShardSpec],
    resume: bool,
    outcomes: Dict[int, TaskOutcome],
) -> SweepJournal:
    """Open (and maybe replay) the journal; fills ``outcomes`` with skips."""
    state = SweepJournal.load(journal_path)
    if not resume and state.records:
        raise SweepError(
            f"journal {journal_path!r} already holds {len(state.records)} results; "
            "pass resume=True to continue it or point --journal elsewhere"
        )
    if state.header is not None:
        # Fail fast on *any* reopen -- resume or not -- whose header
        # disagrees with this run's grid: a mismatched journal would
        # otherwise only surface at merge time.
        if state.header.get("grid_sha") != sha:
            raise SweepError(
                f"journal {journal_path!r} was written for a different grid "
                f"(journal sha {state.header.get('grid_sha')!r} != run sha {sha!r})"
            )
        schedule = state.header.get("schedule", SCHEDULE_SHARD)
        if schedule != SCHEDULE_SHARD:
            raise SweepError(
                f"journal {journal_path!r} belongs to a {schedule!r}-scheduled "
                "sweep; resume it through its queue directory, not --shard"
            )
        header_shard = (state.header.get("shard_index"), state.header.get("shard_count"))
        run_shard = (spec.index, spec.count) if spec is not None else (0, 1)
        if header_shard[1] is not None and header_shard != run_shard:
            raise SweepError(
                f"journal {journal_path!r} was written for shard "
                f"{header_shard[0]}/{header_shard[1]}, not {run_shard[0]}/{run_shard[1]}"
            )
    journal = SweepJournal(journal_path).open()
    if state.header is None:
        journal.append_header(
            grid_sha=sha,
            total_tasks=total_tasks,
            schedule=SCHEDULE_SHARD,
            shard_index=spec.index if spec is not None else 0,
            shard_count=spec.count if spec is not None else 1,
            shard_task_ids=[task.task_id for task in tasks],
        )
    if resume:
        completed = state.completed
        for index, task in enumerate(tasks):
            record = completed.get(task.task_id)
            if record is None:
                continue
            outcomes[index] = TaskOutcome(
                task=task,
                status="resumed",
                attempts=int(record.get("attempts", 1)),
                duration_seconds=float(record.get("duration_seconds", 0.0)),
                row=record.get("row"),
                # Restore journaled telemetry so a resumed shard's merged
                # metrics/flight record still match a fresh run exactly.
                metrics=record.get("metrics"),
                spans=record.get("spans"),
                events=record.get("events"),
            )
        if state.records:
            journal.append(
                {"kind": "resume", "grid_sha": sha, "skipped": len(outcomes)}
            )
    return journal


def _attempt_failure(exc: BaseException) -> Dict[str, object]:
    """Synthetic outcome for a task whose worker died before answering."""
    return {
        "status": "failed",
        "error": {
            "type": type(exc).__name__,
            "message": str(exc) or "worker process crashed",
            "traceback": "",
        },
    }


def _backoff(backoff_seconds: float, attempt: int) -> None:
    if backoff_seconds > 0:
        time.sleep(backoff_seconds * (2 ** (attempt - 1)))


def attempt_with_retries(
    payload: Dict[str, object],
    task_runner: TaskRunner,
    max_attempts: int,
    backoff_seconds: float,
) -> Tuple[int, Dict[str, object]]:
    """Run one task payload with retry-and-backoff; never raises.

    Returns ``(attempts_used, outcome_dict)`` where the outcome is either
    the runner's (``status == "ok"``) or a structured failure after the
    last attempt.  Shared by the inline pool path and the queue scheduler
    so both record identical attempt semantics.
    """
    attempt = 1
    while True:
        try:
            outcome = task_runner(payload)
        except Exception as exc:  # custom runners may raise
            outcome = _attempt_failure(exc)
        if outcome.get("status") == "ok" or attempt >= max_attempts:
            return attempt, outcome
        _backoff(backoff_seconds, attempt)
        attempt += 1


def _run_inline(
    pending: Sequence[int],
    payloads: Sequence[Dict[str, object]],
    task_runner: TaskRunner,
    max_attempts: int,
    backoff_seconds: float,
    finalize: Callable[[int, int, Dict[str, object]], None],
) -> None:
    for index in pending:
        attempt, outcome = attempt_with_retries(
            payloads[index], task_runner, max_attempts, backoff_seconds
        )
        finalize(index, attempt, outcome)


def _run_pool(
    pending: Sequence[int],
    payloads: Sequence[Dict[str, object]],
    task_runner: TaskRunner,
    workers: int,
    max_attempts: int,
    backoff_seconds: float,
    mp_context: str,
    finalize: Callable[[int, int, Dict[str, object]], None],
) -> None:
    context = multiprocessing.get_context(mp_context)
    queue: Deque[Tuple[int, int]] = deque((index, 1) for index in pending)
    active: Dict[Future, Tuple[int, int]] = {}
    executor: Optional[ProcessPoolExecutor] = None
    # After a pool break the executor fails every in-flight future with
    # BrokenProcessPool, so the actual crasher is indistinguishable from
    # innocent victims.  Recovery therefore runs one task at a time: the
    # sole in-flight task of a broken serial pool is provably the crasher
    # and is the only one charged an attempt.
    serial_recovery = False

    def handle(index: int, attempt: int, outcome: Dict[str, object]) -> None:
        if outcome.get("status") == "ok" or attempt >= max_attempts:
            finalize(index, attempt, outcome)
        else:
            log.info(
                "task #%d failed on attempt %d/%d; backing off and retrying",
                index, attempt, max_attempts,
            )
            _backoff(backoff_seconds, attempt)
            queue.append((index, attempt + 1))

    try:
        while queue or active:
            if executor is None:
                executor = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=worker.initialize_worker,
                )
            while queue and not (serial_recovery and active):
                index, attempt = queue.popleft()
                active[executor.submit(task_runner, payloads[index])] = (index, attempt)
            done, _ = wait(set(active), return_when=FIRST_COMPLETED)
            pool_broken = False
            for future in done:
                index, attempt = active.pop(future)
                try:
                    outcome = future.result()
                except (BrokenProcessPool, OSError) as exc:
                    # A worker died without answering (os._exit, segfault,
                    # OOM kill).  In serial recovery the dead task was alone
                    # in flight, so the crash is its own and costs it an
                    # attempt; in parallel mode it may be a collateral victim
                    # of a sibling's crash, so it is requeued uncharged and
                    # retried serially.
                    pool_broken = True
                    if serial_recovery:
                        handle(index, attempt, _attempt_failure(exc))
                    else:
                        queue.append((index, attempt))
                    continue
                except Exception as exc:
                    outcome = _attempt_failure(exc)
                handle(index, attempt, outcome)
            if pool_broken:
                serial_recovery = True
                log.warning(
                    "process pool broke; resubmitting %d in-flight task(s) and "
                    "finishing in serial recovery for exact crash attribution",
                    len(active),
                )
                for index, attempt in active.values():
                    queue.append((index, attempt))
                active.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
    finally:
        if executor is not None:
            executor.shutdown(wait=True)


def _record_sweep_telemetry(ordered: Sequence[TaskOutcome]) -> None:
    """Merge worker telemetry into the parent, strictly in grid order."""
    if telemetry.events_enabled():
        recorder = telemetry.get_recorder()
        base_path = telemetry.get_tracer().current_path()
        for outcome in ordered:
            if outcome.events:
                recorder.attach(outcome.events, base_path=base_path)
    if not telemetry.enabled():
        return
    registry = telemetry.get_registry()
    tracer = telemetry.get_tracer()
    for outcome in ordered:
        telemetry.counter_add(f"sweep.tasks_{outcome.status}")
        if outcome.attempts > 1:
            telemetry.counter_add("sweep.retries", outcome.attempts - 1)
        if outcome.status == "ok":
            telemetry.histogram_observe("sweep.task_seconds", outcome.duration_seconds)
        if outcome.metrics:
            registry.merge_snapshot(
                counters=outcome.metrics.get("counters"),
                gauges=outcome.metrics.get("gauges"),
                histogram_values=outcome.metrics.get("histogram_values"),
            )
        for span_payload in outcome.spans or ():
            tracer.attach(SpanRecord.from_dict(span_payload))
