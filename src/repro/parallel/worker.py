"""Sweep worker: runs one task in a (possibly forked/spawned) process.

Workers are plain functions over JSON-able payloads so they pickle cleanly
into :class:`concurrent.futures.ProcessPoolExecutor`.  ``execute_task``
never raises -- failures come back as structured outcome dicts, so one
crashing task degrades the sweep instead of killing it.

Process-global mutable state audit (what :func:`reset_worker_state` must
cover, because ``fork`` workers inherit the parent's modules verbatim):

- :mod:`repro.telemetry`'s module-level registry/tracer/recorder and its
  two enabled flags (metrics and flight-recorder events) -- reset and
  disabled here; each task records into fresh isolated state.
- :mod:`repro.telemetry.live`'s registry of active beacon writers and
  timeline samplers -- *discarded* here (no final write): a forked worker
  inherits the parent's writer objects but not their threads, and must
  never rewrite the parent's beacon path as its own.
- :mod:`repro.rowhammer.device_profiles`' custom-profile registry --
  restored to the built-in Table I set.
- The model-zoo disk cache (:mod:`repro.core.training`) is shared on
  purpose; writes are atomic (temp file + rename), so concurrent workers
  can never read a torn checkpoint.
- :data:`repro.models.MODEL_REGISTRY` and the quantization/page constants
  are populated at import time and never mutated: safe under fork.
- :mod:`repro.engine`'s enabled flag is read from ``REPRO_ENGINE`` at
  import time and only changed by the CLI, which mirrors the change into
  the environment before the pool starts -- fork and spawn workers agree
  with the parent.  Engine *instances* (and their activation caches) are
  created per evaluation loop, never at module level, so no cached
  activations can leak across tasks or processes.
- :mod:`repro.backend`'s process-wide active backend -- reset here.  A
  ``fork`` worker inherits the parent's backend object but not its
  threads, so an inherited ``threads`` pool would deadlock on first use;
  the reset drops it (``shutdown(wait=False)``) and the next kernel call
  rebuilds the backend from ``REPRO_BACKEND``, which the CLI mirrors into
  the environment -- fork and spawn workers agree with the parent.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, Optional

from repro import telemetry
from repro.parallel.grid import SweepTask
from repro.rowhammer import device_profiles
from repro.telemetry import live


def reset_worker_state() -> None:
    """Reset every known piece of process-global mutable state."""
    from repro.backend import reset_backend

    telemetry.disable()
    telemetry.disable_events()
    telemetry.get_tracer().reset(force=True)
    telemetry.get_registry().reset()
    telemetry.get_recorder().reset()
    live.reset_live()
    device_profiles.reset_profiles()
    reset_backend()


def initialize_worker() -> None:
    """``ProcessPoolExecutor`` initializer: start from a clean slate."""
    reset_worker_state()


def _run_task(task: SweepTask) -> Dict[str, float]:
    # Imported lazily: repro.core.experiment imports the runner, which
    # imports this module, so a top-level import would be circular.
    from repro.core.experiment import ExperimentScale, run_single_experiment

    scale = ExperimentScale(**task.scale) if task.scale is not None else ExperimentScale.from_env()
    return run_single_experiment(
        task.method,
        task.model,
        dataset=task.dataset,
        scale=scale,
        target_class=task.target_class,
        device=task.device,
        seed=task.seed,
    )


def execute_task(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one task; return a structured outcome dict (never raises).

    ``payload`` is ``{"task": <SweepTask JSON>, "telemetry": bool,
    "events": bool}``.  With telemetry requested, the task runs inside an
    isolated registry/tracer (safe both in a worker process and inline in
    the parent) and the outcome carries the raw metric values plus the
    serialized span tree for deterministic merging on the parent side.
    With events requested, the isolated flight recorder's stream ships back
    too; the parent renumbers it into its own recorder in grid order.
    """
    start = time.perf_counter()
    task_id: Optional[str] = None
    try:
        task = SweepTask.from_json(dict(payload["task"]))  # type: ignore[arg-type]
        task_id = task.task_id
        capture = bool(payload.get("telemetry", False))
        capture_events = bool(payload.get("events", False))
        metrics: Optional[Dict[str, object]] = None
        spans = None
        events = None
        # Always isolated (even when muted): an inline task must not leak
        # its pipeline counters/spans/events into the parent state, which
        # would make workers=1 telemetry differ from pooled runs.
        with telemetry.isolated(enable=capture, record_events=capture_events) as (
            registry,
            tracer,
        ):
            if capture:
                with telemetry.span("sweep.task", task=task_id):
                    row = _run_task(task)
                snapshot = registry.snapshot()
                metrics = {
                    "counters": snapshot["counters"],
                    "gauges": snapshot["gauges"],
                    "histogram_values": registry.histogram_values(),
                }
                spans = [record.to_dict() for record in tracer.roots]
            else:
                row = _run_task(task)
            if capture_events:
                events = telemetry.get_recorder().to_dicts()
        return {
            "task_id": task_id,
            "status": "ok",
            "row": row,
            "duration_seconds": time.perf_counter() - start,
            "metrics": metrics,
            "spans": spans,
            "events": events,
        }
    except BaseException as exc:  # noqa: B036 - workers must not propagate
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        return {
            "task_id": task_id,
            "status": "failed",
            "row": None,
            "duration_seconds": time.perf_counter() - start,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }
