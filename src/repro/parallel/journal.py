"""JSONL checkpoint journal for parallel sweeps.

One line per event, appended and flushed as tasks finish, so a sweep killed
at any point leaves a journal whose intact prefix is a valid checkpoint:

- ``{"kind": "header", ...}``   -- grid identity (``grid_sha`` over the
  *full* canonical grid + ``total_tasks``) plus this journal's ownership
  mode, once (see below);
- ``{"kind": "result", ...}``   -- one per finished task (``ok``,
  ``failed``, or ``superseded`` when a queue worker lost the commit race),
  carrying the row and -- when captured -- the task's metrics, span tree
  and flight-recorder events, so a journal is the *complete* output
  ``repro merge`` needs to reassemble the sweep;
- ``{"kind": "resume", ...}``   -- appended each time a sweep resumes.

Two header modes declare who owns which tasks (``schedule`` field):

- ``schedule="shard"`` (the default; absent in pre-queue journals): the
  journal covers one *static* contiguous slice of the canonical grid order,
  pinned upfront as ``shard_index``/``shard_count``/``shard_task_ids``;
- ``schedule="queue"``: the journal belongs to one ``worker`` of a
  queue-scheduled sweep (:mod:`repro.parallel.scheduler`).  Ownership is
  *dynamic* -- whichever tasks this worker claimed and committed -- so the
  header pins the full grid's ``grid_task_ids`` instead of a slice, and the
  result records themselves define ownership.

Loading tolerates a torn trailing line (the kill case) and skips malformed
interior lines rather than aborting, because losing one checkpoint entry
only costs re-running that task.  Later ``result`` lines for one task
supersede earlier ones, which is how a queue worker retracts a result that
lost the duplicate-completion race (``status="superseded"``).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

from repro.errors import SweepError
from repro.log import get_logger

JOURNAL_SCHEMA = 1

#: Header ``schedule`` values: static contiguous slices vs the work-stealing
#: queue of :mod:`repro.parallel.scheduler`.
SCHEDULE_SHARD = "shard"
SCHEDULE_QUEUE = "queue"

log = get_logger(__name__)


def build_result_record(
    task_id: str,
    status: str,
    attempts: int,
    duration_seconds: float,
    row: Optional[Dict[str, object]] = None,
    error: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, object]] = None,
    spans: Optional[List[Dict[str, object]]] = None,
    events: Optional[List[Dict[str, object]]] = None,
    **extra: object,
) -> Dict[str, object]:
    """One ``result`` journal line, shared by the pool runner and the queue
    scheduler so both schedule modes journal byte-compatible records.

    Successful records carry the row plus any captured telemetry (metrics,
    span tree, flight-recorder events) -- the journal is a task's *complete*
    output, which is what lets ``repro merge`` reassemble a sweep without
    talking to the host that ran it.  Failed records carry the structured
    ``error`` instead.
    """
    record: Dict[str, object] = {
        "kind": "result",
        "task_id": task_id,
        "status": status,
        "attempts": attempts,
        "duration_seconds": duration_seconds,
        **extra,
    }
    if status == "ok":
        record["row"] = row
        if metrics is not None:
            record["metrics"] = metrics
        if spans is not None:
            record["spans"] = spans
        if events is not None:
            record["events"] = events
    elif status == "failed" or error is not None:
        record["error"] = error
    return record


@dataclasses.dataclass
class JournalState:
    """Parsed view of an on-disk journal."""

    header: Optional[Dict[str, object]] = None
    records: Dict[str, Dict[str, object]] = dataclasses.field(default_factory=dict)
    resumes: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    malformed_lines: int = 0

    @property
    def completed(self) -> Dict[str, Dict[str, object]]:
        """task_id -> record for every task that finished successfully."""
        return {
            task_id: record
            for task_id, record in self.records.items()
            if record.get("status") == "ok"
        }


class SweepJournal:
    """Append-only JSONL writer with crash-tolerant loading."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    # -- writing ---------------------------------------------------------
    def open(self) -> "SweepJournal":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A sweep killed mid-write leaves a torn line without a trailing
        # newline; terminate it so the next append starts a fresh line
        # instead of corrupting itself by concatenation.
        if self.path.exists():
            with open(self.path, "rb") as handle:
                handle.seek(0, 2)
                if handle.tell() > 0:
                    handle.seek(-1, 2)
                    torn = handle.read(1) != b"\n"
            if torn:
                log.warning("journal %s ends in a torn line; terminating it", self.path)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write("\n")
        self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def append(self, record: Dict[str, object]) -> None:
        """Write one event line and flush it (the checkpoint guarantee)."""
        if self._handle is None:
            raise SweepError("journal is not open for appending")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def append_header(self, grid_sha: str, total_tasks: int, **extra: object) -> None:
        self.append(
            {
                "kind": "header",
                "schema": JOURNAL_SCHEMA,
                "grid_sha": grid_sha,
                "total_tasks": total_tasks,
                **extra,
            }
        )

    # -- reading ---------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> JournalState:
        """Parse a journal, skipping torn/malformed lines.

        Later ``result`` lines for the same task supersede earlier ones
        (a failed attempt followed by a successful retry on resume).
        """
        state = JournalState()
        journal_path = Path(path)
        if not journal_path.exists():
            return state
        with open(journal_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    state.malformed_lines += 1
                    continue
                kind = event.get("kind")
                if kind == "header":
                    if state.header is None:
                        state.header = event
                elif kind == "result" and "task_id" in event:
                    state.records[str(event["task_id"])] = event
                elif kind == "resume":
                    state.resumes.append(event)
                else:
                    state.malformed_lines += 1
        if state.malformed_lines:
            log.warning(
                "journal %s: skipped %d malformed/torn line(s)",
                journal_path,
                state.malformed_lines,
            )
        return state
