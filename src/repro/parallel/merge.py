"""Reassemble shard journals into one sweep: the ``repro merge`` machinery.

A sharded sweep leaves one journal per host, each covering a contiguous
slice of the canonical grid order and pinned to the *full* grid's content
SHA (see :meth:`repro.parallel.grid.SweepGrid.shard`).  This module
validates that a set of such journals really is one sweep -- same grid
SHA, disjoint and jointly exhaustive slices, one result per covered task
-- and reassembles the grid-ordered rows, the merged telemetry snapshot
and the merged flight-recorder event stream.

The determinism contract is the headline guarantee: for any ``n`` and any
worker counts, ``merge(shards(0..n-1))`` is byte-identical to the
equivalent unsharded :func:`repro.parallel.runner.run_sweep` -- sharding
never changes row values, only who computes them.

Every malformed-shard scenario (truncated journal, missing shard,
duplicated task ID, mismatched grid SHA, ...) fails with a structured
:class:`repro.errors.MergeError` naming the offending journals/tasks.
``allow_incomplete=True`` degrades only the *coverage* failures
(missing shard, missing result) into a grid-ordered partial merge with
the gaps reported; trust failures (SHA mismatch, duplicates, conflicts)
are never degradable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import MergeError
from repro.log import get_logger
from repro.parallel.journal import SweepJournal
from repro.telemetry.events import EventRecorder, write_events_jsonl
from repro.telemetry.registry import MetricsRegistry

PathLike = Union[str, Path]

log = get_logger(__name__)

_SHARD_HEADER_FIELDS = ("shard_index", "shard_count", "shard_task_ids")


def _preview(items: Sequence[str], limit: int = 5) -> str:
    shown = ", ".join(str(item) for item in list(items)[:limit])
    extra = len(items) - limit
    return shown + (f", ... (+{extra} more)" if extra > 0 else "")


@dataclasses.dataclass
class ShardView:
    """Parsed view of one shard journal (header + final per-task records)."""

    path: str
    header: Dict[str, object]
    records: Dict[str, Dict[str, object]]

    @property
    def grid_sha(self) -> str:
        return str(self.header.get("grid_sha"))

    @property
    def shard_index(self) -> int:
        return int(self.header["shard_index"])  # type: ignore[arg-type]

    @property
    def shard_count(self) -> int:
        return int(self.header["shard_count"])  # type: ignore[arg-type]

    @property
    def total_tasks(self) -> int:
        return int(self.header.get("total_tasks", 0))  # type: ignore[arg-type]

    @property
    def task_ids(self) -> List[str]:
        return [str(tid) for tid in self.header["shard_task_ids"]]  # type: ignore[union-attr]


@dataclasses.dataclass
class MergeResult:
    """A validated, grid-ordered reassembly of shard journals.

    ``task_ids`` lists the covered tasks in canonical grid order (shards
    concatenated by index); ``records`` holds each covered task's final
    journal record.  ``missing_task_ids``/``missing_shards`` report the
    gaps an ``allow_incomplete`` merge tolerated.
    """

    grid_sha: str
    total_tasks: int
    shards: List[ShardView]
    task_ids: List[str]
    records: Dict[str, Dict[str, object]]
    missing_task_ids: List[str]
    missing_shards: List[int]

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Successful result rows in grid order (same shape as a sweep's)."""
        return [
            self.records[tid]["row"]  # type: ignore[misc]
            for tid in self.task_ids
            if tid in self.records and self.records[tid].get("status") == "ok"
        ]

    @property
    def failures(self) -> List[Tuple[str, Dict[str, object]]]:
        """(task_id, record) for every task whose final record is a failure."""
        return [
            (tid, self.records[tid])
            for tid in self.task_ids
            if tid in self.records and self.records[tid].get("status") != "ok"
        ]

    @property
    def missing_count(self) -> int:
        """Tasks of the full grid with no result: torn/absent + whole shards."""
        covered = sum(len(shard.task_ids) for shard in self.shards)
        return len(self.missing_task_ids) + (self.total_tasks - covered)

    @property
    def seeds(self) -> List[int]:
        """Sorted distinct seeds of the covered tasks (from their task IDs)."""
        return sorted({int(tid.rsplit("seed=", 1)[1]) for tid in self.task_ids})


def merge_journals(
    paths: Sequence[PathLike], allow_incomplete: bool = False
) -> MergeResult:
    """Validate and reassemble shard journals; see the module docstring."""
    if not paths:
        raise MergeError("no-journals", "no shard journals to merge")

    shards: List[ShardView] = []
    for path in paths:
        journal_path = Path(path)
        if not journal_path.exists():
            raise MergeError(
                "unreadable-journal", f"{path}: no such journal", path=str(path)
            )
        state = SweepJournal.load(journal_path)
        if state.header is None:
            raise MergeError(
                "missing-header",
                f"{path}: journal has no intact header line",
                path=str(path),
            )
        absent = [field for field in _SHARD_HEADER_FIELDS if field not in state.header]
        if absent:
            raise MergeError(
                "missing-shard-metadata",
                f"{path}: header lacks {absent} (journal predates sharding?)",
                path=str(path),
                fields=absent,
            )
        shards.append(ShardView(path=str(path), header=state.header, records=state.records))

    shas = {shard.grid_sha for shard in shards}
    if len(shas) > 1:
        raise MergeError(
            "sha-mismatch",
            "journals were written for different grids: "
            + ", ".join(f"{shard.path} sha={shard.grid_sha}" for shard in shards),
            shas={shard.path: shard.grid_sha for shard in shards},
        )
    sha = shards[0].grid_sha
    total = shards[0].total_tasks

    counts = {shard.shard_count for shard in shards}
    if len(counts) > 1:
        raise MergeError(
            "shard-count-mismatch",
            "journals disagree on the split: "
            + ", ".join(f"{shard.path}={shard.shard_index}/{shard.shard_count}"
                        for shard in shards),
            counts={shard.path: shard.shard_count for shard in shards},
        )
    count = shards[0].shard_count

    by_index: Dict[int, ShardView] = {}
    for shard in shards:
        if not 0 <= shard.shard_index < count:
            raise MergeError(
                "shard-count-mismatch",
                f"{shard.path}: shard index {shard.shard_index} out of range "
                f"for a {count}-way split",
                path=shard.path,
                index=shard.shard_index,
            )
        if shard.shard_index in by_index:
            raise MergeError(
                "duplicate-shard",
                f"shard {shard.shard_index}/{count} appears in both "
                f"{by_index[shard.shard_index].path} and {shard.path}",
                index=shard.shard_index,
            )
        by_index[shard.shard_index] = shard

    claims: Dict[str, List[ShardView]] = {}
    for shard in shards:
        for tid in shard.task_ids:
            claims.setdefault(tid, []).append(shard)
    duplicated = {tid: owners for tid, owners in claims.items() if len(owners) > 1}
    if duplicated:
        conflicting = sorted(
            tid
            for tid, owners in duplicated.items()
            if len({
                json.dumps(owner.records.get(tid, {}).get("row"), sort_keys=True)
                for owner in owners
            }) > 1
        )
        if conflicting:
            raise MergeError(
                "conflicting-result",
                f"{len(conflicting)} task(s) have conflicting results across "
                f"journals: {_preview(conflicting)}",
                task_ids=conflicting,
            )
        duplicates = sorted(duplicated)
        raise MergeError(
            "duplicate-task",
            f"{len(duplicates)} task(s) are claimed by more than one shard: "
            f"{_preview(duplicates)}",
            task_ids=duplicates,
        )

    for shard in shards:
        foreign = sorted(set(shard.records) - set(shard.task_ids))
        if foreign:
            raise MergeError(
                "foreign-result",
                f"{shard.path} records task(s) outside its shard slice: "
                f"{_preview(foreign)}",
                path=shard.path,
                task_ids=foreign,
            )

    missing_shards = sorted(set(range(count)) - set(by_index))
    if missing_shards:
        if not allow_incomplete:
            raise MergeError(
                "missing-shard",
                f"no journal for shard index(es) {missing_shards} of a "
                f"{count}-way split; pass --allow-incomplete for a partial merge",
                shard_indices=missing_shards,
                shard_count=count,
            )
        log.warning(
            "merging without shard(s) %s of %d: result will be partial",
            missing_shards, count,
        )

    ordered = [by_index[index] for index in sorted(by_index)]
    task_ids = [tid for shard in ordered for tid in shard.task_ids]
    if not missing_shards and len(task_ids) != total:
        if not allow_incomplete:
            raise MergeError(
                "incomplete-coverage",
                f"shard slices cover {len(task_ids)} of {total} grid task(s)",
                covered=len(task_ids),
                total_tasks=total,
            )
        log.warning(
            "shard slices cover only %d of %d grid task(s)", len(task_ids), total
        )

    missing_task_ids = [
        tid for shard in ordered for tid in shard.task_ids
        if tid not in shard.records
    ]
    if missing_task_ids and not allow_incomplete:
        raise MergeError(
            "missing-result",
            f"{len(missing_task_ids)} covered task(s) have no journaled result "
            f"(shard killed mid-sweep or torn lines?): {_preview(missing_task_ids)}",
            task_ids=missing_task_ids,
        )

    records = {
        tid: shard.records[tid]
        for shard in ordered
        for tid in shard.task_ids
        if tid in shard.records
    }
    return MergeResult(
        grid_sha=sha,
        total_tasks=total,
        shards=ordered,
        task_ids=task_ids,
        records=records,
        missing_task_ids=missing_task_ids,
        missing_shards=missing_shards,
    )


# ---------------------------------------------------------------------------
# Merged artifacts
# ---------------------------------------------------------------------------
def write_merged_rows(result: MergeResult, path: PathLike) -> Path:
    """Write grid-ordered rows, byte-identical to ``repro sweep --out``."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.rows, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def merged_events(result: MergeResult) -> EventRecorder:
    """Renumber every task's journaled event stream in grid order.

    Mirrors the parent-side :meth:`EventRecorder.attach` merge an unsharded
    sweep performs, so the reassembled stream is identical to one recorded
    in-process.  Raises ``MergeError("missing-events")`` when a successful
    result carries no event stream (the shard ran without ``--events``).
    """
    recorder = EventRecorder()
    for tid in result.task_ids:
        record = result.records.get(tid)
        if record is None or record.get("status") != "ok":
            continue
        events = record.get("events")
        if events is None:
            raise MergeError(
                "missing-events",
                f"result for {tid!r} carries no event stream "
                "(was the shard run with --events?)",
                task_id=tid,
            )
        recorder.attach(events)  # type: ignore[arg-type]
    return recorder


def write_merged_events(result: MergeResult, path: PathLike) -> int:
    """Write the merged flight record; returns the number of lines.

    The schema line's meta mirrors what the equivalent unsharded
    ``repro sweep --events`` writes, keeping the merged record
    byte-identical to it.
    """
    return write_events_jsonl(
        merged_events(result), path,
        meta={"command": "sweep", "grid_sha": result.grid_sha},
    )


def merged_metrics(result: MergeResult) -> Dict[str, object]:
    """Replay the parent-side grid-order telemetry merge from the journals.

    Returns ``{"counters", "gauges", "histogram_values"}`` exactly as the
    unsharded parent registry would hold them, *except* the wall-clock
    ``sweep.task_seconds`` histogram, which is inherently nondeterministic
    and therefore excluded from the determinism contract.
    """
    registry = MetricsRegistry()
    for tid in result.task_ids:
        record = result.records.get(tid)
        if record is None:
            continue
        registry.counter(f"sweep.tasks_{record.get('status')}").add(1)
        attempts = int(record.get("attempts", 1))
        if attempts > 1:
            registry.counter("sweep.retries").add(attempts - 1)
        metrics = record.get("metrics")
        if metrics:
            registry.merge_snapshot(
                counters=metrics.get("counters"),
                gauges=metrics.get("gauges"),
                histogram_values=metrics.get("histogram_values"),
            )
    snapshot = registry.snapshot()
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histogram_values": registry.histogram_values(),
    }


def write_merged_journal(result: MergeResult, path: PathLike) -> Path:
    """Write the reassembled journal: one header, grid-ordered records.

    The merged journal is itself a valid (single-shard) sweep journal --
    ``repro report`` renders it and ``repro merge`` accepts it again, where
    an incomplete merge honestly re-reports its gaps.  ``merged_from``
    records how many shard journals it was assembled from.
    """
    path = Path(path)
    if path.exists():
        path.unlink()
    with SweepJournal(path) as journal:
        journal.append_header(
            grid_sha=result.grid_sha,
            total_tasks=result.total_tasks,
            shard_index=0,
            shard_count=1,
            shard_task_ids=result.task_ids,
            merged_from=len(result.shards),
        )
        for tid in result.task_ids:
            record = result.records.get(tid)
            if record is not None:
                journal.append(record)
    return path


__all__ = [
    "MergeResult",
    "ShardView",
    "merge_journals",
    "merged_events",
    "merged_metrics",
    "write_merged_events",
    "write_merged_journal",
    "write_merged_rows",
]
