"""Reassemble per-host sweep journals into one sweep: ``repro merge``.

A distributed sweep leaves one journal per host, pinned to the *full*
grid's content SHA, in one of two ownership modes (the header's
``schedule`` field, see :mod:`repro.parallel.journal`):

- ``schedule="shard"``: each journal covers one *static* contiguous slice
  of the canonical grid order (:meth:`repro.parallel.grid.SweepGrid.shard`).
  Validation demands the slices be disjoint and jointly exhaustive, with
  one result per covered task.
- ``schedule="queue"``: each journal belongs to one worker of a
  work-stealing queue (:mod:`repro.parallel.scheduler`); ownership is
  whatever that worker claimed and committed.  Validation demands every
  journal pin the same grid, drops ``superseded`` tombstones, tolerates
  *identical* duplicate results (two workers raced, values agree -- the
  deterministically chosen winner is kept) and rejects conflicting ones.

Either way the merge reassembles the grid-ordered rows, the merged
telemetry snapshot and the merged flight-recorder event stream.  The
determinism contract is the headline guarantee: scheduling may change
*who* computes a row, never its value -- for any shard count, worker
count, steal or crash, the merge is byte-identical to the equivalent
unsharded :func:`repro.parallel.runner.run_sweep`.

Every malformed-journal scenario (truncated journal, missing shard,
duplicated task ID, mismatched grid SHA, ...) fails with a structured
:class:`repro.errors.MergeError` naming the offending journals/tasks
(all causes: :data:`repro.errors.MERGE_ERROR_CAUSES`).
``allow_incomplete=True`` degrades only the *coverage* failures
(missing shard, missing result) into a grid-ordered partial merge with
the gaps reported; trust failures (SHA mismatch, duplicates, conflicts)
are never degradable.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import MergeError
from repro.log import get_logger
from repro.parallel.journal import SCHEDULE_QUEUE, SCHEDULE_SHARD, SweepJournal
from repro.telemetry.events import EventRecorder, write_events_jsonl
from repro.telemetry.registry import MetricsRegistry

PathLike = Union[str, Path]

log = get_logger(__name__)

_SHARD_HEADER_FIELDS = ("shard_index", "shard_count", "shard_task_ids")
_QUEUE_HEADER_FIELDS = ("worker", "grid_task_ids")


def _preview(items: Sequence[str], limit: int = 5) -> str:
    shown = ", ".join(str(item) for item in list(items)[:limit])
    extra = len(items) - limit
    return shown + (f", ... (+{extra} more)" if extra > 0 else "")


@dataclasses.dataclass
class ShardView:
    """Parsed view of one per-host journal (header + final per-task records).

    Despite the name (it predates queue mode) a view wraps either journal
    kind; :attr:`schedule` says which.  ``records`` holds each task's
    *final* journal line -- journal supersession already applied, so a
    queue worker's retracted results appear here as their ``superseded``
    tombstones.
    """

    path: str
    header: Dict[str, object]
    records: Dict[str, Dict[str, object]]

    @property
    def grid_sha(self) -> str:
        return str(self.header.get("grid_sha"))

    @property
    def schedule(self) -> str:
        """Ownership mode; headers predating queue mode are shard journals."""
        return str(self.header.get("schedule", SCHEDULE_SHARD))

    @property
    def worker(self) -> str:
        """Queue mode only: the worker this journal belongs to."""
        return str(self.header.get("worker", ""))

    @property
    def shard_index(self) -> int:
        return int(self.header["shard_index"])  # type: ignore[arg-type]

    @property
    def shard_count(self) -> int:
        return int(self.header["shard_count"])  # type: ignore[arg-type]

    @property
    def total_tasks(self) -> int:
        return int(self.header.get("total_tasks", 0))  # type: ignore[arg-type]

    @property
    def task_ids(self) -> List[str]:
        """Tasks this journal *owns*: the static slice (shard mode) or the
        dynamically committed set in grid order (queue mode)."""
        if self.schedule == SCHEDULE_QUEUE:
            return [tid for tid in self.grid_task_ids if tid in self.committed]
        return [str(tid) for tid in self.header["shard_task_ids"]]  # type: ignore[union-attr]

    @property
    def grid_task_ids(self) -> List[str]:
        """Queue mode only: the full grid's task ids in canonical order."""
        return [str(tid) for tid in self.header["grid_task_ids"]]  # type: ignore[union-attr]

    @property
    def committed(self) -> Dict[str, Dict[str, object]]:
        """Final records minus ``superseded`` tombstones (lost commit races)."""
        return {
            tid: record
            for tid, record in self.records.items()
            if record.get("status") != "superseded"
        }


@dataclasses.dataclass
class MergeResult:
    """A validated, grid-ordered reassembly of per-host journals.

    ``task_ids`` lists the covered tasks in canonical grid order (shard
    mode: shards concatenated by index; queue mode: the full grid);
    ``records`` holds each covered task's final journal record.
    ``missing_task_ids``/``missing_shards`` report the gaps an
    ``allow_incomplete`` merge tolerated.
    """

    grid_sha: str
    total_tasks: int
    shards: List[ShardView]
    task_ids: List[str]
    records: Dict[str, Dict[str, object]]
    missing_task_ids: List[str]
    missing_shards: List[int]
    schedule: str = SCHEDULE_SHARD
    #: Tasks the merged journals jointly cover; defaults to the sum of the
    #: shard slices (shard mode) when left unset.
    covered_tasks: Optional[int] = None

    @property
    def rows(self) -> List[Dict[str, object]]:
        """Successful result rows in grid order (same shape as a sweep's)."""
        return [
            self.records[tid]["row"]  # type: ignore[misc]
            for tid in self.task_ids
            if tid in self.records and self.records[tid].get("status") == "ok"
        ]

    @property
    def failures(self) -> List[Tuple[str, Dict[str, object]]]:
        """(task_id, record) for every task whose final record is a failure."""
        return [
            (tid, self.records[tid])
            for tid in self.task_ids
            if tid in self.records and self.records[tid].get("status") != "ok"
        ]

    @property
    def missing_count(self) -> int:
        """Tasks of the full grid with no result: torn/absent + whole shards."""
        covered = (
            self.covered_tasks
            if self.covered_tasks is not None
            else sum(len(shard.task_ids) for shard in self.shards)
        )
        return len(self.missing_task_ids) + (self.total_tasks - covered)

    @property
    def workers(self) -> List[str]:
        """Queue mode: sorted worker ids the merge drew results from."""
        return sorted({shard.worker for shard in self.shards if shard.worker})

    @property
    def seeds(self) -> List[int]:
        """Sorted distinct seeds of the covered tasks (from their task IDs)."""
        return sorted({int(tid.rsplit("seed=", 1)[1]) for tid in self.task_ids})


def merge_journals(
    paths: Sequence[PathLike], allow_incomplete: bool = False
) -> MergeResult:
    """Validate and reassemble per-host journals; see the module docstring.

    Dispatches on the journals' ``schedule`` header: all-shard journals go
    through the static-slice validation, all-queue journals through the
    dynamic-ownership validation.  Mixing the two modes in one call is a
    ``mixed-schedule`` error -- they describe different runs.
    """
    if not paths:
        raise MergeError("no-journals", "no journals to merge")

    views: List[ShardView] = []
    for path in paths:
        journal_path = Path(path)
        if not journal_path.exists():
            raise MergeError(
                "unreadable-journal", f"{path}: no such journal", path=str(path)
            )
        state = SweepJournal.load(journal_path)
        if state.header is None:
            raise MergeError(
                "missing-header",
                f"{path}: journal has no intact header line",
                path=str(path),
            )
        views.append(ShardView(path=str(path), header=state.header, records=state.records))

    schedules = {view.schedule for view in views}
    if len(schedules) > 1:
        raise MergeError(
            "mixed-schedule",
            "cannot merge shard-mode and queue-mode journals together: "
            + ", ".join(f"{view.path}={view.schedule}" for view in views),
            schedules={view.path: view.schedule for view in views},
        )
    if schedules == {SCHEDULE_QUEUE}:
        return _merge_queue(views, allow_incomplete)
    return _merge_shards(views, allow_incomplete)


def _merge_shards(shards: List[ShardView], allow_incomplete: bool) -> MergeResult:
    """Static mode: disjoint, jointly exhaustive contiguous slices."""
    for shard in shards:
        absent = [field for field in _SHARD_HEADER_FIELDS if field not in shard.header]
        if absent:
            raise MergeError(
                "missing-shard-metadata",
                f"{shard.path}: header lacks {absent} (journal predates sharding?)",
                path=shard.path,
                fields=absent,
            )

    shas = {shard.grid_sha for shard in shards}
    if len(shas) > 1:
        raise MergeError(
            "sha-mismatch",
            "journals were written for different grids: "
            + ", ".join(f"{shard.path} sha={shard.grid_sha}" for shard in shards),
            shas={shard.path: shard.grid_sha for shard in shards},
        )
    sha = shards[0].grid_sha
    total = shards[0].total_tasks

    counts = {shard.shard_count for shard in shards}
    if len(counts) > 1:
        raise MergeError(
            "shard-count-mismatch",
            "journals disagree on the split: "
            + ", ".join(f"{shard.path}={shard.shard_index}/{shard.shard_count}"
                        for shard in shards),
            counts={shard.path: shard.shard_count for shard in shards},
        )
    count = shards[0].shard_count

    by_index: Dict[int, ShardView] = {}
    for shard in shards:
        if not 0 <= shard.shard_index < count:
            raise MergeError(
                "shard-count-mismatch",
                f"{shard.path}: shard index {shard.shard_index} out of range "
                f"for a {count}-way split",
                path=shard.path,
                index=shard.shard_index,
            )
        if shard.shard_index in by_index:
            raise MergeError(
                "duplicate-shard",
                f"shard {shard.shard_index}/{count} appears in both "
                f"{by_index[shard.shard_index].path} and {shard.path}",
                index=shard.shard_index,
            )
        by_index[shard.shard_index] = shard

    claims: Dict[str, List[ShardView]] = {}
    for shard in shards:
        for tid in shard.task_ids:
            claims.setdefault(tid, []).append(shard)
    duplicated = {tid: owners for tid, owners in claims.items() if len(owners) > 1}
    if duplicated:
        conflicting = sorted(
            tid
            for tid, owners in duplicated.items()
            if len({
                json.dumps(owner.records.get(tid, {}).get("row"), sort_keys=True)
                for owner in owners
            }) > 1
        )
        if conflicting:
            raise MergeError(
                "conflicting-result",
                f"{len(conflicting)} task(s) have conflicting results across "
                f"journals: {_preview(conflicting)}",
                task_ids=conflicting,
            )
        duplicates = sorted(duplicated)
        raise MergeError(
            "duplicate-task",
            f"{len(duplicates)} task(s) are claimed by more than one shard: "
            f"{_preview(duplicates)}",
            task_ids=duplicates,
        )

    for shard in shards:
        foreign = sorted(set(shard.records) - set(shard.task_ids))
        if foreign:
            raise MergeError(
                "foreign-result",
                f"{shard.path} records task(s) outside its shard slice: "
                f"{_preview(foreign)}",
                path=shard.path,
                task_ids=foreign,
            )

    missing_shards = sorted(set(range(count)) - set(by_index))
    if missing_shards:
        if not allow_incomplete:
            raise MergeError(
                "missing-shard",
                f"no journal for shard index(es) {missing_shards} of a "
                f"{count}-way split; pass --allow-incomplete for a partial merge",
                shard_indices=missing_shards,
                shard_count=count,
            )
        log.warning(
            "merging without shard(s) %s of %d: result will be partial",
            missing_shards, count,
        )

    ordered = [by_index[index] for index in sorted(by_index)]
    task_ids = [tid for shard in ordered for tid in shard.task_ids]
    if not missing_shards and len(task_ids) != total:
        if not allow_incomplete:
            raise MergeError(
                "incomplete-coverage",
                f"shard slices cover {len(task_ids)} of {total} grid task(s)",
                covered=len(task_ids),
                total_tasks=total,
            )
        log.warning(
            "shard slices cover only %d of %d grid task(s)", len(task_ids), total
        )

    missing_task_ids = [
        tid for shard in ordered for tid in shard.task_ids
        if tid not in shard.records
    ]
    if missing_task_ids and not allow_incomplete:
        raise MergeError(
            "missing-result",
            f"{len(missing_task_ids)} covered task(s) have no journaled result "
            f"(shard killed mid-sweep or torn lines?): {_preview(missing_task_ids)}",
            task_ids=missing_task_ids,
        )

    records = {
        tid: shard.records[tid]
        for shard in ordered
        for tid in shard.task_ids
        if tid in shard.records
    }
    return MergeResult(
        grid_sha=sha,
        total_tasks=total,
        shards=ordered,
        task_ids=task_ids,
        records=records,
        missing_task_ids=missing_task_ids,
        missing_shards=missing_shards,
    )


def _merge_queue(views: List[ShardView], allow_incomplete: bool) -> MergeResult:
    """Dynamic mode: per-worker journals of one work-stealing queue.

    Ownership is whatever each worker committed, so instead of slice
    arithmetic the validation is: same grid (SHA *and* task-id list), one
    journal per worker, no results outside the grid, and -- because steal
    races can legitimately double-run a task -- duplicate results are kept
    only when their rows are identical (winner chosen deterministically by
    ``ok``-over-``failed`` status, then lowest worker id, so the merge is
    independent of journal argument order).
    """
    for view in views:
        absent = [field for field in _QUEUE_HEADER_FIELDS if field not in view.header]
        if absent:
            raise MergeError(
                "missing-queue-metadata",
                f"{view.path}: queue-mode header lacks {absent}",
                path=view.path,
                fields=absent,
            )

    shas = {view.grid_sha for view in views}
    if len(shas) > 1:
        raise MergeError(
            "sha-mismatch",
            "journals were written for different grids: "
            + ", ".join(f"{view.path} sha={view.grid_sha}" for view in views),
            shas={view.path: view.grid_sha for view in views},
        )
    sha = views[0].grid_sha

    by_worker: Dict[str, ShardView] = {}
    for view in views:
        if view.worker in by_worker:
            raise MergeError(
                "duplicate-worker",
                f"worker {view.worker!r} appears in both "
                f"{by_worker[view.worker].path} and {view.path} "
                "(journal passed twice, or two hosts share a worker id?)",
                worker=view.worker,
            )
        by_worker[view.worker] = view

    grid_ids = views[0].grid_task_ids
    for view in views:
        if view.grid_task_ids != grid_ids or view.total_tasks != len(grid_ids):
            raise MergeError(
                "grid-tasks-mismatch",
                f"{view.path}: header task-id list disagrees with "
                f"{views[0].path} despite matching grid SHA (edited/corrupt "
                "header?)",
                path=view.path,
            )

    grid_id_set = set(grid_ids)
    for view in views:
        foreign = sorted(set(view.records) - grid_id_set)
        if foreign:
            raise MergeError(
                "foreign-result",
                f"{view.path} records task(s) outside the grid: "
                f"{_preview(foreign)}",
                path=view.path,
                task_ids=foreign,
            )

    ordered = [by_worker[worker] for worker in sorted(by_worker)]
    records: Dict[str, Dict[str, object]] = {}
    missing_task_ids: List[str] = []
    conflicting: List[str] = []
    for tid in grid_ids:
        candidates = [
            (view.worker, view.committed[tid])
            for view in ordered
            if tid in view.committed
        ]
        if not candidates:
            missing_task_ids.append(tid)
            continue
        ok = [(worker, rec) for worker, rec in candidates if rec.get("status") == "ok"]
        pool = ok or candidates
        rows = {json.dumps(rec.get("row"), sort_keys=True) for _, rec in pool}
        if len(rows) > 1:
            conflicting.append(tid)
            continue
        # Deterministic winner: candidates are already in sorted-worker
        # order, so the first is the lowest worker id with the best status.
        records[tid] = pool[0][1]
    if conflicting:
        raise MergeError(
            "conflicting-result",
            f"{len(conflicting)} task(s) have conflicting results across "
            f"worker journals: {_preview(conflicting)}",
            task_ids=conflicting,
        )
    if missing_task_ids and not allow_incomplete:
        raise MergeError(
            "missing-result",
            f"{len(missing_task_ids)} grid task(s) have no committed result "
            f"(queue not drained, or workers killed?): {_preview(missing_task_ids)}",
            task_ids=missing_task_ids,
        )
    if missing_task_ids:
        log.warning(
            "merging a partially drained queue: %d of %d task(s) missing",
            len(missing_task_ids), len(grid_ids),
        )
    return MergeResult(
        grid_sha=sha,
        total_tasks=len(grid_ids),
        shards=ordered,
        task_ids=list(grid_ids),
        records=records,
        missing_task_ids=missing_task_ids,
        missing_shards=[],
        schedule=SCHEDULE_QUEUE,
        covered_tasks=len(grid_ids),
    )


# ---------------------------------------------------------------------------
# Merged artifacts
# ---------------------------------------------------------------------------
def write_merged_rows(result: MergeResult, path: PathLike) -> Path:
    """Write grid-ordered rows, byte-identical to ``repro sweep --out``."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.rows, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def merged_events(result: MergeResult) -> EventRecorder:
    """Renumber every task's journaled event stream in grid order.

    Mirrors the parent-side :meth:`EventRecorder.attach` merge an unsharded
    sweep performs, so the reassembled stream is identical to one recorded
    in-process.  Raises ``MergeError("missing-events")`` when a successful
    result carries no event stream (the shard ran without ``--events``).
    """
    recorder = EventRecorder()
    for tid in result.task_ids:
        record = result.records.get(tid)
        if record is None or record.get("status") != "ok":
            continue
        events = record.get("events")
        if events is None:
            raise MergeError(
                "missing-events",
                f"result for {tid!r} carries no event stream "
                "(was the shard run with --events?)",
                task_id=tid,
            )
        recorder.attach(events)  # type: ignore[arg-type]
    return recorder


def write_merged_events(result: MergeResult, path: PathLike) -> int:
    """Write the merged flight record; returns the number of lines.

    The schema line's meta mirrors what the equivalent unsharded
    ``repro sweep --events`` writes, keeping the merged record
    byte-identical to it.
    """
    return write_events_jsonl(
        merged_events(result), path,
        meta={"command": "sweep", "grid_sha": result.grid_sha},
    )


def merged_metrics(result: MergeResult) -> Dict[str, object]:
    """Replay the parent-side grid-order telemetry merge from the journals.

    Returns ``{"counters", "gauges", "histogram_values"}`` exactly as the
    unsharded parent registry would hold them, *except* the wall-clock
    ``sweep.task_seconds`` histogram, which is inherently nondeterministic
    and therefore excluded from the determinism contract.
    """
    registry = MetricsRegistry()
    for tid in result.task_ids:
        record = result.records.get(tid)
        if record is None:
            continue
        registry.counter(f"sweep.tasks_{record.get('status')}").add(1)
        attempts = int(record.get("attempts", 1))
        if attempts > 1:
            registry.counter("sweep.retries").add(attempts - 1)
        metrics = record.get("metrics")
        if metrics:
            registry.merge_snapshot(
                counters=metrics.get("counters"),
                gauges=metrics.get("gauges"),
                histogram_values=metrics.get("histogram_values"),
            )
    snapshot = registry.snapshot()
    return {
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histogram_values": registry.histogram_values(),
    }


def write_merged_journal(result: MergeResult, path: PathLike) -> Path:
    """Write the reassembled journal: one header, grid-ordered records.

    The merged journal is itself a valid (single-shard) sweep journal --
    ``repro report`` renders it and ``repro merge`` accepts it again, where
    an incomplete merge honestly re-reports its gaps.  This holds for queue
    merges too: the dynamic ownership is resolved here, so the output is
    always a plain ``schedule=shard`` journal.  ``merged_from`` records how
    many per-host journals it was assembled from.
    """
    path = Path(path)
    if path.exists():
        path.unlink()
    with SweepJournal(path) as journal:
        journal.append_header(
            grid_sha=result.grid_sha,
            total_tasks=result.total_tasks,
            schedule=SCHEDULE_SHARD,
            shard_index=0,
            shard_count=1,
            shard_task_ids=result.task_ids,
            merged_from=len(result.shards),
        )
        for tid in result.task_ids:
            record = result.records.get(tid)
            if record is not None:
                journal.append(record)
    return path


__all__ = [
    "MergeResult",
    "ShardView",
    "merge_journals",
    "merged_events",
    "merged_metrics",
    "write_merged_events",
    "write_merged_journal",
    "write_merged_rows",
]
