"""Parallel experiment fan-out: grids, journals, runner, queue and merge.

Reproducing a paper table is a grid of independent pipeline runs; this
package fans such grids out with deterministic output (worker count and
scheduling never change numbers), JSONL checkpoint/resume and structured
failure handling.  Three layers:

- **One host**: :func:`run_sweep` shards the grid across a process pool.
- **Many hosts, static**: `ShardSpec`/`run_sweep(shard=...)` partition the
  grid into contiguous slices, one journal per shard.
- **Many hosts, dynamic**: :func:`init_queue`/:func:`run_queue` expose the
  grid as a filesystem-backed work-stealing queue for heterogeneous hosts
  (:mod:`repro.parallel.scheduler`).

Either multi-host mode ends with :func:`merge_journals`, which reassembles
the per-host journals into the byte-identical unsharded result.  See
``README.md`` ("Running a multi-host sweep") and the DESIGN.md
"Distributed sweeps" chapter.
"""

from repro.parallel.grid import (
    ShardSpec,
    SweepGrid,
    SweepTask,
    ensure_unique,
    grid_sha_of,
    task_ids_of,
)
from repro.parallel.journal import (
    JOURNAL_SCHEMA,
    SCHEDULE_QUEUE,
    SCHEDULE_SHARD,
    JournalState,
    SweepJournal,
)
from repro.parallel.merge import (
    MergeResult,
    ShardView,
    merge_journals,
    merged_events,
    merged_metrics,
    write_merged_events,
    write_merged_journal,
    write_merged_rows,
)
from repro.parallel.runner import SweepResult, TaskOutcome, run_sweep
from repro.parallel.scheduler import (
    QueueManifest,
    QueueRunResult,
    QueueStatus,
    init_queue,
    load_queue,
    queue_status,
    run_queue,
)
from repro.parallel.worker import execute_task, initialize_worker, reset_worker_state

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalState",
    "MergeResult",
    "QueueManifest",
    "QueueRunResult",
    "QueueStatus",
    "SCHEDULE_QUEUE",
    "SCHEDULE_SHARD",
    "ShardSpec",
    "ShardView",
    "SweepGrid",
    "SweepJournal",
    "SweepResult",
    "SweepTask",
    "TaskOutcome",
    "ensure_unique",
    "execute_task",
    "grid_sha_of",
    "init_queue",
    "initialize_worker",
    "load_queue",
    "merge_journals",
    "merged_events",
    "merged_metrics",
    "queue_status",
    "reset_worker_state",
    "run_queue",
    "run_sweep",
    "task_ids_of",
    "write_merged_events",
    "write_merged_journal",
    "write_merged_rows",
]
