"""Parallel experiment fan-out: grids, checkpoint journals and the runner.

Reproducing a paper table is a grid of independent pipeline runs; this
package shards such grids across a process pool with deterministic output
(worker count never changes numbers), JSONL checkpoint/resume and
structured failure handling.  `ShardSpec`/`run_sweep(shard=...)` partition
the same grid across *hosts* (one journal per shard), and
:func:`merge_journals` reassembles shard journals into the byte-identical
unsharded result.  See ``README.md`` ("Parallel sweeps").
"""

from repro.parallel.grid import (
    ShardSpec,
    SweepGrid,
    SweepTask,
    ensure_unique,
    grid_sha_of,
)
from repro.parallel.journal import JOURNAL_SCHEMA, JournalState, SweepJournal
from repro.parallel.merge import (
    MergeResult,
    ShardView,
    merge_journals,
    merged_events,
    merged_metrics,
    write_merged_events,
    write_merged_journal,
    write_merged_rows,
)
from repro.parallel.runner import SweepResult, TaskOutcome, run_sweep
from repro.parallel.worker import execute_task, initialize_worker, reset_worker_state

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalState",
    "MergeResult",
    "ShardSpec",
    "ShardView",
    "SweepGrid",
    "SweepJournal",
    "SweepResult",
    "SweepTask",
    "TaskOutcome",
    "ensure_unique",
    "execute_task",
    "grid_sha_of",
    "initialize_worker",
    "merge_journals",
    "merged_events",
    "merged_metrics",
    "reset_worker_state",
    "run_sweep",
    "write_merged_events",
    "write_merged_journal",
    "write_merged_rows",
]
