"""Filesystem-backed work-stealing queue for multi-host sweeps.

Static ``--shard i/n`` slicing (PR 7) gates the whole sweep on its slowest
host.  This module removes that barrier: the canonical grid becomes a queue
of leasable tasks in a shared directory (any POSIX filesystem visible to
every worker -- NFS, a shared bind mount, or one box running N processes),
and heterogeneous workers pull tasks at their own pace.

The protocol is **coordinator-free**: there is no broker process, only
atomic filesystem primitives.

- **Claim**: ``leases/task-NNNNN.json`` created with ``O_CREAT | O_EXCL``.
  Exactly one racer wins; everyone else moves on to the next unclaimed
  task in canonical grid order.
- **Heartbeat**: the owner renews its lease deadline every ``ttl / 3``
  (temp file + ``os.replace``) from a background thread, so a healthy
  worker's lease never expires no matter how long the task runs.
- **Steal**: a lease whose deadline passed (owner died or wedged) is
  stolen by ``os.rename``-ing it to a per-thief name -- rename of one
  source succeeds for exactly one racer -- after which the thief claims
  afresh.  ``sched.steals`` / ``sched.lease_expired`` count these.
- **Commit**: ``done/task-NNNNN.json`` created with ``O_CREAT | O_EXCL``
  *after* the result record is in the worker's journal.  The done marker,
  not the lease, is the authoritative commit: leases are merely an
  optimization that keeps duplicate work rare.

Duplicate completions (possible when a slow-but-alive owner is stolen
from) are resolved at commit time: the loser appends a
``status="superseded"`` tombstone naming the winner, and journal
supersession (later lines win) retracts its earlier result record.
``repro merge`` additionally dedups identical rows and rejects genuinely
conflicting ones, so the headline invariant survives every fault mode:
scheduling may change *who* computes a row, never its value -- merged
rows, metrics and flight record are byte-identical to the unsharded run.

Each worker appends to its own ``journals/<worker>.journal.jsonl`` with a
``schedule="queue"`` header (see :mod:`repro.parallel.journal`), which is
exactly what ``repro merge`` consumes.
"""

from __future__ import annotations

import dataclasses
import errno
import json
import os
import re
import socket
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.errors import SweepError
from repro.log import get_logger
from repro.telemetry import live
from repro.telemetry.timeline import TimelineSampler
from repro.parallel import worker
from repro.parallel.grid import (
    SweepGrid,
    SweepTask,
    ensure_unique,
    grid_sha_of,
    task_ids_of,
)
from repro.parallel.journal import (
    SCHEDULE_QUEUE,
    SweepJournal,
    build_result_record,
)
from repro.parallel.runner import TaskOutcome, TaskRunner, attempt_with_retries

QUEUE_SCHEMA = 1
DEFAULT_LEASE_TTL = 30.0

#: Env var: seconds to sleep before executing each claimed task.  Fault
#: injection for tests and the CI ``queue`` job (an artificially slow
#: worker must not change any merged byte).
FAULT_DELAY_ENV = "REPRO_SCHED_FAULT_DELAY"

MANIFEST_NAME = "queue.json"
LEASE_DIR = "leases"
DONE_DIR = "done"
JOURNAL_DIR = "journals"
#: Live-side (non-deterministic, advisory) artifacts live in their own
#: subdirectories so nothing the merge reads can ever pick them up.
BEACON_DIR = "beacons"
TIMELINE_DIR = "timeline"
EVENTS_DIR = "events"

log = get_logger(__name__)

_WORKER_ID_RE = re.compile(r"[^A-Za-z0-9._-]+")


def default_worker_id() -> str:
    """``<hostname>-<pid>``, sanitized to filename-safe characters."""
    return sanitize_worker_id(f"{socket.gethostname()}-{os.getpid()}")


def sanitize_worker_id(worker_id: str) -> str:
    cleaned = _WORKER_ID_RE.sub("-", str(worker_id)).strip("-")
    if not cleaned:
        raise SweepError(f"worker id {worker_id!r} has no filename-safe characters")
    return cleaned


def _task_name(index: int) -> str:
    return f"task-{index:05d}"


# ---------------------------------------------------------------------------
# Queue manifest
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class QueueManifest:
    """Parsed ``queue.json``: the grid every worker must agree on."""

    root: Path
    grid_sha: str
    tasks: List[SweepTask]
    lease_ttl: float

    @property
    def total_tasks(self) -> int:
        return len(self.tasks)

    @property
    def task_ids(self) -> List[str]:
        return task_ids_of(self.tasks)

    def lease_path(self, index: int) -> Path:
        return self.root / LEASE_DIR / (_task_name(index) + ".json")

    def done_path(self, index: int) -> Path:
        return self.root / DONE_DIR / (_task_name(index) + ".json")

    def journal_path(self, worker_id: str) -> Path:
        return self.root / JOURNAL_DIR / f"{worker_id}.journal.jsonl"

    def journal_paths(self) -> List[Path]:
        return sorted((self.root / JOURNAL_DIR).glob("*.jsonl"))

    def beacon_path(self, worker_id: str) -> Path:
        return self.root / BEACON_DIR / f"{worker_id}{live.BEACON_SUFFIX}"

    def timeline_path(self, worker_id: str) -> Path:
        return self.root / TIMELINE_DIR / f"{worker_id}.timeline.jsonl"

    def events_path(self, worker_id: str) -> Path:
        return self.root / EVENTS_DIR / f"{worker_id}.events.jsonl"


def init_queue(
    path: Union[str, Path],
    grid: Union[SweepGrid, Sequence[SweepTask]],
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> QueueManifest:
    """Create (or attach to) the queue directory for ``grid``.

    Creation is race-safe: the manifest is written to a temp file and
    ``os.link``-ed into place, so when several workers race to initialize
    the same directory exactly one manifest wins and everyone else
    attaches to it.  Attaching to an existing queue validates that its
    grid SHA matches this run's grid -- mixing grids in one queue
    directory is the queue-mode analogue of ``sha-mismatch`` at merge
    time, and is cheaper to reject here.
    """
    if lease_ttl <= 0:
        raise SweepError(f"lease_ttl must be positive, got {lease_ttl}")
    tasks = ensure_unique(grid.expand() if isinstance(grid, SweepGrid) else list(grid))
    sha = grid_sha_of(tasks)
    root = Path(path)
    for sub in (LEASE_DIR, DONE_DIR, JOURNAL_DIR):
        (root / sub).mkdir(parents=True, exist_ok=True)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        payload = {
            "schema": QUEUE_SCHEMA,
            "grid_sha": sha,
            "total_tasks": len(tasks),
            "lease_ttl_seconds": float(lease_ttl),
            "tasks": [task.to_json() for task in tasks],
        }
        tmp = root / f".{MANIFEST_NAME}.{default_worker_id()}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n", encoding="utf-8")
        try:
            os.link(str(tmp), str(manifest_path))
        except OSError as exc:
            if exc.errno != errno.EEXIST:
                raise
            # Another worker initialized first; fall through and attach.
        finally:
            tmp.unlink()
    manifest = load_queue(root)
    if manifest.grid_sha != sha:
        raise SweepError(
            f"queue {root} was initialized for a different grid "
            f"(queue sha {manifest.grid_sha!r} != run sha {sha!r})"
        )
    return manifest


def load_queue(path: Union[str, Path]) -> QueueManifest:
    """Attach to an existing queue directory (validates the manifest)."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise SweepError(f"{root} is not a queue directory (no {MANIFEST_NAME})")
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SweepError(f"queue manifest {manifest_path} is corrupt: {exc}") from None
    if payload.get("schema") != QUEUE_SCHEMA:
        raise SweepError(
            f"queue manifest {manifest_path} has unsupported schema {payload.get('schema')!r}"
        )
    tasks = [SweepTask.from_json(dict(item)) for item in payload.get("tasks", [])]
    sha = str(payload.get("grid_sha", ""))
    if not tasks or grid_sha_of(tasks) != sha:
        raise SweepError(
            f"queue manifest {manifest_path} is inconsistent: task list does not "
            f"hash to its recorded grid_sha"
        )
    return QueueManifest(
        root=root,
        grid_sha=sha,
        tasks=tasks,
        lease_ttl=float(payload.get("lease_ttl_seconds", DEFAULT_LEASE_TTL)),
    )


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class Lease:
    """A live claim on one task, renewable until released.

    The deadline is advisory: passing it makes the lease *stealable*, but
    commit authority always rests with the ``done/`` marker.
    """

    path: Path
    worker: str
    task_id: str
    task_index: int
    ttl: float
    deadline: float
    heartbeats: int = 0

    def payload(self) -> Dict[str, object]:
        return {
            "worker": self.worker,
            "task_id": self.task_id,
            "task_index": self.task_index,
            "ttl_seconds": self.ttl,
            "deadline_unix": self.deadline,
            "heartbeats": self.heartbeats,
        }

    def renew(self) -> bool:
        """Extend the deadline by one TTL; refuses once already expired.

        An expired lease may already have been stolen, and rewriting its
        path could clobber the thief's fresh lease -- so a late owner
        keeps computing (commit-time dedup handles the duplicate) but
        stops touching the lease file.
        """
        now = time.time()
        if now > self.deadline:
            return False
        self.deadline = now + self.ttl
        self.heartbeats += 1
        tmp = self.path.with_suffix(f".renew-{self.worker}.tmp")
        try:
            tmp.write_text(json.dumps(self.payload(), sort_keys=True), encoding="utf-8")
            os.replace(str(tmp), str(self.path))
        except OSError:
            return False
        return True

    def release(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


def _create_lease(manifest: QueueManifest, index: int, worker_id: str) -> Optional[Lease]:
    """Atomically claim task ``index``; ``None`` if someone else holds it."""
    lease = Lease(
        path=manifest.lease_path(index),
        worker=worker_id,
        task_id=manifest.tasks[index].task_id,
        task_index=index,
        ttl=manifest.lease_ttl,
        deadline=time.time() + manifest.lease_ttl,
    )
    try:
        fd = os.open(str(lease.path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno == errno.EEXIST:
            return None
        raise
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(lease.payload(), sort_keys=True))
    return lease


def _lease_expired(path: Path, default_ttl: float) -> bool:
    """Whether the lease at ``path`` is past its deadline.

    A torn/unreadable lease (its owner died inside the initial write)
    falls back to file-mtime + TTL, so it too becomes stealable instead
    of wedging the task forever.
    """
    now = time.time()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return now > float(payload["deadline_unix"])
    except (OSError, ValueError, KeyError):
        try:
            return now > path.stat().st_mtime + default_ttl
        except OSError:
            return False  # vanished: owner released or a thief renamed it


def _steal_lease(manifest: QueueManifest, index: int, worker_id: str) -> bool:
    """Remove an expired lease; True if *this* worker won the removal race.

    ``os.rename`` to a thief-unique name succeeds for exactly one racer
    (everyone else gets ENOENT), which serializes the steal without any
    lock server.  The winner still has to win the fresh ``O_EXCL`` claim
    afterwards -- a third worker may slip in -- but the expired lease can
    never be double-stolen.
    """
    source = manifest.lease_path(index)
    grave = source.with_suffix(f".stolen-by-{worker_id}.tmp")
    try:
        os.rename(str(source), str(grave))
    except OSError:
        return False
    try:
        grave.unlink()
    except OSError:
        pass
    return True


# ---------------------------------------------------------------------------
# Claim / commit
# ---------------------------------------------------------------------------
def claim_next(
    manifest: QueueManifest, worker_id: str
) -> Tuple[Optional[Lease], bool, int]:
    """Claim the first claimable task in canonical grid order.

    Returns ``(lease, stole, open_tasks)``.  ``lease`` is ``None`` when
    nothing is claimable right now.  ``open_tasks`` counts uncommitted
    tasks *seen by the scan*, so it is the full count only when the scan
    completed (``lease is None``); that is the only case callers need it
    -- ``open_tasks > 0`` then means "validly leased elsewhere, poll again
    later" and ``0`` means the queue is drained.  ``stole`` reports
    whether this claim reclaimed an expired lease.
    """
    open_tasks = 0
    for index in range(manifest.total_tasks):
        if manifest.done_path(index).exists():
            continue
        open_tasks += 1
        lease = _create_lease(manifest, index, worker_id)
        stole = False
        if lease is None and _lease_expired(manifest.lease_path(index), manifest.lease_ttl):
            telemetry.counter_add("sched.lease_expired")
            telemetry.event(
                "sched.lease_expired", task_id=manifest.tasks[index].task_id, worker=worker_id
            )
            if _steal_lease(manifest, index, worker_id):
                stole = True
                lease = _create_lease(manifest, index, worker_id)
        if lease is not None:
            telemetry.counter_add("sched.claims")
            if stole:
                telemetry.counter_add("sched.steals")
            telemetry.event(
                "sched.steal" if stole else "sched.claim",
                task_id=lease.task_id,
                worker=worker_id,
            )
            return lease, stole, open_tasks
    return None, False, open_tasks


def try_commit(manifest: QueueManifest, lease: Lease, status: str) -> Tuple[bool, str]:
    """Commit ``lease``'s result; returns ``(won, winning_worker)``.

    First ``O_EXCL`` creation of the ``done/`` marker wins, for ``ok`` and
    ``failed`` alike (a deterministic failure is terminal too -- otherwise
    workers would re-run it forever).  Losers learn the winner's identity
    so their journal tombstone can name it.
    """
    path = manifest.done_path(lease.task_index)
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except OSError as exc:
        if exc.errno != errno.EEXIST:
            raise
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return False, str(payload.get("worker", "unknown"))
        except (OSError, ValueError):
            return False, "unknown"
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"task_id": lease.task_id, "worker": lease.worker, "status": status},
                sort_keys=True,
            )
        )
    return True, lease.worker


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class QueueStatus:
    """Point-in-time snapshot of a queue directory (``repro queue-status``).

    Besides the drain counts, the snapshot carries the live-side view:
    per-lease expiry countdowns, per-worker beacon heartbeat ages, the
    failed-commit count and any structured health causes
    (:data:`repro.errors.HEALTH_CAUSES`) detected over beacons + queue
    state.  All live fields are advisory; the counts alone decide the
    exit code of ``repro queue-status``.
    """

    grid_sha: str
    total_tasks: int
    done: int
    leased: int
    expired: int
    workers: List[str]
    failed: int = 0
    leases: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    heartbeats: Dict[str, float] = dataclasses.field(default_factory=dict)
    health: List[Dict[str, object]] = dataclasses.field(default_factory=list)
    beacons: List[Dict[str, object]] = dataclasses.field(default_factory=list)

    @property
    def open_tasks(self) -> int:
        return self.total_tasks - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total_tasks

    def to_json(self) -> Dict[str, object]:
        # Beacons are exposed in full by `repro watch`; here only their
        # heartbeat ages, to keep queue-status output compact.
        return {
            "grid_sha": self.grid_sha,
            "total_tasks": self.total_tasks,
            "done": self.done,
            "failed": self.failed,
            "open": self.open_tasks,
            "leased": self.leased,
            "expired_leases": self.expired,
            "complete": self.complete,
            "workers": self.workers,
            "leases": self.leases,
            "heartbeats": self.heartbeats,
            "health": self.health,
        }


def queue_status(
    path: Union[str, Path],
    now: Optional[float] = None,
    thresholds: Optional["live.HealthThresholds"] = None,
) -> QueueStatus:
    """Inspect a queue directory without mutating it."""
    manifest = load_queue(path)
    clock = time.time() if now is None else now
    done = failed = leased = expired = 0
    leases: List[Dict[str, object]] = []
    for index in range(manifest.total_tasks):
        done_path = manifest.done_path(index)
        if done_path.exists():
            done += 1
            try:
                marker = json.loads(done_path.read_text(encoding="utf-8"))
                if marker.get("status") == "failed":
                    failed += 1
            except (OSError, ValueError):
                pass
            continue
        lease_path = manifest.lease_path(index)
        if lease_path.exists():
            leased += 1
            is_expired = _lease_expired(lease_path, manifest.lease_ttl)
            if is_expired:
                expired += 1
            entry: Dict[str, object] = {
                "task_id": manifest.tasks[index].task_id,
                "expired": is_expired,
            }
            try:
                payload = json.loads(lease_path.read_text(encoding="utf-8"))
                entry["worker"] = payload.get("worker")
                entry["expires_in_seconds"] = round(
                    float(payload["deadline_unix"]) - clock, 3
                )
            except (OSError, ValueError, KeyError):
                entry["worker"] = None
                entry["expires_in_seconds"] = None
            leases.append(entry)
    workers = [p.name[: -len(".journal.jsonl")] for p in manifest.journal_paths()]
    beacons = live.read_beacons(manifest.root / BEACON_DIR)
    heartbeats = {
        str(b.get("worker", "?")): round(
            max(0.0, clock - float(b.get("updated_unix") or clock)), 3
        )
        for b in beacons
    }
    health = live.detect_health(
        total_tasks=manifest.total_tasks,
        done=done,
        failed=failed,
        beacons=beacons,
        expired_leases=expired,
        now=clock,
        thresholds=thresholds,
    )
    return QueueStatus(
        grid_sha=manifest.grid_sha,
        total_tasks=manifest.total_tasks,
        done=done,
        leased=leased,
        expired=expired,
        workers=workers,
        failed=failed,
        leases=leases,
        heartbeats=heartbeats,
        health=health,
        beacons=beacons,
    )


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------
class _Heartbeat:
    """Background lease renewal: runs until stopped, renewing every ttl/3."""

    def __init__(self, lease: Lease) -> None:
        self._lease = lease
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{lease.task_index}", daemon=True
        )

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def _run(self) -> None:
        interval = max(self._lease.ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            if not self._lease.renew():
                log.warning(
                    "worker %s lost lease on %s (expired before renewal); "
                    "continuing -- commit-time dedup will resolve any duplicate",
                    self._lease.worker,
                    self._lease.task_id,
                )
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


@dataclasses.dataclass
class QueueRunResult:
    """Everything one queue worker produced (its committed share of the grid)."""

    outcomes: List[TaskOutcome]
    grid_sha: str
    total_tasks: int
    worker: str
    journal_path: str
    claims: int = 0
    steals: int = 0
    lease_expired: int = 0
    superseded: int = 0

    @property
    def rows(self) -> List[Dict[str, object]]:
        return [o.row for o in self.outcomes if o.row is not None]

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]


def run_queue(
    queue_dir: Union[str, Path],
    worker_id: Optional[str] = None,
    max_attempts: int = 2,
    backoff_seconds: float = 0.25,
    capture_telemetry: Optional[bool] = None,
    capture_events: Optional[bool] = None,
    task_runner: TaskRunner = worker.execute_task,
    max_tasks: Optional[int] = None,
    wait_for_completion: bool = True,
    poll_seconds: float = 0.2,
    beacon_interval: float = live.DEFAULT_BEACON_INTERVAL,
    timeline_interval: float = 0.0,
) -> QueueRunResult:
    """Work a queue until it drains (or ``max_tasks`` is reached).

    The worker loop: claim the next open task in canonical grid order
    (stealing expired leases), execute it through the same
    retry-with-backoff path as :func:`repro.parallel.runner.run_sweep`,
    append the full result record to this worker's ``schedule=queue``
    journal, then commit the ``done/`` marker.  Append-before-commit
    ordering means a crash between the two leaves an uncommitted-but-
    journaled result: harmless, because another worker re-runs the task
    and ``repro merge`` dedups the identical rows.

    With ``wait_for_completion`` (the default) a worker that finds nothing
    claimable polls until every task is committed -- it may still steal
    from a worker that dies late.  ``max_tasks`` bounds how many tasks
    this call commits (test hook); ``wait_for_completion=False`` makes a
    single pass and returns as soon as nothing is claimable.

    Set ``REPRO_SCHED_FAULT_DELAY=<seconds>`` to sleep before executing
    each claimed task -- the fault-injection hook the tests and the CI
    ``queue`` job use to make one worker pathologically slow without
    changing any merged byte.

    While running, the worker keeps a live status beacon fresh at
    ``<queue>/beacons/<worker>.beacon.json`` every ``beacon_interval``
    seconds (``0`` disables), and with ``timeline_interval > 0`` also
    appends counter snapshots to ``<queue>/timeline/<worker>.timeline.jsonl``.
    Both are sidecar artifacts (:mod:`repro.telemetry.live`): written next
    to, never into, the journal -- merged rows/metrics/flight records are
    byte-identical with or without them.
    """
    if max_attempts < 1:
        raise SweepError(f"max_attempts must be positive, got {max_attempts}")
    manifest = load_queue(queue_dir)
    wid = sanitize_worker_id(worker_id) if worker_id is not None else default_worker_id()
    if capture_telemetry is None:
        capture_telemetry = telemetry.enabled()
    if capture_events is None:
        capture_events = telemetry.events_enabled()
    fault_delay = float(os.environ.get(FAULT_DELAY_ENV, "0") or "0")

    journal_path = manifest.journal_path(wid)
    state = SweepJournal.load(journal_path)
    if state.header is not None:
        if state.header.get("grid_sha") != manifest.grid_sha:
            raise SweepError(
                f"journal {journal_path} was written for a different grid than queue "
                f"{manifest.root}"
            )
        if state.header.get("worker") != wid:
            raise SweepError(
                f"journal {journal_path} belongs to worker "
                f"{state.header.get('worker')!r}, not {wid!r}"
            )

    committed: List[Tuple[int, TaskOutcome]] = []
    counters = {"claims": 0, "steals": 0, "lease_expired": 0, "superseded": 0}

    beacon: Optional[live.BeaconWriter] = None
    sampler: Optional[TimelineSampler] = None
    failed_count = 0

    def _beacon_counts() -> Dict[str, object]:
        return {
            "tasks_done": len(committed),
            "tasks_failed": failed_count,
            "claims": counters["claims"],
            "steals": counters["steals"],
            "lease_expired": counters["lease_expired"],
            "superseded": counters["superseded"],
        }

    if beacon_interval and beacon_interval > 0:
        beacon = live.BeaconWriter(
            manifest.beacon_path(wid), worker=wid, interval=beacon_interval
        ).start()
    if timeline_interval and timeline_interval > 0:
        sampler = TimelineSampler(
            manifest.timeline_path(wid),
            interval=timeline_interval,
            extra_fn=lambda: {"worker": wid, **_beacon_counts()},
        ).start()

    journal = SweepJournal(journal_path).open()
    try:
        if state.header is None:
            journal.append_header(
                grid_sha=manifest.grid_sha,
                total_tasks=manifest.total_tasks,
                schedule=SCHEDULE_QUEUE,
                worker=wid,
                grid_task_ids=manifest.task_ids,
            )
        elif state.records:
            journal.append(
                {"kind": "resume", "grid_sha": manifest.grid_sha, "skipped": len(state.records)}
            )
        log.info(
            "queue worker %s on %s: %d task(s), ttl=%.1fs",
            wid, manifest.root, manifest.total_tasks, manifest.lease_ttl,
        )
        while True:
            if max_tasks is not None and counters["claims"] >= max_tasks:
                break
            lease, stole, open_tasks = claim_next(manifest, wid)
            if lease is None:
                if open_tasks == 0 or not wait_for_completion:
                    break
                if beacon is not None:
                    beacon.update(phase="idle", current_task=None, **_beacon_counts())
                time.sleep(poll_seconds)
                continue
            counters["claims"] += 1
            if stole:
                counters["steals"] += 1
                counters["lease_expired"] += 1
            if beacon is not None:
                beacon.update(
                    phase="running", current_task=lease.task_id, **_beacon_counts()
                )
            heartbeat = _Heartbeat(lease).start()
            try:
                if fault_delay > 0:
                    time.sleep(fault_delay)
                payload = {
                    "task": manifest.tasks[lease.task_index].to_json(),
                    "telemetry": capture_telemetry,
                    "events": capture_events,
                }
                attempt, outcome_dict = attempt_with_retries(
                    payload, task_runner, max_attempts, backoff_seconds
                )
            finally:
                heartbeat.stop()
            outcome = TaskOutcome(
                task=manifest.tasks[lease.task_index],
                status=str(outcome_dict.get("status", "failed")),
                attempts=attempt,
                duration_seconds=float(outcome_dict.get("duration_seconds", 0.0)),
                row=outcome_dict.get("row"),
                error=outcome_dict.get("error"),
                metrics=outcome_dict.get("metrics"),
                spans=outcome_dict.get("spans"),
                events=outcome_dict.get("events"),
            )
            # Append the full result BEFORE committing: a crash in the gap
            # duplicates work (another worker re-runs the task) but never
            # loses a committed task's bytes.
            journal.append(
                build_result_record(
                    outcome.task.task_id,
                    outcome.status,
                    attempt,
                    outcome.duration_seconds,
                    row=outcome.row,
                    error=outcome.error,
                    metrics=outcome.metrics,
                    spans=outcome.spans,
                    events=outcome.events,
                    worker=wid,
                )
            )
            won, winner = try_commit(manifest, lease, outcome.status)
            if won:
                committed.append((lease.task_index, outcome))
                if outcome.status == "failed":
                    failed_count += 1
                telemetry.event(
                    "sched.commit", task_id=outcome.task.task_id, worker=wid,
                    status=outcome.status,
                )
            else:
                # Lost the duplicate-completion race (we were stolen from,
                # yet finished anyway).  Retract our record: the tombstone
                # supersedes it on journal load, and names the winner so
                # merge -- and operators -- can audit the race.
                counters["superseded"] += 1
                telemetry.counter_add("sched.superseded")
                telemetry.event(
                    "sched.superseded", task_id=outcome.task.task_id, worker=wid,
                    winner=winner,
                )
                journal.append(
                    build_result_record(
                        outcome.task.task_id,
                        "superseded",
                        attempt,
                        outcome.duration_seconds,
                        worker=wid,
                        cause="duplicate-completion",
                        winner=winner,
                    )
                )
            lease.release()
            if beacon is not None:
                beacon.update(phase="running", current_task=None, **_beacon_counts())
    finally:
        journal.close()
        if beacon is not None:
            beacon.update(**_beacon_counts())
            beacon.stop(phase="done")
        if sampler is not None:
            sampler.stop()
    # Grid-ordered, like SweepResult.outcomes -- steals can commit tasks
    # out of claim order.
    outcomes = [outcome for _, outcome in sorted(committed, key=lambda item: item[0])]
    log.info(
        "queue worker %s finished: %d committed, %d stolen, %d superseded",
        wid, len(outcomes), counters["steals"], counters["superseded"],
    )
    return QueueRunResult(
        outcomes=outcomes,
        grid_sha=manifest.grid_sha,
        total_tasks=manifest.total_tasks,
        worker=wid,
        journal_path=str(journal_path),
        claims=counters["claims"],
        steals=counters["steals"],
        lease_expired=counters["lease_expired"],
        superseded=counters["superseded"],
    )
