"""Sweep grid specification: the (method x model x device x seed) lattice.

Every Table II / Table III reproduction is an embarrassingly parallel grid
of independent :class:`~repro.core.pipeline.BackdoorPipeline` runs.  A
:class:`SweepGrid` names that grid declaratively; :meth:`SweepGrid.expand`
turns it into an ordered list of :class:`SweepTask` descriptors that are
plain JSON-able data, so they can be pickled to pool workers and journaled
to disk verbatim.

The expanded order is the **canonical grid order**: result rows, journal
coverage, telemetry merges and the content SHA (:func:`grid_sha_of`) all
follow it.  Both multi-host modes partition exactly this order --
:class:`ShardSpec` statically into contiguous slices, and the work-stealing
queue (:mod:`repro.parallel.scheduler`) dynamically task by task -- which
is why ``repro merge`` can always reassemble the byte-identical unsharded
result no matter who computed which row.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SweepError
from repro.utils.rng import derive_seed


@dataclasses.dataclass(frozen=True)
class SweepTask:
    """One fully-determined experiment: everything a worker needs to run it.

    ``scale`` holds the :class:`~repro.core.experiment.ExperimentScale`
    fields as a plain dict (``None`` means "resolve from the environment in
    the worker"), keeping the descriptor JSON-serializable end to end.
    """

    method: str
    model: str
    device: str
    seed: int
    dataset: str = "cifar10"
    target_class: int = 2
    scale: Optional[Dict[str, object]] = None

    @property
    def task_id(self) -> str:
        """Stable journal/checkpoint key (unique within a grid)."""
        return (
            f"{self.method}|{self.model}|{self.dataset}|{self.device}|seed={self.seed}"
        )

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SweepTask":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise SweepError(f"unknown SweepTask fields {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class SweepGrid:
    """A declarative (method x model x device x seed) sweep."""

    methods: Sequence[str]
    models: Sequence[str]
    devices: Sequence[str] = ("K1",)
    seeds: Sequence[int] = (0,)
    dataset: str = "cifar10"
    target_class: int = 2
    scale: Optional[Dict[str, object]] = None

    @classmethod
    def with_replicas(cls, base_seed: int, replicas: int, **kwargs: object) -> "SweepGrid":
        """Grid over ``replicas`` independent seeds derived from ``base_seed``.

        Seeds come from :func:`repro.utils.rng.derive_seed`, so the
        replica -> seed mapping is stable across processes and platforms.
        All tasks within a replica share the seed (every method attacks the
        same victim, as in the paper's tables).
        """
        if replicas < 1:
            raise SweepError(f"replicas must be positive, got {replicas}")
        seeds = tuple(derive_seed(base_seed, "replica", index) for index in range(replicas))
        return cls(seeds=seeds, **kwargs)  # type: ignore[arg-type]

    def expand(self) -> List[SweepTask]:
        """Ordered task list: model-major, then device, seed, and method.

        The order is the canonical "grid order" -- result rows, journal
        totals and telemetry merges all follow it, which is what keeps
        sweep output independent of worker scheduling.
        """
        if not self.methods or not self.models or not self.devices or not self.seeds:
            raise SweepError("grid has an empty axis (methods/models/devices/seeds)")
        tasks = [
            SweepTask(
                method=method,
                model=model,
                device=device,
                seed=int(seed),
                dataset=self.dataset,
                target_class=self.target_class,
                scale=dict(self.scale) if self.scale is not None else None,
            )
            for model, device, seed, method in itertools.product(
                self.models, self.devices, self.seeds, self.methods
            )
        ]
        seen: Dict[str, SweepTask] = {}
        for task in tasks:
            if task.task_id in seen:
                raise SweepError(f"duplicate task {task.task_id!r} in grid")
            seen[task.task_id] = task
        return tasks

    def grid_sha(self) -> str:
        """Content hash of the expanded grid (guards journal/grid mismatch)."""
        return grid_sha_of(self.expand())

    def shard(self, index: int, count: int) -> List[SweepTask]:
        """The ``index``-th of ``count`` contiguous slices of :meth:`expand`.

        Shards partition the canonical grid order: they are disjoint,
        jointly exhaustive, and concatenating them in index order
        reproduces :meth:`expand` exactly.  This is what lets ``count``
        hosts each run one shard and ``repro merge`` reassemble the full
        sweep byte-for-byte.
        """
        return list(ShardSpec(index, count).slice(self.expand()))


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One host's slice of a sweep: shard ``index`` of ``count``.

    The partition is contiguous over the canonical grid order (the first
    ``total % count`` shards get one extra task), so every shard's tasks
    are consecutive in :meth:`SweepGrid.expand` order and the merged grid
    is just the shards concatenated by index.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SweepError(f"shard count must be positive, got {self.count}")
        if not 0 <= self.index < self.count:
            raise SweepError(
                f"shard index must satisfy 0 <= index < count, got {self.index}/{self.count}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI's ``i/n`` form (e.g. ``--shard 0/4``)."""
        parts = str(text).split("/")
        try:
            index, count = (int(part) for part in parts)
        except ValueError:
            raise SweepError(f"shard spec must look like 'i/n', got {text!r}") from None
        return cls(index, count)

    @classmethod
    def coerce(cls, value: "ShardLike") -> "ShardSpec":
        """Accept a ShardSpec, an ``'i/n'`` string, or an ``(i, n)`` pair."""
        if isinstance(value, ShardSpec):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        try:
            index, count = value
        except (TypeError, ValueError):
            raise SweepError(f"cannot interpret {value!r} as a shard spec") from None
        return cls(int(index), int(count))

    def bounds(self, total: int) -> Tuple[int, int]:
        """Half-open ``[start, end)`` slice of a ``total``-task grid."""
        base, extra = divmod(total, self.count)
        start = self.index * base + min(self.index, extra)
        return start, start + base + (1 if self.index < extra else 0)

    def slice(self, tasks: Sequence[SweepTask]) -> Tuple[SweepTask, ...]:
        """This shard's tasks (possibly empty when ``count > len(tasks)``)."""
        start, end = self.bounds(len(tasks))
        return tuple(tasks[start:end])

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


ShardLike = Union["ShardSpec", str, Tuple[int, int], Iterable[int]]


def grid_sha_of(tasks: Sequence[SweepTask]) -> str:
    """SHA-256 over the canonical JSON of an ordered task list."""
    canonical = json.dumps([t.to_json() for t in tasks], sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def task_ids_of(tasks: Sequence[SweepTask]) -> List[str]:
    """Grid-ordered task ids (the journal/queue keys) of a task list."""
    return [task.task_id for task in tasks]


def ensure_unique(tasks: Sequence[SweepTask]) -> Tuple[SweepTask, ...]:
    """Validate that every task id is unique (journal keys require it)."""
    seen: Dict[str, SweepTask] = {}
    for task in tasks:
        if task.task_id in seen:
            raise SweepError(f"duplicate task {task.task_id!r}")
        seen[task.task_id] = task
    return tuple(tasks)
