"""The n-sided Rowhammer engine.

Hammer *intensity* abstracts how hard a pattern disturbs a victim row; a
vulnerable cell flips when the intensity reaches its strength (see
:class:`~repro.memory.dram.VulnerableCell`).  The model captures the two
facts the paper's methodology rests on:

- **TRR (DDR4)**: double-sided hammering is fully mitigated (intensity 0);
  n-sided patterns with 3+ aggressors bypass the tracker (TRRespass), with
  yield growing in the number of sides (Fig. 5).
- **Diminishing precision**: 15 sides maximizes flips (used for profiling)
  but also maximizes accidental flips per page; 7 sides reaches roughly half
  the cells, cutting accidental flips to ~4 per target page (Fig. 6) -- which
  is why the online attack uses 7 sides.

Hammering one row takes 800 ms with a 15-sided pattern and 400 ms with a
7-sided pattern (Section VII); the engine tracks simulated wall-clock cost.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro import telemetry
from repro.errors import RowhammerError
from repro.memory.dram import DRAMArray
from repro.rowhammer.device_profiles import DeviceProfile

# Paper-reported per-row hammer times (seconds).
HAMMER_SECONDS_15_SIDED = 0.8
HAMMER_SECONDS_7_SIDED = 0.4


@dataclasses.dataclass
class HammerResult:
    """Flips produced by one hammer invocation on one victim row."""

    bank: int
    row: int
    flips: List[Tuple[int, int, int]]  # (column, bit, direction)
    n_sides: int
    seconds: float


class HammerEngine:
    """Drives n-sided hammer patterns against a simulated DRAM device."""

    MAX_SIDES = 15

    def __init__(self, dram: DRAMArray, profile: DeviceProfile) -> None:
        self.dram = dram
        self.profile = profile
        self.total_seconds = 0.0

    # ------------------------------------------------------------------
    # Physics model
    # ------------------------------------------------------------------
    def intensity(self, n_sides: int) -> float:
        """Hammer intensity in [0, 1] for an n-sided pattern on this device."""
        if n_sides < 1:
            raise RowhammerError(f"n_sides must be at least 1, got {n_sides}")
        n_sides = min(n_sides, self.MAX_SIDES)
        if self.profile.trr_protected:
            # TRR tracks and refreshes the victims of 1- and 2-sided patterns.
            if n_sides <= 2:
                return 0.0
            return ((n_sides - 2) / (self.MAX_SIDES - 2)) ** 0.65
        # DDR3: Table I's values were measured with double-sided patterns,
        # so double-sided reaches (essentially) every vulnerable cell;
        # single-sided is markedly weaker.
        if n_sides < 2:
            return 0.45
        return 1.0

    def seconds_per_row(self, n_sides: int) -> float:
        """Simulated wall-clock cost of hammering one victim row."""
        # Linear in the number of aggressor activations, anchored to the
        # paper's measured 7-sided (400 ms) and 15-sided (800 ms) times.
        return HAMMER_SECONDS_7_SIDED * n_sides / 7.0

    # ------------------------------------------------------------------
    # Hammering
    # ------------------------------------------------------------------
    def hammer_victim(self, bank: int, row: int, n_sides: int) -> HammerResult:
        """Hammer one victim row with an n-sided aggressor pattern.

        The caller is responsible for owning the aggressor rows around the
        victim (the placement machinery in :mod:`repro.memory.mmap` ensures
        this); the engine models the disturbance physics.
        """
        if not 0 <= row < self.dram.geometry.rows_per_bank:
            raise RowhammerError(f"victim row {row} out of range")
        flips = self.dram.hammer_row(bank, row, self.intensity(n_sides))
        seconds = self.seconds_per_row(n_sides)
        self.total_seconds += seconds
        if telemetry.enabled():
            telemetry.counter_add("hammer.attempts")
            telemetry.counter_add("hammer.flips", len(flips))
            telemetry.counter_add("hammer.simulated_seconds", seconds)
            telemetry.histogram_observe("hammer.flips_per_attempt", len(flips))
        if telemetry.events_enabled():
            telemetry.event(
                "hammer.attempt",
                bank=bank,
                row=row,
                n_sides=n_sides,
                flips=len(flips),
                seconds=seconds,
            )
        return HammerResult(bank=bank, row=row, flips=flips, n_sides=n_sides, seconds=seconds)

    def hammer_sweep(
        self, bank: int, rows: Sequence[int], n_sides: int
    ) -> List[HammerResult]:
        """Hammer a set of victim rows (profiling sweeps use this)."""
        return [self.hammer_victim(bank, row, n_sides) for row in rows]

    def double_sided_effective(self) -> bool:
        """Whether the classic double-sided pattern works on this device."""
        return self.intensity(2) > 0.0
