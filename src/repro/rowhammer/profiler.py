"""Memory profiling for faults (Section IV-A2).

Profiling scans attacker-owned memory for flippable cells before the victim
runs: victim rows are filled with all-zeros to expose 0->1 flips, hammered,
read back, then filled with all-ones for the 1->0 direction.  The result is
a :class:`FlipProfile`: the device's usable fault map in page coordinates,
which the templating step matches against the weight file's needed flips.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import RowhammerError
from repro.memory.geometry import PAGE_FRAME_SIZE
from repro.memory.mmap import MappedFile, OSMemoryModel
from repro.rowhammer.hammer import HammerEngine

# Paper: profiling 128 MB takes 94 minutes (Section IV-A2).
PROFILE_MINUTES_PER_128MB = 94.0


@dataclasses.dataclass(frozen=True)
class FlipRecord:
    """One repeatable bit flip found during profiling."""

    frame: int  # physical page frame number
    byte_offset: int  # offset within the 4 KB page
    bit: int  # 0 = LSB .. 7 = MSB
    direction: int  # +1: 0->1, -1: 1->0
    n_sides: int  # hammer pattern that produced it

    @property
    def key(self) -> Tuple[int, int, int]:
        """Page-relative identity: (byte_offset, bit, direction)."""
        return (self.byte_offset, self.bit, self.direction)


@dataclasses.dataclass
class FlipProfile:
    """The fault map of a profiled buffer."""

    records: List[FlipRecord]
    profiled_frames: List[int]
    n_sides: int

    @property
    def num_flips(self) -> int:
        return len(self.records)

    @property
    def num_frames(self) -> int:
        return len(self.profiled_frames)

    def by_frame(self) -> Dict[int, List[FlipRecord]]:
        out: Dict[int, List[FlipRecord]] = {frame: [] for frame in self.profiled_frames}
        for record in self.records:
            out.setdefault(record.frame, []).append(record)
        return out

    def flips_per_page(self) -> np.ndarray:
        """Flip count for every profiled frame (zeros included)."""
        per_frame = self.by_frame()
        return np.array([len(per_frame[f]) for f in self.profiled_frames])

    @property
    def avg_flips_per_page(self) -> float:
        if not self.profiled_frames:
            return 0.0
        return self.num_flips / self.num_frames

    @property
    def flip_fraction(self) -> float:
        """Fraction of profiled cells that flipped (Fig. 2's 0.036 %)."""
        total_bits = self.num_frames * PAGE_FRAME_SIZE * 8
        return self.num_flips / total_bits if total_bits else 0.0

    def direction_counts(self) -> Tuple[int, int]:
        """(num 0->1, num 1->0); the paper observes these nearly equal."""
        up = sum(1 for r in self.records if r.direction == 1)
        return up, self.num_flips - up

    def estimated_minutes(self) -> float:
        """Profiling wall-clock estimate from the paper's 94 min / 128 MB."""
        profiled_bytes = self.num_frames * PAGE_FRAME_SIZE
        return PROFILE_MINUTES_PER_128MB * profiled_bytes / (128 * 1024 * 1024)

    def merge(self, other: "FlipProfile") -> "FlipProfile":
        """Combine profiles of disjoint buffers (multiple 128 MB passes)."""
        overlap = set(self.profiled_frames) & set(other.profiled_frames)
        if overlap:
            raise RowhammerError(f"profiles overlap on frames {sorted(overlap)[:5]}...")
        return FlipProfile(
            records=self.records + other.records,
            profiled_frames=self.profiled_frames + other.profiled_frames,
            n_sides=min(self.n_sides, other.n_sides),
        )


class MemoryProfiler:
    """Profiles attacker-owned frames for repeatable bit flips."""

    def __init__(self, os_model: OSMemoryModel, engine: HammerEngine) -> None:
        self.os = os_model
        self.engine = engine

    def profile_mapping(self, mapping: MappedFile, n_sides: int) -> FlipProfile:
        """Profile every frame of an (anonymous) attacker mapping."""
        frames = [mapping.frames[page] for page in sorted(mapping.frames)]
        return self.profile_frames(frames, n_sides)

    def profile_frames(self, frames: Sequence[int], n_sides: int) -> FlipProfile:
        """Profile explicit physical frames for both flip directions."""
        geometry = self.os.dram.geometry
        records: List[FlipRecord] = []
        # Group frames by the DRAM row that contains them; rows are the
        # hammering granularity, pages the reporting granularity.
        rows: Dict[Tuple[int, int], List[int]] = {}
        for frame in frames:
            address = geometry.frame_address(frame)
            rows.setdefault((address.bank, address.row), []).append(frame)

        frame_set = set(frames)
        with telemetry.span("profiler.sweep", frames=len(frames), n_sides=n_sides):
            for (bank, row), row_frames in rows.items():
                records.extend(
                    self._profile_row(bank, row, frame_set, n_sides)
                )
        if telemetry.enabled():
            telemetry.counter_add("profiler.rows_hammered", len(rows))
            telemetry.counter_add("profiler.flips_found", len(records))
            if frames:
                telemetry.gauge_set("profiler.flip_yield_per_page", len(records) / len(frames))
        if telemetry.events_enabled():
            telemetry.event(
                "profiler.summary",
                frames=len(frames),
                rows=len(rows),
                flips=len(records),
                n_sides=n_sides,
            )
        return FlipProfile(records=records, profiled_frames=list(frames), n_sides=n_sides)

    def _profile_row(
        self, bank: int, row: int, frame_set: set, n_sides: int
    ) -> List[FlipRecord]:
        geometry = self.os.dram.geometry
        row_bytes = geometry.row_size_bytes
        all_frames = geometry.frames_in_row(bank, row)
        base_frame = all_frames[0] if all_frames else None
        if base_frame is None:
            return []
        original = [self.os.dram.read_frame(f) for f in all_frames]

        records: List[FlipRecord] = []
        for fill, direction in ((0x00, 1), (0xFF, -1)):
            pattern = np.full(row_bytes, fill, dtype=np.uint8)
            self.os.dram.write_bytes(
                all_frames[0] * PAGE_FRAME_SIZE, pattern
            )
            result = self.engine.hammer_victim(bank, row, n_sides)
            for column, bit, flip_direction in result.flips:
                if flip_direction != direction:
                    continue
                frame = base_frame + column // PAGE_FRAME_SIZE
                if frame not in frame_set:
                    continue
                records.append(
                    FlipRecord(
                        frame=frame,
                        byte_offset=column % PAGE_FRAME_SIZE,
                        bit=bit,
                        direction=direction,
                        n_sides=n_sides,
                    )
                )
        # Restore whatever the frames held before profiling.
        for frame, payload in zip(all_frames, original):
            self.os.dram.write_frame(frame, payload)
        return records
