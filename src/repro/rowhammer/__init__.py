"""Rowhammer device profiles, hammer engine, fault profiler and templating."""

from repro.rowhammer.device_profiles import (
    DDR3_PROFILES,
    DDR4_PROFILES,
    DEVICE_PROFILES,
    DeviceProfile,
    get_profile,
)
from repro.rowhammer.hammer import HammerEngine
from repro.rowhammer.profiler import FlipProfile, FlipRecord, MemoryProfiler
from repro.rowhammer.templating import PageTemplater, TemplateMatch

__all__ = [
    "DeviceProfile",
    "DDR3_PROFILES",
    "DDR4_PROFILES",
    "DEVICE_PROFILES",
    "get_profile",
    "HammerEngine",
    "MemoryProfiler",
    "FlipProfile",
    "FlipRecord",
    "PageTemplater",
    "TemplateMatch",
]
