"""Rowhammer device profiles, hammer engine, fault profiler and templating."""

from repro.rowhammer.device_profiles import (
    DDR3_PROFILES,
    DDR4_PROFILES,
    DEVICE_PROFILES,
    DeviceProfile,
    available_profiles,
    get_profile,
    register_profile,
    reset_profiles,
)
from repro.rowhammer.hammer import HammerEngine
from repro.rowhammer.profiler import FlipProfile, FlipRecord, MemoryProfiler
from repro.rowhammer.templating import PageTemplater, TemplateMatch

__all__ = [
    "DeviceProfile",
    "DDR3_PROFILES",
    "DDR4_PROFILES",
    "DEVICE_PROFILES",
    "available_profiles",
    "get_profile",
    "register_profile",
    "reset_profiles",
    "HammerEngine",
    "MemoryProfiler",
    "FlipProfile",
    "FlipRecord",
    "PageTemplater",
    "TemplateMatch",
]
