"""Matching required weight-file flips to profiled flippy pages.

Given the offline phase's required bit flips (grouped by weight-file page)
and a :class:`~repro.rowhammer.profiler.FlipProfile`, the templater finds a
physical frame whose profiled flips cover *all* of a page's requirements:
same in-page byte offset, same bit index, same direction.  This implements
the paper's empirical finding: a match essentially always exists when a page
needs one flip, and essentially never when it needs two or more (Eq. 2),
which is what destroys the BadNet/FT/TBT baselines online.

When several candidate frames match, the templater prefers the frame with
the fewest *other* profiled flips, minimizing accidental corruption.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

from repro import telemetry
from repro.quant.weightfile import BitLocation
from repro.rowhammer.profiler import FlipProfile


@dataclasses.dataclass
class TemplateMatch:
    """Outcome of matching target pages to flippy frames.

    Attributes
    ----------
    assignments:
        weight-file page index -> physical frame chosen for it.
    matched_pages / unmatched_pages:
        Target pages that did / did not find a compatible frame.
    expected_accidental_flips:
        frame -> number of profiled flips in that frame beyond the targets.
    """

    assignments: Dict[int, int]
    matched_pages: List[int]
    unmatched_pages: List[int]
    expected_accidental_flips: Dict[int, int]

    @property
    def match_fraction(self) -> float:
        total = len(self.matched_pages) + len(self.unmatched_pages)
        return len(self.matched_pages) / total if total else 1.0


class PageTemplater:
    """Assigns weight-file target pages to compatible flippy frames."""

    def __init__(self, profile: FlipProfile) -> None:
        self.profile = profile
        self._frame_flips: Dict[int, Set[Tuple[int, int, int]]] = {}
        for record in profile.records:
            self._frame_flips.setdefault(record.frame, set()).add(record.key)

    @property
    def flippy_frames(self) -> List[int]:
        return sorted(self._frame_flips)

    def frames_covering(self, requirements: Sequence[Tuple[int, int, int]]) -> List[int]:
        """All frames whose profiled flips include every requirement."""
        needed = set(requirements)
        return [
            frame
            for frame, flips in self._frame_flips.items()
            if needed <= flips
        ]

    def match(self, targets_by_page: Dict[int, List[BitLocation]]) -> TemplateMatch:
        """Assign each target page a distinct compatible frame.

        Pages needing the most flips are matched first (they have the fewest
        candidate frames); each frame is used at most once.
        """
        assignments: Dict[int, int] = {}
        matched: List[int] = []
        unmatched: List[int] = []
        accidental: Dict[int, int] = {}
        used_frames: Set[int] = set()

        pages = sorted(targets_by_page, key=lambda p: -len(targets_by_page[p]))
        for page in pages:
            locations = targets_by_page[page]
            requirements = [(loc.byte_offset, loc.bit_index, loc.direction) for loc in locations]
            candidates = [f for f in self.frames_covering(requirements) if f not in used_frames]
            if not candidates:
                unmatched.append(page)
                if telemetry.events_enabled():
                    telemetry.event(
                        "template.page",
                        page=int(page),
                        required=len(requirements),
                        matched=False,
                    )
                continue
            # Prefer the cleanest frame: fewest flips beyond the targets.
            best = min(candidates, key=lambda f: len(self._frame_flips[f]))
            used_frames.add(best)
            assignments[page] = best
            matched.append(page)
            accidental[best] = len(self._frame_flips[best]) - len(set(requirements))
            if telemetry.events_enabled():
                telemetry.event(
                    "template.page",
                    page=int(page),
                    required=len(requirements),
                    matched=True,
                    frame=int(best),
                    candidates=len(candidates),
                    accidental=accidental[best],
                )
        return TemplateMatch(
            assignments=assignments,
            matched_pages=sorted(matched),
            unmatched_pages=sorted(unmatched),
            expected_accidental_flips=accidental,
        )


def group_targets_by_page(locations: Sequence[BitLocation]) -> Dict[int, List[BitLocation]]:
    """Bucket required bit flips by their weight-file page."""
    grouped: Dict[int, List[BitLocation]] = {}
    for location in locations:
        grouped.setdefault(location.page, []).append(location)
    return grouped
