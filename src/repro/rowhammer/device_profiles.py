"""Measured DRAM device fault statistics (Table I of the paper).

Each profile records the average number of Rowhammer bit flips per 4 KB
memory page observed on that device -- the single parameter that drives the
target-page probability analysis (Eq. 1/2) and our DRAM fault simulation.
DDR3 numbers come from double-sided profiles [Tatar et al. 2018]; DDR4
numbers from the authors' n-sided profiling with TRR-protected chips.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Fault statistics and mitigation posture of one DRAM device."""

    name: str
    ddr_version: int
    flips_per_page: float
    trr_protected: bool

    def __post_init__(self) -> None:
        if self.ddr_version not in (3, 4):
            raise ValueError(f"ddr_version must be 3 or 4, got {self.ddr_version}")
        if self.flips_per_page < 0:
            raise ValueError(f"flips_per_page must be non-negative, got {self.flips_per_page}")


def _ddr3(name: str, flips: float) -> DeviceProfile:
    return DeviceProfile(name=name, ddr_version=3, flips_per_page=flips, trr_protected=False)


def _ddr4(name: str, flips: float) -> DeviceProfile:
    return DeviceProfile(name=name, ddr_version=4, flips_per_page=flips, trr_protected=True)


# Table I, left/right columns.
DDR3_PROFILES: Dict[str, DeviceProfile] = {
    p.name: p
    for p in (
        _ddr3("A1", 12.48),
        _ddr3("A2", 1.92),
        _ddr3("A3", 1.11),
        _ddr3("A4", 15.85),
        _ddr3("B1", 1.05),
        _ddr3("C1", 1.60),
        _ddr3("D1", 1.08),
        _ddr3("E1", 12.46),
        _ddr3("E2", 2.02),
        _ddr3("F1", 28.77),
        _ddr3("G1", 1.62),
        _ddr3("H1", 1.66),
        _ddr3("I1", 8.28),
        _ddr3("J1", 1.25),
    )
}

DDR4_PROFILES: Dict[str, DeviceProfile] = {
    p.name: p
    for p in (
        _ddr4("K1", 100.68),
        _ddr4("K2", 109.48),
        _ddr4("L1", 3.12),
        _ddr4("L2", 13.98),
        _ddr4("M1", 2.04),
        _ddr4("N1", 2.72),
    )
}

DEVICE_PROFILES: Dict[str, DeviceProfile] = {**DDR3_PROFILES, **DDR4_PROFILES}

# The chip the paper's main experiments profile: 381,962 flips across the
# 32,768 pages of a 128 MB buffer (Section IV-A2, Fig. 2).
PAPER_DDR3_REFERENCE = _ddr3("paper-ddr3", 381_962 / 32_768)

# Custom (user-measured) profiles registered at runtime.  This is the one
# piece of process-global mutable state in the module: parallel sweep
# workers call :func:`reset_profiles` during initialization so profiles
# registered in the parent never leak into (or differ across) workers.
_CUSTOM_PROFILES: Dict[str, DeviceProfile] = {}


def register_profile(profile: DeviceProfile, overwrite: bool = False) -> DeviceProfile:
    """Register a custom device profile for lookup by :func:`get_profile`.

    The built-in Table I tags cannot be shadowed; a duplicate custom tag
    requires ``overwrite=True``.
    """
    if profile.name in DEVICE_PROFILES:
        raise ValueError(f"cannot shadow built-in Table I profile {profile.name!r}")
    if profile.name in _CUSTOM_PROFILES and not overwrite:
        raise ValueError(
            f"custom profile {profile.name!r} already registered (overwrite=True to replace)"
        )
    _CUSTOM_PROFILES[profile.name] = profile
    return profile


def reset_profiles() -> None:
    """Drop every custom profile, restoring the built-in Table I set."""
    _CUSTOM_PROFILES.clear()


def available_profiles() -> Dict[str, DeviceProfile]:
    """All resolvable profiles: the Table I set plus custom registrations."""
    return {**DEVICE_PROFILES, **_CUSTOM_PROFILES}


def get_profile(name: str) -> DeviceProfile:
    """Look up a device profile by tag (Table I, e.g. ``"K1"``, or custom)."""
    try:
        return _CUSTOM_PROFILES.get(name) or DEVICE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown DRAM device {name!r}; available: {sorted(available_profiles())}"
        ) from None
