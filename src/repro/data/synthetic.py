"""Synthetic image-classification datasets replacing CIFAR-10 / ImageNet.

The reproduction has no network access to download the original datasets, so
we generate a deterministic synthetic substitute that preserves the property
the attack depends on: a CNN trained on it reaches high clean accuracy, and a
small trigger patch can be optimized to hijack its predictions.

Each class is defined by a bank of smooth "prototype" textures (low-pass
filtered class-seeded noise plus class-specific oriented sinusoids).  Every
sample is a random convex combination of its class prototypes, randomly
shifted, with additive pixel noise — so the class signal is distributed over
the full image (as in natural images) rather than in any single pixel.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset
from repro.utils.rng import SeedLike, new_rng, spawn_rngs


@dataclasses.dataclass(frozen=True)
class SyntheticSpec:
    """Shape and difficulty knobs of a synthetic classification task.

    Defaults are calibrated so a width-scaled ResNet-20 lands at roughly the
    paper's CIFAR-10 test accuracy (~91 %): matching the accuracy regime also
    matches the logit-margin regime the backdoor optimization operates in
    (a saturated 100 %-accuracy model is unrealistically hard to backdoor).
    """

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    prototypes_per_class: int = 4
    noise_std: float = 0.45
    max_shift: int = 6
    smoothing_sigma: float = 2.0


class SyntheticImageClassification:
    """Deterministic generator of a synthetic image classification task.

    The same ``seed`` always produces identical prototypes, so train and
    test splits drawn from one instance share a single ground-truth concept.
    """

    def __init__(self, spec: SyntheticSpec = SyntheticSpec(), seed: SeedLike = 0) -> None:
        self.spec = spec
        proto_rng, sample_seed_rng = spawn_rngs(seed, 2)
        self._prototypes = self._build_prototypes(proto_rng)
        # Draw a fixed seed per split so splits are disjoint and reproducible
        # no matter how many samples are requested from each.
        self._split_seeds = {
            split: int(sample_seed_rng.integers(0, 2**63))
            for split in ("train", "test", "attacker")
        }

    def _build_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """Class prototype bank of shape (classes, protos, C, H, W) in [0, 1]."""
        spec = self.spec
        size = spec.image_size
        yy, xx = np.mgrid[0:size, 0:size].astype(np.float64) / size
        protos = np.empty(
            (spec.num_classes, spec.prototypes_per_class, spec.channels, size, size),
            dtype=np.float32,
        )
        for cls in range(spec.num_classes):
            for p in range(spec.prototypes_per_class):
                base = rng.normal(size=(spec.channels, size, size))
                base = ndimage.gaussian_filter(base, sigma=(0, spec.smoothing_sigma, spec.smoothing_sigma))
                # Class-specific oriented sinusoid gives a stable global cue.
                freq = 1.5 + cls * 0.7 + p * 0.23
                angle = (cls * np.pi / spec.num_classes) + p * 0.3
                wave = np.sin(2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy))
                pattern = base + 0.9 * wave[None, :, :]
                pattern -= pattern.min()
                peak = pattern.max()
                if peak > 0:
                    pattern /= peak
                protos[cls, p] = pattern.astype(np.float32)
        return protos

    def generate(self, count: int, split: str = "train") -> ArrayDataset:
        """Generate ``count`` samples for the given ``split``.

        Splits differ only in their sampling RNG stream: "train", "test" and
        "attacker" draw disjoint deterministic streams from the task seed, so
        the attacker's "small unseen test set" from the threat model never
        overlaps the training data.
        """
        if split not in self._split_seeds:
            raise ValueError(
                f"unknown split {split!r}; expected one of {sorted(self._split_seeds)}"
            )
        rng = new_rng(self._split_seeds[split])

        spec = self.spec
        images = np.empty((count, spec.channels, spec.image_size, spec.image_size), dtype=np.float32)
        labels = rng.integers(0, spec.num_classes, size=count).astype(np.int64)
        for i in range(count):
            images[i] = self._render_sample(int(labels[i]), rng)
        return ArrayDataset(images, labels)

    def _render_sample(self, cls: int, rng: np.random.Generator) -> np.ndarray:
        spec = self.spec
        weights = rng.dirichlet(np.ones(spec.prototypes_per_class))
        image = np.tensordot(weights, self._prototypes[cls], axes=(0, 0))
        if spec.max_shift > 0:
            shift_y = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
            shift_x = int(rng.integers(-spec.max_shift, spec.max_shift + 1))
            image = np.roll(image, (shift_y, shift_x), axis=(1, 2))
        image = image + rng.normal(0.0, spec.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0).astype(np.float32)


def make_cifar10_like(
    train_count: int = 2000,
    test_count: int = 1000,
    attacker_count: int = 128,
    seed: SeedLike = 0,
) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    """Build train/test/attacker splits of a CIFAR-10-like task.

    Matches the paper's setup: the attacker holds 128 unseen test images
    (Section V-A); TA/ASR are evaluated on the larger held-out test split.
    """
    task = SyntheticImageClassification(SyntheticSpec(num_classes=10, image_size=32), seed=seed)
    return (
        task.generate(train_count, "train"),
        task.generate(test_count, "test"),
        task.generate(attacker_count, "attacker"),
    )


def make_imagenet_like(
    train_count: int = 3000,
    test_count: int = 1000,
    attacker_count: int = 256,
    num_classes: int = 40,
    image_size: int = 32,
    seed: SeedLike = 1,
) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    """Build a scaled-down ImageNet-like task (more classes than CIFAR).

    The paper uses 1000-class ImageNet with 1024 attacker images; we scale the
    class count down so CPU training stays feasible while preserving the
    harder many-class regime that drives the larger N_flip the paper reports.
    """
    spec = SyntheticSpec(num_classes=num_classes, image_size=image_size)
    task = SyntheticImageClassification(spec, seed=seed)
    return (
        task.generate(train_count, "train"),
        task.generate(test_count, "test"),
        task.generate(attacker_count, "attacker"),
    )
