"""Datasets, data loaders and backdoor trigger utilities."""

from repro.data.dataset import ArrayDataset, DataLoader, Dataset
from repro.data.synthetic import SyntheticImageClassification, make_cifar10_like, make_imagenet_like
from repro.data.trigger import TriggerPattern

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageClassification",
    "make_cifar10_like",
    "make_imagenet_like",
    "TriggerPattern",
]
