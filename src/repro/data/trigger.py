"""Backdoor trigger patterns.

The paper initializes the trigger as a black square in the bottom-right
corner of the image (10x10 on 32x32 CIFAR inputs) and then learns the pixel
values inside the masked region with FGSM steps (Eq. 4).  A trigger is thus a
(mask, pattern) pair: applying it replaces the masked pixels with the learned
pattern, leaving the rest of the image untouched.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np


@dataclasses.dataclass
class TriggerPattern:
    """A spatial trigger: boolean mask plus per-pixel pattern values.

    Attributes
    ----------
    mask:
        Boolean array of shape (C, H, W); True marks trigger pixels.
    pattern:
        Float array of shape (C, H, W); only masked entries are used.
    clip_range:
        Valid pixel range; applied after every update and application.
    """

    mask: np.ndarray
    pattern: np.ndarray
    clip_range: Tuple[float, float] = (0.0, 1.0)

    def __post_init__(self) -> None:
        self.mask = np.asarray(self.mask, dtype=bool)
        self.pattern = np.asarray(self.pattern, dtype=np.float32)
        if self.mask.shape != self.pattern.shape:
            raise ValueError(
                f"mask shape {self.mask.shape} != pattern shape {self.pattern.shape}"
            )
        low, high = self.clip_range
        if low >= high:
            raise ValueError(f"invalid clip range {self.clip_range}")
        self.pattern = np.clip(self.pattern, low, high)

    @classmethod
    def black_square(
        cls,
        image_shape: Tuple[int, int, int],
        size: int,
        corner: str = "bottom_right",
        clip_range: Tuple[float, float] = (0.0, 1.0),
    ) -> "TriggerPattern":
        """Build the paper's initial trigger: a black square patch.

        ``image_shape`` is (C, H, W); ``size`` is the square side in pixels
        (10 for CIFAR in the paper, scaled proportionally otherwise).
        """
        channels, height, width = image_shape
        if size <= 0 or size > min(height, width):
            raise ValueError(f"trigger size {size} invalid for image {image_shape}")
        mask = np.zeros(image_shape, dtype=bool)
        if corner == "bottom_right":
            mask[:, height - size :, width - size :] = True
        elif corner == "top_left":
            mask[:, :size, :size] = True
        elif corner == "top_right":
            mask[:, :size, width - size :] = True
        elif corner == "bottom_left":
            mask[:, height - size :, :size] = True
        else:
            raise ValueError(f"unknown corner {corner!r}")
        pattern = np.full(image_shape, clip_range[0], dtype=np.float32)
        return cls(mask=mask, pattern=pattern, clip_range=clip_range)

    @classmethod
    def square(
        cls,
        image_shape: Tuple[int, int, int],
        size: int,
        value: float = 0.5,
        corner: str = "bottom_right",
        clip_range: Tuple[float, float] = (0.0, 1.0),
    ) -> "TriggerPattern":
        """A square patch initialized to a constant ``value``.

        The paper initializes triggers black; on narrow CPU-scale models an
        all-black patch can land in a fully dead-ReLU region and mask the
        FGSM gradient, so the attacks here start from mid-gray by default
        (the optimized pattern, not the initialization, is what matters).
        """
        trigger = cls.black_square(image_shape, size, corner=corner, clip_range=clip_range)
        trigger.pattern = np.where(
            trigger.mask, np.float32(value), np.float32(clip_range[0])
        ).astype(np.float32)
        return trigger

    @property
    def num_trigger_pixels(self) -> int:
        """Number of pixels (per channel counted separately) in the mask."""
        return int(self.mask.sum())

    def apply(self, images: np.ndarray) -> np.ndarray:
        """Stamp the trigger onto a batch (N, C, H, W) or single image (C, H, W)."""
        images = np.asarray(images, dtype=np.float32)
        single = images.ndim == 3
        batch = images[None] if single else images
        if batch.shape[1:] != self.mask.shape:
            raise ValueError(
                f"image shape {batch.shape[1:]} does not match trigger {self.mask.shape}"
            )
        out = batch.copy()
        out[:, self.mask] = self.pattern[self.mask]
        low, high = self.clip_range
        np.clip(out, low, high, out=out)
        return out[0] if single else out

    def fgsm_update(self, gradient: np.ndarray, epsilon: float) -> None:
        """Apply an FGSM step (Eq. 4) to the masked pattern values.

        ``gradient`` is dF/d(input) averaged over the attack batch; the update
        ascends the attack objective: pattern += eps * sign(grad), masked.
        """
        gradient = np.asarray(gradient)
        if gradient.shape != self.pattern.shape:
            raise ValueError(
                f"gradient shape {gradient.shape} != pattern shape {self.pattern.shape}"
            )
        step = epsilon * np.sign(gradient)
        self.pattern = self.pattern + np.where(self.mask, step, 0.0).astype(np.float32)
        low, high = self.clip_range
        self.pattern = np.clip(self.pattern, low, high)

    def copy(self) -> "TriggerPattern":
        return TriggerPattern(
            mask=self.mask.copy(), pattern=self.pattern.copy(), clip_range=self.clip_range
        )
