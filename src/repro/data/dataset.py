"""Minimal dataset/loader abstractions (PyTorch-like, NumPy-backed)."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class Dataset:
    """Abstract indexable dataset of (image, label) pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays.

    Parameters
    ----------
    images:
        Array of shape (N, C, H, W), float32 in [0, 1].
    labels:
        Integer array of shape (N,).
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {images.shape}")
        if len(images) != len(labels):
            raise ValueError(
                f"images ({len(images)}) and labels ({len(labels)}) length mismatch"
            )
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.images[indices], self.labels[indices])

    def sample(self, count: int, rng: SeedLike = None) -> "ArrayDataset":
        """Randomly sample ``count`` items without replacement."""
        rng = new_rng(rng)
        if count > len(self):
            raise ValueError(f"cannot sample {count} items from {len(self)}")
        return self.subset(rng.choice(len(self), size=count, replace=False))


class DataLoader:
    """Iterate a dataset in (optionally shuffled) mini-batches of arrays."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: SeedLike = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.images[batch], self.dataset.labels[batch]
