"""Package-wide stdlib logging.

Every module logs through a child of the single ``repro`` logger::

    from repro.log import get_logger

    log = get_logger(__name__)
    log.info("pool rebuilt after worker crash")

Library rules apply: the package installs a :class:`logging.NullHandler`
at import, never configures the root logger, and emits nothing unless the
embedding application (or the ``repro`` CLI via :func:`configure`) opts in.
The CLI exposes ``--log-level``/``-v``; diagnostics go to stderr so piped
stdout output (tables, JSON) stays clean.
"""

from __future__ import annotations

import logging
from typing import Optional

LOGGER_NAME = "repro"

_LEVELS = ("critical", "error", "warning", "info", "debug")

logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The package logger, or a namespaced child for one module.

    Pass ``__name__``; a ``repro.`` prefix is kept as-is and anything else
    is nested under it, so filtering on ``repro`` always catches everything.
    """
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def configure(level: str = "warning") -> logging.Logger:
    """Attach a stderr handler to the package logger (CLI entry points only).

    Idempotent: re-invoking replaces the level, not the handler, so repeated
    :func:`repro.cli.main` calls (tests, notebooks) don't stack handlers.
    """
    if level not in _LEVELS:
        raise ValueError(f"log level must be one of {_LEVELS}, got {level!r}")
    logger = logging.getLogger(LOGGER_NAME)
    handler = next(
        (
            h
            for h in logger.handlers
            if isinstance(h, logging.StreamHandler)
            and not isinstance(h, logging.NullHandler)
        ),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()  # stderr
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    return logger


def verbosity_to_level(verbose: int, base: str = "warning") -> str:
    """Map ``-v`` counts onto levels: 0 -> base, 1 -> info, 2+ -> debug."""
    if verbose <= 0:
        return base
    return "info" if verbose == 1 else "debug"
