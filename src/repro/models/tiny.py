"""A deliberately small CNN victim for fast sweeps and CI smoke runs.

Not an architecture from the paper: ``tinycnn`` exists so the parallel
sweep runner, the determinism test suite and the ``repro bench`` sweep
timing can exercise the full (train, quantize, attack, hammer) path in
seconds.  At ``width=1.0`` it spans several 4 KB weight-file pages
(~14k parameters), so the page-level constraints C1/C2 and the online
massaging are all meaningfully exercised.
"""

from __future__ import annotations

from repro.nn import Conv2d, GlobalAvgPool2d, Linear, Module
from repro.utils.rng import SeedLike


class TinySweepCNN(Module):
    """One strided conv stage, global average pooling and a two-layer head.

    The parameter mass deliberately sits in the Linear head rather than the
    conv: Linears are nearly free to evaluate under the NumPy autodiff
    engine while still occupying weight-file pages, which keeps per-task
    sweep time in the seconds range.
    """

    def __init__(self, num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> None:
        super().__init__()
        c1 = max(4, int(round(8 * width)))
        hidden = max(64, int(round(768 * width)))
        self.conv1 = Conv2d(3, c1, 3, stride=2, padding=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.hidden = Linear(c1, hidden, rng=rng)
        self.fc = Linear(hidden, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        out = self.conv1(x).relu()
        return self.fc(self.hidden(self.pool(out)).relu())

    def forward_stages(self):
        """Stage decomposition for the evaluation engine (mirrors ``forward``)."""
        return [
            ("conv1", lambda x: self.conv1(x).relu(), (self.conv1,)),
            ("pool", self.pool, (self.pool,)),
            ("hidden", lambda x: self.hidden(x).relu(), (self.hidden,)),
            ("fc", self.fc, (self.fc,)),
        ]


def tinycnn(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> TinySweepCNN:
    """Factory registered as ``"tinycnn"`` in the model zoo."""
    return TinySweepCNN(num_classes=num_classes, width=width, rng=rng)
