"""Model zoo: the ResNet and VGG architectures evaluated in the paper."""

from repro.models.resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    resnet18,
    resnet20,
    resnet32,
    resnet34,
    resnet50,
)
from repro.models.tiny import TinySweepCNN, tinycnn
from repro.models.vgg import VGG, vgg11, vgg16
from repro.models.registry import MODEL_REGISTRY, build_model

__all__ = [
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18",
    "resnet20",
    "resnet32",
    "resnet34",
    "resnet50",
    "TinySweepCNN",
    "tinycnn",
    "VGG",
    "vgg11",
    "vgg16",
    "MODEL_REGISTRY",
    "build_model",
]
