"""Name-based model construction used by experiments and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.resnet import resnet18, resnet20, resnet32, resnet34, resnet50
from repro.models.tiny import tinycnn
from repro.models.vgg import vgg11, vgg16
from repro.nn.module import Module
from repro.utils.rng import SeedLike

MODEL_REGISTRY: Dict[str, Callable[..., Module]] = {
    "tinycnn": tinycnn,
    "resnet18": resnet18,
    "resnet20": resnet20,
    "resnet32": resnet32,
    "resnet34": resnet34,
    "resnet50": resnet50,
    "vgg11": vgg11,
    "vgg16": vgg16,
}


def build_model(name: str, num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> Module:
    """Construct a registered model by name."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory(num_classes=num_classes, width=width, rng=rng)
