"""ResNet architectures from the paper's evaluation.

Two families are provided, matching the sources cited in Section V-A:

- CIFAR-style ResNet-20/32 (Idelbayev's pytorch_resnet_cifar10): a 3x3 stem
  with 16 channels and three stages of ``n`` basic blocks each.
- ResNet-18/34/50 (torchvision-style, adapted to 32x32 inputs): four stages
  of basic or bottleneck blocks starting at 64 channels.

A ``width`` multiplier scales every stage's channel count so CPU-scale
reproduction remains faithful in structure while staying trainable.
"""

from __future__ import annotations

from typing import List, Sequence, Type, Union

from repro.autodiff.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    Sequential,
)
from repro.utils.rng import SeedLike, new_rng


def _scaled(channels: int, width: float) -> int:
    return max(4, int(round(channels * width)))


class BasicBlock(Module):
    """Two 3x3 convolutions with an identity or projection shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int, rng) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class Bottleneck(Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block (ResNet-50 family)."""

    expansion = 4

    def __init__(self, in_channels: int, planes: int, stride: int, rng) -> None:
        super().__init__()
        out_channels = planes * self.expansion
        self.conv1 = Conv2d(in_channels, planes, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = Conv2d(planes, planes, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(planes)
        self.conv3 = Conv2d(planes, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class ResNet(Module):
    """Generic ResNet over 32x32 inputs.

    Parameters
    ----------
    block:
        :class:`BasicBlock` or :class:`Bottleneck`.
    stage_blocks:
        Number of residual blocks per stage.
    stage_channels:
        Base channel count per stage (before the width multiplier).
    num_classes:
        Output dimension of the final linear classifier.
    width:
        Channel multiplier applied to every stage.
    in_channels:
        Input image channels.
    """

    def __init__(
        self,
        block: Type[Union[BasicBlock, Bottleneck]],
        stage_blocks: Sequence[int],
        stage_channels: Sequence[int],
        num_classes: int = 10,
        width: float = 1.0,
        in_channels: int = 3,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if len(stage_blocks) != len(stage_channels):
            raise ValueError("stage_blocks and stage_channels must have equal length")
        rng = new_rng(rng)
        stem_channels = _scaled(stage_channels[0], width)
        self.conv1 = Conv2d(in_channels, stem_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(stem_channels)

        stages: List[Module] = []
        current = stem_channels
        for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
            planes = _scaled(channels, width)
            stride = 1 if stage_index == 0 else 2
            layers: List[Module] = []
            for block_index in range(blocks):
                layers.append(block(current, planes, stride if block_index == 0 else 1, rng))
                current = planes * block.expansion
            stages.append(Sequential(*layers))
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward_features(self, x: Tensor) -> Tensor:
        """Convolutional feature maps before pooling (used by GradCAM)."""
        out = self.bn1(self.conv1(x)).relu()
        return self.stages(out)

    def forward_head(self, features: Tensor) -> Tensor:
        """Classifier head on top of :meth:`forward_features` output."""
        return self.fc(self.pool(features))

    def forward_penultimate(self, x: Tensor) -> Tensor:
        """The feature vector fed into the final classifier (TBT uses this)."""
        return self.pool(self.forward_features(x))

    def forward(self, x: Tensor) -> Tensor:
        return self.forward_head(self.forward_features(x))

    def forward_stages(self):
        """Stage decomposition for the evaluation engine (mirrors ``forward``).

        Residual blocks are the finest safe granularity: each block's output
        depends on all of its convolutions, batch norms and shortcut, so a
        flip anywhere inside a block invalidates exactly that block onward.
        """
        stages = [("stem", lambda x: self.bn1(self.conv1(x)).relu(), (self.conv1, self.bn1))]
        for stage_name in self.stages._order:
            stage = getattr(self.stages, stage_name)
            for block_name in stage._order:
                block = getattr(stage, block_name)
                stages.append((f"stages.{stage_name}.{block_name}", block, (block,)))
        stages.append(("pool", self.pool, (self.pool,)))
        stages.append(("fc", self.fc, (self.fc,)))
        return stages


def resnet20(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> ResNet:
    """CIFAR-style ResNet-20: 3 stages x 3 basic blocks, 16/32/64 channels."""
    return ResNet(BasicBlock, [3, 3, 3], [16, 32, 64], num_classes, width, rng=rng)


def resnet32(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> ResNet:
    """CIFAR-style ResNet-32: 3 stages x 5 basic blocks."""
    return ResNet(BasicBlock, [5, 5, 5], [16, 32, 64], num_classes, width, rng=rng)


def resnet18(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> ResNet:
    """ResNet-18 (torchvision layout, 32x32-adapted stem)."""
    return ResNet(BasicBlock, [2, 2, 2, 2], [64, 128, 256, 512], num_classes, width, rng=rng)


def resnet34(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> ResNet:
    """ResNet-34 (torchvision layout, 32x32-adapted stem)."""
    return ResNet(BasicBlock, [3, 4, 6, 3], [64, 128, 256, 512], num_classes, width, rng=rng)


def resnet50(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> ResNet:
    """ResNet-50 with bottleneck blocks (torchvision layout)."""
    return ResNet(Bottleneck, [3, 4, 6, 3], [64, 128, 256, 512], num_classes, width, rng=rng)
