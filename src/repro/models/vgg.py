"""VGG-11/16 architectures (Section V-F generalization experiments)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.autodiff.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import SeedLike, new_rng

# Standard VGG stage configurations ("M" denotes 2x2 max pooling).
_VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"],
}


def _scaled(channels: int, width: float) -> int:
    return max(4, int(round(channels * width)))


class VGG(Module):
    """VGG with batch norm, global average pooling and a linear classifier."""

    def __init__(
        self,
        config: Sequence[Union[int, str]],
        num_classes: int = 10,
        width: float = 1.0,
        in_channels: int = 3,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        rng = new_rng(rng)
        layers: List[Module] = []
        current = in_channels
        for item in config:
            if item == "M":
                layers.append(MaxPool2d(2))
                continue
            channels = _scaled(int(item), width)
            layers.append(Conv2d(current, channels, 3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(channels))
            layers.append(ReLU())
            current = channels
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(current, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward_features(self, x: Tensor) -> Tensor:
        """Convolutional feature maps before pooling (used by GradCAM)."""
        return self.features(x)

    def forward_head(self, features: Tensor) -> Tensor:
        """Classifier head on top of :meth:`forward_features` output."""
        return self.fc(self.pool(features))

    def forward_penultimate(self, x: Tensor) -> Tensor:
        """The feature vector fed into the final classifier (TBT uses this)."""
        return self.pool(self.forward_features(x))

    def forward(self, x: Tensor) -> Tensor:
        return self.forward_head(self.forward_features(x))

    def forward_stages(self):
        """Stage decomposition for the evaluation engine (mirrors ``forward``).

        Each conv/bn/relu/pool layer of ``features`` is its own stage, so a
        flip in layer k only recomputes layers >= k of the feature stack.
        """
        stages = [
            (f"features.{name}", getattr(self.features, name), (getattr(self.features, name),))
            for name in self.features._order
        ]
        stages.append(("pool", self.pool, (self.pool,)))
        stages.append(("fc", self.fc, (self.fc,)))
        return stages


def vgg11(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> VGG:
    """VGG-11 with batch normalization."""
    return VGG(_VGG_CONFIGS["vgg11"], num_classes, width, rng=rng)


def vgg16(num_classes: int = 10, width: float = 1.0, rng: SeedLike = None) -> VGG:
    """VGG-16 with batch normalization."""
    return VGG(_VGG_CONFIGS["vgg16"], num_classes, width, rng=rng)
