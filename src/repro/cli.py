"""Command-line interface for the reproduction's experiments.

Usage (after ``pip install -e .``):

    python -m repro.cli table2 --model resnet20
    python -m repro.cli attack --model resnet20 --target 2 --flips 4
    python -m repro.cli probability --flips-per-page 34 --pages 32768
    python -m repro.cli devices
    python -m repro.cli bench --out BENCH_pipeline.json --events flight.jsonl --trace trace.json
    python -m repro.cli bench-check benchmarks/BENCH_pipeline.json BENCH_pipeline.json
    python -m repro.cli bench-trend benchmarks/BENCH_pipeline.json BENCH_pipeline.*.json
    python -m repro.cli sweep --models resnet20 --devices K1,A1 --workers 4 --out rows.json
    python -m repro.cli sweep --shard 0/2 --out s0.json --journal shard0.jsonl   # host A
    python -m repro.cli sweep --shard 1/2 --out s1.json --journal shard1.jsonl   # host B
    python -m repro.cli merge shard0.jsonl shard1.jsonl --out rows.json
    python -m repro.cli sweep --queue /shared/q --out w.json    # any number of hosts
    python -m repro.cli queue-status /shared/q
    python -m repro.cli watch /shared/q                # live fleet dashboard
    python -m repro.cli watch /shared/q --once --json  # one snapshot, for scripts
    python -m repro.cli merge /shared/q --out rows.json
    python -m repro.cli report flight.jsonl
    python -m repro.cli report rows.json.journal.jsonl --format json

Global ``--log-level``/``-v`` flags route the package's stdlib logging to
stderr; recorded-run artifacts (flight records, traces, manifests, reports)
are byte-deterministic under a fixed seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _shard_type(text: str):
    """argparse type for ``--shard i/n`` (validated ShardSpec)."""
    from repro.errors import SweepError
    from repro.parallel.grid import ShardSpec

    try:
        return ShardSpec.parse(text)
    except SweepError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.rowhammer import available_profiles

    profiles = available_profiles()
    print(f"{'tag':<5} {'DDR':>4} {'flips/page':>11} {'TRR':>5}")
    for name in sorted(profiles):
        profile = profiles[name]
        print(
            f"{name:<5} {profile.ddr_version:>4} {profile.flips_per_page:>11.2f} "
            f"{'yes' if profile.trr_protected else 'no':>5}"
        )
    return 0


def _cmd_probability(args: argparse.Namespace) -> int:
    from repro.analysis import target_page_probability_approx

    for offsets in range(1, args.max_offsets + 1):
        p = target_page_probability_approx(offsets, args.flips_per_page, args.pages)
        print(f"k+l={offsets}: P(find target page) = {p:.8f}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.analysis import evaluate_attack
    from repro.attacks import AttackConfig, CFTAttack
    from repro.core import pretrained_quantized_model

    if args.events:
        telemetry.enable_events()
        # Fresh flight record per invocation (repeated main() calls share
        # the process-wide recorder).
        telemetry.get_recorder().reset()
    qmodel, _, test_data, attacker_data = pretrained_quantized_model(
        args.model, dataset=args.dataset, width=args.width, epochs=args.epochs, seed=args.seed
    )
    config = AttackConfig(
        target_class=args.target,
        n_flip_budget=args.flips,
        iterations=args.iterations,
        epsilon=0.01,
        seed=args.seed,
    )
    result = CFTAttack(config, bit_reduction=not args.no_bit_reduction).run(
        qmodel, attacker_data
    )
    evaluation = evaluate_attack(qmodel.module, test_data, result.trigger, args.target)
    if args.events:
        from repro.telemetry.manifest import (
            build_manifest,
            manifest_path_for,
            write_manifest,
        )

        lines = telemetry.dump_events(args.events, meta={"command": "attack"})
        write_manifest(
            build_manifest(
                "attack",
                config={
                    "model": args.model,
                    "dataset": args.dataset,
                    "target_class": args.target,
                    "n_flip_budget": args.flips,
                    "iterations": args.iterations,
                    "bit_reduction": not args.no_bit_reduction,
                },
                seeds=[args.seed],
                artifacts={"events": args.events},
            ),
            manifest_path_for(args.events),
        )
        print(f"wrote flight record ({lines} lines) to {args.events}")
    print(f"method: {result.method}")
    print(f"N_flip: {result.n_flip} / {qmodel.total_bits} bits")
    print(f"TA:     {evaluation.test_accuracy:.2%}")
    print(f"ASR:    {evaluation.attack_success_rate:.2%}")
    if args.save:
        from repro.utils.serialization import save_offline_result

        save_offline_result(result, args.save)
        print(f"saved offline result to {args.save}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.bench import run_bench

    report = run_bench(
        out=args.out,
        jsonl=args.jsonl,
        seed=args.seed,
        epochs=args.epochs,
        iterations=args.iterations,
        n_flip_budget=args.flips,
        include_sweep=not args.skip_sweep,
        include_engine=not args.skip_engine,
        include_kernels=not args.skip_kernels,
        events=args.events,
        trace=args.trace,
        manifest=not args.no_manifest,
    )
    bench_seconds = report["spans"]["bench"]["total_seconds"]
    counters = report["counters"]
    if args.openmetrics:
        from repro.telemetry.export import write_openmetrics

        lines = write_openmetrics(report, args.openmetrics)
        print(f"wrote OpenMetrics textfile ({lines} lines) to {args.openmetrics}")
    print(f"wrote {args.out} ({bench_seconds:.2f} s end-to-end)")
    for name in sorted(counters):
        print(f"  {name}: {counters[name]:g}")
    for name, value in sorted(report["gauges"].items()):
        if value is not None:
            print(f"  {name}: {value:g}")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.telemetry import read_json
    from repro.telemetry.regression import (
        cache_hit_rate_line,
        compare_reports,
        format_comparison,
    )

    candidate = read_json(args.candidate)
    deviations = compare_reports(
        read_json(args.baseline),
        candidate,
        tolerance=args.tolerance,
        time_tolerance=args.time_tolerance,
        min_seconds=args.min_seconds,
    )
    print(format_comparison(deviations))
    print(cache_hit_rate_line(candidate))
    return 1 if any(d.failed for d in deviations) else 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry import read_json
    from repro.telemetry.regression import format_trend

    runs = [(os.path.basename(path), read_json(path)) for path in args.reports]
    print(format_trend(runs))
    # Informational only: trend drift never gates a build (bench-check does).
    return 0


def _cmd_queue_sweep(args: argparse.Namespace, grid) -> int:
    """``repro sweep --queue DIR``: work the shared queue as one worker.

    Per-worker output differs from a plain sweep on purpose: ``--out``
    holds only the rows *this* worker committed, ``--events`` holds the
    scheduler's decision log (claims, steals, commits) rather than a task
    flight record, and no manifest is written -- the deterministic
    artifacts of a queue-scheduled sweep are the ones ``repro merge``
    produces from every worker's journal.
    """
    import json

    from repro import telemetry
    from repro.core.experiment import format_sweep
    from repro.errors import SweepError
    from repro.parallel.scheduler import init_queue, run_queue

    if args.shard is not None or args.resume:
        print("sweep: --queue is incompatible with --shard/--resume "
              "(queue workers claim tasks dynamically; a restarted worker "
              "just reattaches to the queue directory)", file=sys.stderr)
        return 2
    if args.workers != 1:
        print("sweep: --queue workers run tasks inline; start more "
              "`repro sweep --queue` processes instead of --workers",
              file=sys.stderr)
        return 2
    if args.events:
        telemetry.enable_events()
        telemetry.get_recorder().reset()
    try:
        manifest = init_queue(args.queue, grid, lease_ttl=args.lease_ttl)
        result = run_queue(
            args.queue,
            worker_id=args.worker_id,
            max_attempts=args.max_attempts,
            backoff_seconds=args.backoff,
            beacon_interval=args.beacon_interval,
            timeline_interval=args.timeline_interval,
        )
    except SweepError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result.rows, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.events:
        meta = {"command": "sweep", "schedule": "queue", "worker": result.worker}
        lines = telemetry.dump_events(args.events, meta=meta)
        # A copy inside the queue directory makes it self-contained:
        # `repro report <queue-dir>` renders the fleet's scheduler
        # decisions from events/*.events.jsonl without extra bookkeeping.
        queue_copy = manifest.events_path(result.worker)
        queue_copy.parent.mkdir(parents=True, exist_ok=True)
        telemetry.dump_events(str(queue_copy), meta=meta)
        print(f"wrote scheduler decision log ({lines} lines) to {args.events} "
              f"(copy: {queue_copy})")
    print(format_sweep(result.rows))
    print(
        f"queue worker {result.worker}: {len(result.outcomes)} committed of "
        f"{result.total_tasks} grid task(s) ({result.claims} claim(s), "
        f"{result.steals} steal(s), {result.superseded} superseded, "
        f"{len(result.failures)} failed); rows -> {args.out}, "
        f"journal -> {result.journal_path}"
    )
    for failure in result.failures:
        error = failure.error or {}
        print(
            f"  FAILED {failure.task.task_id} after {failure.attempts} attempt(s): "
            f"{error.get('type')}: {error.get('message')}"
        )
    return 1 if result.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro import telemetry
    from repro.core.experiment import SCALE_PRESETS, ExperimentScale, format_sweep
    from repro.parallel import SweepGrid, run_sweep

    scale = SCALE_PRESETS[args.scale] if args.scale else ExperimentScale.from_env()
    grid_kwargs = dict(
        methods=tuple(args.methods.split(",")),
        models=tuple(args.models.split(",")),
        devices=tuple(args.devices.split(",")),
        dataset=args.dataset,
        target_class=args.target,
        scale=dataclasses.asdict(scale),
    )
    if args.replicas is not None:
        grid = SweepGrid.with_replicas(args.base_seed, args.replicas, **grid_kwargs)
    else:
        grid = SweepGrid(seeds=tuple(int(s) for s in args.seeds.split(",")), **grid_kwargs)

    if args.queue is not None:
        return _cmd_queue_sweep(args, grid)
    if args.events:
        telemetry.enable_events()
        # Fresh flight record per invocation (repeated main() calls share
        # the process-wide recorder).
        telemetry.get_recorder().reset()
    journal = args.journal or f"{args.out}.journal.jsonl"
    result = run_sweep(
        grid,
        workers=args.workers,
        journal_path=journal,
        resume=args.resume,
        max_attempts=args.max_attempts,
        backoff_seconds=args.backoff,
        shard=args.shard,
        live_dir=args.live_dir,
        beacon_interval=args.beacon_interval,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result.rows, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if args.events:
        meta = {"command": "sweep", "grid_sha": result.grid_sha}
        if args.shard is not None:
            meta["shard"] = str(args.shard)
        lines = telemetry.dump_events(args.events, meta=meta)
        print(f"wrote flight record ({lines} lines) to {args.events}")
    if not args.no_manifest:
        from repro.telemetry.manifest import (
            build_manifest,
            manifest_path_for,
            sha256_file,
            write_manifest,
        )

        artifacts = {"rows": args.out, "journal": journal}
        # Digest only the deterministic artifacts (rows, flight record) --
        # the journal carries wall-clock durations, and pinning it would
        # break the manifest's byte-reproducibility across re-runs.
        digests = {"rows": sha256_file(args.out)}
        if args.events:
            artifacts["events"] = args.events
            digests["events"] = sha256_file(args.events)
        config = {
            "methods": args.methods,
            "models": args.models,
            "devices": args.devices,
            "dataset": args.dataset,
            "target_class": args.target,
            "scale": dataclasses.asdict(scale),
            "max_attempts": args.max_attempts,
        }
        if args.shard is not None:
            config["shard"] = str(args.shard)
        write_manifest(
            build_manifest(
                "sweep",
                config=config,
                seeds=sorted({outcome.task.seed for outcome in result.outcomes}),
                grid_sha=result.grid_sha,
                artifacts=artifacts,
                artifact_sha256=digests,
            ),
            manifest_path_for(journal),
        )
    print(format_sweep(result.rows))
    shard_note = f", shard {args.shard} of {result.total_tasks}" if args.shard else ""
    print(
        f"sweep: {result.completed_count} completed, {result.resumed_count} resumed, "
        f"{len(result.failures)} failed ({len(result.outcomes)} tasks{shard_note}, "
        f"workers={args.workers}); rows -> {args.out}, journal -> {journal}"
    )
    for failure in result.failures:
        error = failure.error or {}
        print(
            f"  FAILED {failure.task.task_id} after {failure.attempts} attempt(s): "
            f"{error.get('type')}: {error.get('message')}"
        )
    return 1 if result.failures else 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch QUEUE``: live fleet dashboard over beacons + queue state.

    An observer only -- exit code 0 whether or not the queue is drained
    (scripts read ``drained`` from ``--once --json``), 2 on error.  Without
    ``--once`` the dashboard refreshes every ``--interval`` seconds until
    the queue drains.
    """
    import json
    import time

    from repro.errors import SweepError
    from repro.telemetry.live import (
        HealthThresholds,
        fleet_status,
        format_fleet,
        write_fleet_trace,
    )

    thresholds = HealthThresholds(stall_after_seconds=args.stall_after)
    while True:
        try:
            fleet = fleet_status(args.queue, thresholds=thresholds)
        except SweepError as exc:
            print(f"watch failed: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(fleet, indent=2, sort_keys=True))
        else:
            if not args.once and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(format_fleet(fleet), end="")
        if args.once or fleet["drained"]:
            break
        time.sleep(args.interval)
    if args.trace:
        try:
            events = write_fleet_trace(args.trace, args.queue)
        except SweepError as exc:
            print(f"watch failed: {exc}", file=sys.stderr)
            return 2
        print(f"wrote stitched fleet trace ({events} event(s)) to {args.trace}")
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    import json

    from repro.errors import SweepError
    from repro.parallel.scheduler import queue_status

    try:
        status = queue_status(args.queue)
    except SweepError as exc:
        print(f"queue-status failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status.to_json(), indent=2, sort_keys=True))
    else:
        print(f"queue {args.queue} (grid {status.grid_sha[:12]}):")
        print(f"  done:    {status.done}/{status.total_tasks} "
              f"({status.failed} failed)")
        print(f"  leased:  {status.leased} ({status.expired} expired/stealable)")
        print(f"  open:    {status.open_tasks}")
        print(f"  workers: {', '.join(status.workers) or '(none yet)'}")
        for worker, age in sorted(status.heartbeats.items()):
            print(f"  heartbeat {worker}: {age:.1f}s ago")
        for lease in status.leases:
            remaining = lease.get("expires_in_seconds")
            countdown = "?" if remaining is None else f"{remaining:.1f}s"
            state = "EXPIRED" if lease.get("expired") else f"expires in {countdown}"
            print(f"  lease {lease['task_id']} -> {lease.get('worker')} ({state})")
        for issue in status.health:
            print(f"  health [{issue['cause']}]: {issue['message']}")
    return 0 if status.complete else 1


def _expand_journal_args(paths):
    """Expand queue-directory arguments to their per-worker journal files."""
    from pathlib import Path

    expanded = []
    for path in paths:
        candidate = Path(path)
        if candidate.is_dir():
            inner = candidate / "journals" if (candidate / "journals").is_dir() else candidate
            expanded.extend(str(p) for p in sorted(inner.glob("*.jsonl")))
        else:
            expanded.append(path)
    return expanded


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.core.experiment import format_sweep
    from repro.errors import MergeError
    from repro.parallel.merge import (
        merge_journals,
        write_merged_events,
        write_merged_journal,
        write_merged_rows,
    )

    journal = args.journal or f"{args.out}.journal.jsonl"
    try:
        result = merge_journals(
            _expand_journal_args(args.journals), allow_incomplete=args.allow_incomplete
        )
        write_merged_rows(result, args.out)
        write_merged_journal(result, journal)
        if args.events:
            lines = write_merged_events(result, args.events)
            print(f"wrote merged flight record ({lines} lines) to {args.events}")
    except MergeError as exc:
        print(f"merge failed [{exc.cause}]: {exc}", file=sys.stderr)
        for key, value in sorted(exc.details.items()):
            print(f"  {key}: {value}", file=sys.stderr)
        return 2
    if not args.no_manifest:
        from repro.telemetry.manifest import (
            build_manifest,
            manifest_path_for,
            sha256_file,
            write_manifest,
        )

        artifacts = {"rows": args.out, "journal": journal}
        digests = {"rows": sha256_file(args.out)}
        if args.events:
            artifacts["events"] = args.events
            digests["events"] = sha256_file(args.events)
        # Deliberately free of shard-split details (how many journals, which
        # paths): a 2-way and a 3-way split of the same sweep merge to
        # byte-identical manifests, mirroring the row/event byte-identity.
        write_manifest(
            build_manifest(
                "merge",
                config={
                    "allow_incomplete": args.allow_incomplete,
                    "total_tasks": result.total_tasks,
                    "merged_results": len(result.records),
                    "failed_tasks": len(result.failures),
                    "missing_tasks": result.missing_count,
                },
                seeds=result.seeds,
                grid_sha=result.grid_sha,
                artifacts=artifacts,
                artifact_sha256=digests,
            ),
            manifest_path_for(args.out),
        )
    print(format_sweep(result.rows))
    print(
        f"merge: {len(result.shards)} {result.schedule} journal(s), "
        f"{len(result.records)} result(s) "
        f"({len(result.failures)} failed, {result.missing_count} missing) of "
        f"{result.total_tasks} grid task(s); rows -> {args.out}, journal -> {journal}"
    )
    if result.workers:
        print(f"  queue workers: {', '.join(result.workers)}")
    if result.missing_shards:
        print(f"  missing shard index(es): {result.missing_shards}")
    for task_id in result.missing_task_ids:
        print(f"  MISSING {task_id} (no journaled result)")
    for task_id, record in result.failures:
        error = record.get("error") or {}
        print(
            f"  FAILED {task_id} after {record.get('attempts', 1)} attempt(s): "
            f"{error.get('type')}: {error.get('message')}"
        )
    return 1 if result.failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry.report import render_report

    rendered = render_report(args.input, fmt=args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.core.experiment import ExperimentScale, format_table2, run_method_comparison

    scale = ExperimentScale.from_env()
    methods = tuple(args.methods.split(",")) if args.methods else (
        "BadNet", "FT", "TBT", "CFT", "CFT+BR"
    )
    rows = run_method_comparison(
        args.model, dataset=args.dataset, methods=methods, scale=scale, seed=args.seed,
        workers=args.workers,
    )
    print(format_table2(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro CLI's argument parser (subcommand per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rowhammer DNN backdoor reproduction (DSN 2023) experiments",
    )
    parser.add_argument(
        "--log-level",
        choices=["critical", "error", "warning", "info", "debug"],
        default=None,
        help="stdlib logging level for the repro package (stderr)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="-v: info, -vv: debug (shorthand for --log-level)",
    )
    parser.add_argument(
        "--no-engine", action="store_true",
        help="disable the layer-prefix activation caching engine "
             "(results are byte-identical either way; this is purely a "
             "performance switch)",
    )
    parser.add_argument(
        "--engine-cache-mb", type=float, default=None, metavar="MB",
        help="LRU byte budget for the engine's activation cache "
             "(default: REPRO_ENGINE_CACHE_MB or 64)",
    )
    parser.add_argument(
        "--no-engine-batch", action="store_true",
        help="score round candidates sequentially instead of through the "
             "batched stacked-suffix scorer (byte-identical either way; "
             "purely a performance switch)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME[:PARAM]",
        help="compute backend (default: REPRO_BACKEND or numpy); 'threads' "
             "or 'threads:N' runs panel-parallel byte-identical kernels, "
             "'fast' trades byte-level determinism for fused float32 GEMMs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the Table I DRAM device profiles")

    prob = sub.add_parser("probability", help="Eq. 2 target-page probabilities")
    prob.add_argument("--flips-per-page", type=float, default=34.0)
    prob.add_argument("--pages", type=int, default=32_768)
    prob.add_argument("--max-offsets", type=int, default=3)

    attack = sub.add_parser("attack", help="run the offline CFT(+BR) attack")
    attack.add_argument("--model", default="resnet20")
    attack.add_argument("--dataset", default="cifar10", choices=["cifar10", "imagenet"])
    attack.add_argument("--width", type=float, default=0.25)
    attack.add_argument("--epochs", type=int, default=12)
    attack.add_argument("--target", type=int, default=2)
    attack.add_argument("--flips", type=int, default=4)
    attack.add_argument("--iterations", type=int, default=80)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--no-bit-reduction", action="store_true")
    attack.add_argument("--save", help="save the offline result to this .npz path")
    attack.add_argument("--events", help="record the flight-recorder event stream "
                        "(JSONL) of the offline attack to this path")

    bench = sub.add_parser(
        "bench", help="run the telemetry-instrumented end-to-end benchmark"
    )
    bench.add_argument("--out", default="BENCH_pipeline.json")
    bench.add_argument("--jsonl", help="also write the line-per-event export here")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--epochs", type=int, default=3)
    bench.add_argument("--iterations", type=int, default=10)
    bench.add_argument("--flips", type=int, default=2)
    bench.add_argument("--skip-sweep", action="store_true",
                       help="skip the 1-vs-2-worker sweep timing section")
    bench.add_argument("--skip-engine", action="store_true",
                       help="skip the cached-vs-uncached engine timing section")
    bench.add_argument("--skip-kernels", action="store_true",
                       help="skip the per-kernel backend-profile timing section")
    bench.add_argument("--events", help="record the run's flight-recorder event "
                       "stream (JSONL) to this path")
    bench.add_argument("--trace", help="export spans + events as a Chrome-trace/"
                       "Perfetto JSON file to this path")
    bench.add_argument("--openmetrics", metavar="PATH",
                       help="also write the report's counters/gauges/histograms "
                            "as an OpenMetrics/Prometheus textfile to this path")
    bench.add_argument("--no-manifest", action="store_true",
                       help="skip writing <out>.manifest.json")

    check = sub.add_parser(
        "bench-check", help="fail if a bench report regressed against a baseline"
    )
    check.add_argument("baseline", help="committed BENCH_pipeline.json baseline")
    check.add_argument("candidate", help="freshly produced BENCH_pipeline.json")
    check.add_argument("--tolerance", type=float, default=0.25,
                       help="max relative deviation for counters (default 0.25)")
    check.add_argument("--time-tolerance", type=float, default=0.25,
                       help="max relative deviation for span wall-times (default 0.25)")
    check.add_argument("--min-seconds", type=float, default=0.05,
                       help="ignore spans whose baseline total is below this")

    trend = sub.add_parser(
        "bench-trend",
        help="print an informational metric trend across bench reports "
             "(never fails the build)",
    )
    trend.add_argument("reports", nargs="+",
                       help="BENCH_pipeline.json reports, oldest first "
                            "(typically the committed baseline then per-run copies)")

    table2 = sub.add_parser("table2", help="run a Table II method comparison")
    table2.add_argument("--model", default="resnet20")
    table2.add_argument("--dataset", default="cifar10", choices=["cifar10", "imagenet"])
    table2.add_argument("--methods", help="comma-separated subset of methods")
    table2.add_argument("--seed", type=int, default=0)
    table2.add_argument("--workers", type=int, default=1,
                        help="process-pool size for the per-method fan-out")

    sweep = sub.add_parser(
        "sweep",
        help="run a (method x model x device x seed) grid across a process pool",
    )
    sweep.add_argument("--methods", default="BadNet,FT,TBT,CFT,CFT+BR",
                       help="comma-separated attack methods")
    sweep.add_argument("--models", default="resnet20", help="comma-separated model names")
    sweep.add_argument("--devices", default="K1", help="comma-separated Table I device tags")
    sweep.add_argument("--seeds", default="0", help="comma-separated explicit seeds")
    sweep.add_argument("--replicas", type=int, default=None,
                       help="instead of --seeds: N replica seeds derived from --base-seed")
    sweep.add_argument("--base-seed", type=int, default=0,
                       help="root seed for --replicas derivation")
    sweep.add_argument("--dataset", default="cifar10", choices=["cifar10", "imagenet"])
    sweep.add_argument("--target", type=int, default=2, help="backdoor target class")
    sweep.add_argument("--scale", choices=["micro", "tiny", "small", "full"],
                       help="experiment scale preset (default: REPRO_BENCH_SCALE)")
    sweep.add_argument("--workers", type=int, default=1, help="process-pool size")
    sweep.add_argument("--shard", type=_shard_type, default=None, metavar="I/N",
                       help="run only shard I of an N-way contiguous split of the "
                            "canonical grid order (one journal per shard; reassemble "
                            "with `repro merge`)")
    sweep.add_argument("--queue", metavar="DIR", default=None,
                       help="work-stealing mode: claim tasks from this shared queue "
                            "directory (created on first use) instead of a static "
                            "shard; start one such process per host and reassemble "
                            "with `repro merge DIR` (incompatible with --shard/"
                            "--resume/--workers; no manifest is written)")
    sweep.add_argument("--worker-id", default=None,
                       help="queue mode: stable worker identity for leases and the "
                            "per-worker journal (default: <hostname>-<pid>)")
    sweep.add_argument("--lease-ttl", type=float, default=30.0, metavar="SECONDS",
                       help="queue mode: lease time-to-live; a worker silent this "
                            "long is presumed dead and its task is stolen "
                            "(default 30)")
    sweep.add_argument("--out", default="sweep_rows.json",
                       help="write the final result rows here as JSON")
    sweep.add_argument("--journal", help="JSONL checkpoint journal "
                       "(default: <out>.journal.jsonl)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip tasks the journal already records as successful")
    sweep.add_argument("--max-attempts", type=int, default=2,
                       help="attempts per task before recording a failure")
    sweep.add_argument("--backoff", type=float, default=0.25,
                       help="base retry backoff in seconds (doubles per attempt)")
    sweep.add_argument("--events", help="record every task's flight-recorder "
                       "events, merged in grid order, to this JSONL path")
    sweep.add_argument("--no-manifest", action="store_true",
                       help="skip writing <journal>.manifest.json")
    sweep.add_argument("--beacon-interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="live status beacon refresh interval (0 disables; "
                            "queue mode writes to <queue>/beacons/, pool/shard "
                            "mode needs --live-dir)")
    sweep.add_argument("--timeline-interval", type=float, default=0.0,
                       metavar="SECONDS",
                       help="queue mode: sample sched./engine./pipeline counters "
                            "to <queue>/timeline/<worker>.timeline.jsonl every "
                            "SECONDS (0 disables)")
    sweep.add_argument("--live-dir", metavar="DIR", default=None,
                       help="pool/shard mode: keep a live status beacon fresh "
                            "in this directory for `repro watch`-style tooling "
                            "(sidecar only; never changes any output byte)")

    status = sub.add_parser(
        "queue-status",
        help="inspect a queue directory: done/leased/open counts per worker "
             "(exit 0 when the queue is fully drained, 1 otherwise)",
    )
    status.add_argument("queue", help="queue directory (as passed to sweep --queue)")
    status.add_argument("--json", action="store_true",
                        help="print the snapshot as JSON instead of text")

    watch = sub.add_parser(
        "watch",
        help="live fleet dashboard for a queue directory: per-worker beacons, "
             "drain %%, throughput, ETA, lease churn and health causes "
             "(exit 0 as an observer regardless of drain state, 2 on error)",
    )
    watch.add_argument("queue", help="queue directory (as passed to sweep --queue)")
    watch.add_argument("--once", action="store_true",
                       help="print one snapshot and exit instead of refreshing "
                            "until the queue drains")
    watch.add_argument("--json", action="store_true",
                       help="print the repro-live/1 snapshot as JSON (for "
                            "scripts/CI; pair with --once)")
    watch.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                       help="dashboard refresh interval (default 2)")
    watch.add_argument("--stall-after", type=float, default=30.0,
                       metavar="SECONDS",
                       help="beacon heartbeat age after which a worker counts "
                            "as stalled (default 30)")
    watch.add_argument("--trace", metavar="PATH",
                       help="after the last snapshot, stitch every worker's "
                            "journaled spans/events into one Perfetto trace "
                            "with a lane per worker and write it here")

    merge = sub.add_parser(
        "merge",
        help="validate per-host sweep journals (shard or queue mode) and "
             "reassemble the grid-ordered sweep",
    )
    merge.add_argument("journals", nargs="+",
                       help="journal JSONL files in any order -- or a queue "
                            "directory, which expands to its journals/*.jsonl")
    merge.add_argument("--out", default="merged_rows.json",
                       help="write the grid-ordered rows here (byte-identical to "
                            "the unsharded sweep's --out)")
    merge.add_argument("--journal",
                       help="write the reassembled merged journal here "
                            "(default: <out>.journal.jsonl)")
    merge.add_argument("--events",
                       help="write the merged flight record here (requires the "
                            "shards to have run with --events)")
    merge.add_argument("--allow-incomplete", action="store_true",
                       help="degrade missing shards/results into a grid-ordered "
                            "partial merge with the gaps reported (SHA mismatches, "
                            "duplicates and conflicts still fail)")
    merge.add_argument("--no-manifest", action="store_true",
                       help="skip writing <out>.manifest.json")

    report = sub.add_parser(
        "report",
        help="render a forensics report from a flight record, sweep journal "
             "or queue directory (fleet summary + scheduler decisions)",
    )
    report.add_argument("input", help="a *.events.jsonl flight record, a "
                        "sweep/merged *.journal.jsonl, or a queue directory "
                        "(renders per-worker results and, with --events "
                        "decision logs, a scheduler-decision table)")
    report.add_argument("--format", choices=["markdown", "json"], default="markdown")
    report.add_argument("--out", help="write the report here instead of stdout")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.log import configure, verbosity_to_level

    configure(args.log_level or verbosity_to_level(args.verbose))
    # Engine toggles go through the environment so sweep worker processes
    # (fork or spawn) inherit the same configuration as the parent.
    import os

    if args.no_engine:
        os.environ["REPRO_ENGINE"] = "0"
        from repro.engine import disable_engine

        disable_engine()
    if args.engine_cache_mb is not None:
        os.environ["REPRO_ENGINE_CACHE_MB"] = str(args.engine_cache_mb)
    if args.no_engine_batch:
        os.environ["REPRO_ENGINE_BATCH"] = "0"
        from repro.engine import disable_batch

        disable_batch()
    if args.backend is not None:
        from repro.backend import BackendError, set_backend

        try:
            set_backend(args.backend)
        except BackendError as exc:
            print(f"--backend: {exc}", file=sys.stderr)
            return 2
        # Mirrored into the environment so spawn-mode sweep workers (which
        # re-read REPRO_BACKEND) agree with the parent process.
        os.environ["REPRO_BACKEND"] = args.backend
    handlers = {
        "devices": _cmd_devices,
        "probability": _cmd_probability,
        "attack": _cmd_attack,
        "table2": _cmd_table2,
        "bench": _cmd_bench,
        "bench-check": _cmd_bench_check,
        "bench-trend": _cmd_bench_trend,
        "sweep": _cmd_sweep,
        "queue-status": _cmd_queue_status,
        "watch": _cmd_watch,
        "merge": _cmd_merge,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
