"""Time-series sampler: periodic counter snapshots to a ``timeline.jsonl`` ring.

Beacons (:mod:`repro.telemetry.live`) answer "what is the fleet doing right
now"; the timeline answers "how did we get here" -- one JSON line per
sampling interval holding the selected counter families (``sched.*``,
``engine.*``, pipeline counters) as absolute values plus per-interval
deltas.  The file is a bounded ring: when it exceeds ``max_samples`` it is
compacted in place to the most recent samples, so a days-long campaign
cannot fill a disk with telemetry.

Like beacons, the timeline is a live-side artifact only: it is written
next to (never inside) journals, carries wall-clock timestamps on purpose,
and is excluded from the determinism contract.  Optionally each tick also
rewrites an OpenMetrics textfile (:func:`repro.telemetry.export.
write_openmetrics`) for scrape-based collection (Prometheus node_exporter
textfile collector).
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.telemetry.live import (
    LIVE_COUNTER_PREFIXES,
    register_live,
    unregister_live,
)

PathLike = Union[str, Path]

TIMELINE_SCHEMA = "repro-timeline/1"
DEFAULT_TIMELINE_INTERVAL = 1.0
DEFAULT_MAX_SAMPLES = 4096


def _default_counters() -> Dict[str, float]:
    from repro import telemetry  # lazy: repro.telemetry imports live/timeline

    if not telemetry.enabled():
        return {}
    counters = telemetry.get_registry().snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(LIVE_COUNTER_PREFIXES)
    }


class TimelineSampler:
    """Appends one counter snapshot per interval to a bounded JSONL ring.

    ``extra_fn`` (when given) contributes additional JSON-able fields to
    every sample (e.g. the worker's ``tasks_done``).  With
    ``openmetrics_path`` set, each tick also rewrites that textfile from
    the same counters, so a Prometheus textfile collector can scrape the
    live run.  All write failures are swallowed -- sampling is advisory.
    """

    def __init__(
        self,
        path: PathLike,
        interval: float = DEFAULT_TIMELINE_INTERVAL,
        counters_fn: Optional[Callable[[], Dict[str, float]]] = None,
        extra_fn: Optional[Callable[[], Dict[str, object]]] = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        openmetrics_path: Optional[PathLike] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.interval = max(float(interval), 0.05)
        self.max_samples = max(int(max_samples), 1)
        self.openmetrics_path = Path(openmetrics_path) if openmetrics_path else None
        self._clock = clock
        self._counters_fn = counters_fn if counters_fn is not None else _default_counters
        self._extra_fn = extra_fn
        self._started = clock()
        self._last_counters: Dict[str, float] = {}
        self._ring: collections.deque = collections.deque(maxlen=self.max_samples)
        self._written = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._discarded = False
        self._thread = threading.Thread(
            target=self._run, name=f"timeline-{self.path.stem}", daemon=True
        )

    def start(self) -> "TimelineSampler":
        register_live(self)
        self.sample()
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the thread after one final sample."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
        self.sample()
        unregister_live(self)

    def discard(self) -> None:
        """Abandon without writing (see :func:`repro.telemetry.live.reset_live`)."""
        with self._lock:
            self._discarded = True
        self._stop.set()

    def sample(self) -> Optional[Dict[str, object]]:
        """Take and persist one sample; returns it (``None`` once discarded)."""
        with self._lock:
            if self._discarded:
                return None
            now = self._clock()
            counters = dict(self._counters_fn() or {})
            deltas = {
                name: round(value - self._last_counters.get(name, 0.0), 6)
                for name, value in counters.items()
            }
            self._last_counters = counters
            entry: Dict[str, object] = {
                "kind": "sample",
                "t": now,
                "elapsed_seconds": round(now - self._started, 3),
                "counters": counters,
                "deltas": deltas,
            }
            if self._extra_fn is not None:
                try:
                    entry.update(self._extra_fn() or {})
                except Exception:
                    pass
            self._ring.append(entry)
            self._written += 1
            self._persist(entry)
        if self.openmetrics_path is not None:
            self._export_openmetrics(counters)
        return entry

    def _persist(self, entry: Dict[str, object]) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._written > self.max_samples or not self.path.exists():
                self._compact()
            else:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
        except OSError:
            pass

    def _compact(self) -> None:
        """Rewrite the file as schema line + the ring's samples (atomic)."""
        lines = [json.dumps({"kind": "schema", "value": TIMELINE_SCHEMA})]
        lines.extend(json.dumps(entry, sort_keys=True) for entry in self._ring)
        tmp = self.path.with_name(self.path.name + f".{os.getpid()}.tmp")
        tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
        os.replace(str(tmp), str(self.path))
        self._written = len(self._ring)

    def _export_openmetrics(self, counters: Dict[str, float]) -> None:
        from repro.telemetry.export import write_openmetrics

        try:
            write_openmetrics(
                {"counters": counters, "gauges": {}, "histograms": {}},
                self.openmetrics_path,
            )
        except OSError:
            pass


def read_timeline(path: PathLike) -> List[Dict[str, object]]:
    """The sample entries of a timeline file (schema/torn lines skipped)."""
    samples: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return samples
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if entry.get("kind") == "sample":
            samples.append(entry)
    return samples
