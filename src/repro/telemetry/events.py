"""The attack flight recorder: a typed, ordered event stream per run.

Counters and histograms (PR 1) answer "how many"; the flight recorder
answers "which, in what order, and why".  Every provenance fact the paper's
end-to-end claim rests on becomes one :class:`Event`: which weight
``Group_Sort_Select`` picked, which single bit survived Bit Reduction,
which physical frame a page was massaged onto, whether the hammer flipped
the cell, and what post-attack verification observed.

Determinism contract: an event carries a monotone sequence number, its
kind, the dotted span path that was open when it fired, and a JSON-able
``data`` dict -- and **no wall-clock timestamps** -- so a fixed seed yields
a byte-identical event stream regardless of host, load or worker count.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.telemetry.registry import TelemetryError

FLIGHT_SCHEMA = "repro-flight/1"

PathLike = Union[str, Path]


@dataclasses.dataclass
class Event:
    """One recorded provenance fact.

    Attributes
    ----------
    seq:
        Monotone per-recorder sequence number (0-based); merged worker
        events are renumbered by the parent recorder in grid order.
    kind:
        Dotted event type, e.g. ``"cft.flip_committed"`` or
        ``"hammer.attempt"``.
    span:
        Dotted path of the innermost open span when the event fired
        (empty string when none was open).
    data:
        JSON-able payload; keys are event-kind specific.
    """

    seq: int
    kind: str
    span: str = ""
    data: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "kind": self.kind, "span": self.span,
                "data": dict(self.data)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Event":
        return cls(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            span=str(payload.get("span", "")),
            data=dict(payload.get("data", {})),
        )


class EventRecorder:
    """Append-only, ordered event buffer (the flight recorder proper)."""

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def record(self, kind: str, span: str = "", **data: object) -> Event:
        """Append one event; assigns the next sequence number."""
        event = Event(seq=self._seq, kind=kind, span=span, data=data)
        self._seq += 1
        self.events.append(event)
        return event

    def attach(self, payloads: Iterable[Dict[str, object]],
               base_path: str = "") -> List[Event]:
        """Graft shipped event dicts (e.g. from a sweep worker) in order.

        Each payload is renumbered into this recorder's sequence and its
        span path is rebased under ``base_path`` (the parent's open span),
        mirroring :meth:`repro.telemetry.spans.SpanTracer.attach`.
        """
        attached: List[Event] = []
        for payload in payloads:
            shipped = Event.from_dict(payload)
            span = shipped.span
            if base_path:
                span = f"{base_path}/{span}" if span else base_path
            attached.append(self.record(shipped.kind, span=span, **shipped.data))
        return attached

    def reset(self) -> None:
        self.events.clear()
        self._seq = 0

    # -- views -----------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, object]]:
        """Picklable/JSON-able form (how sweep workers ship events home)."""
        return [event.to_dict() for event in self.events]

    def by_kind(self) -> Dict[str, List[Event]]:
        out: Dict[str, List[Event]] = {}
        for event in self.events:
            out.setdefault(event.kind, []).append(event)
        return out

    def kind_counts(self) -> Dict[str, int]:
        """Events per kind, sorted (the report's informational section)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {kind: counts[kind] for kind in sorted(counts)}


# ---------------------------------------------------------------------------
# Flight-record JSONL (one schema line, then one line per event)
# ---------------------------------------------------------------------------
def write_events_jsonl(
    recorder: EventRecorder, path: PathLike, meta: Optional[Dict[str, object]] = None
) -> int:
    """Write the flight record; returns the number of lines written.

    The stream is byte-deterministic for a fixed seed: sorted keys, no
    timestamps, events in sequence order.
    """
    lines = [json.dumps({"kind": "schema", "value": FLIGHT_SCHEMA,
                         "meta": dict(meta or {})}, sort_keys=True)]
    for event in recorder.events:
        lines.append(json.dumps(event.to_dict(), sort_keys=True))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def read_events_jsonl(path: PathLike) -> List[Event]:
    """Rebuild the event list from a flight-record JSONL file."""
    events: List[Event] = []
    saw_schema = False
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        payload = json.loads(line)
        if not saw_schema:
            if payload.get("kind") != "schema" or payload.get("value") != FLIGHT_SCHEMA:
                raise TelemetryError(
                    f"{path}:{lineno}: expected flight schema {FLIGHT_SCHEMA!r}, "
                    f"got {payload.get('value') or payload.get('kind')!r}"
                )
            saw_schema = True
            continue
        events.append(Event.from_dict(payload))
    return events
