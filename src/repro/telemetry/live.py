"""Live fleet observability: status beacons, health detection, fleet status.

Every other telemetry surface (metrics snapshots, flight records, traces,
reports) is post-hoc; this module is the sidecar that makes a *running*
multi-host sweep observable without touching the determinism contract:

- :class:`BeaconWriter` -- each worker keeps one small JSON "beacon" file
  fresh on a wall-clock interval (worker id, current task, tasks
  done/failed, claim/steal counts, rolling task rate, counter deltas).
  Beacons are written with atomic ``os.replace`` next to the queue
  directory, **never** into journals: merged rows, metrics snapshots and
  flight records stay byte-identical whether beacons are on or off.
- :func:`detect_health` -- structured health causes over beacons + queue
  state, mirroring the ``MergeError`` pattern: every cause is a registered
  slug in :data:`repro.errors.HEALTH_CAUSES` and documented in README and
  DESIGN (``tools/check_docs.py`` enforces both).
- :func:`fleet_status` -- the aggregated snapshot behind ``repro watch``:
  per-worker table, drain %, fleet throughput, ETA, lease churn, health.
- :func:`fleet_trace_from_queue` -- stitches every worker's journaled
  spans/events into one Chrome-trace/Perfetto file with one lane (pid)
  per worker.

Live artifacts are advisory and lossy by design (a beacon may be one
interval stale, a timeline ring drops old samples); the journals remain
the only authority on what was computed.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import HEALTH_CAUSES
from repro.telemetry.registry import TelemetryError

PathLike = Union[str, Path]

BEACON_SCHEMA = "repro-beacon/1"
LIVE_SCHEMA = "repro-live/1"
BEACON_SUFFIX = ".beacon.json"

DEFAULT_BEACON_INTERVAL = 2.0

#: Counter families a beacon/timeline snapshot carries (everything else is
#: noise at fleet granularity and bloats the per-interval write).
LIVE_COUNTER_PREFIXES = (
    "sched.",
    "engine.",
    "backend.",
    "sweep.",
    "pipeline.",
    "train.",
    "online.",
)


def _filtered_counters() -> Dict[str, float]:
    """Current process-global counters, restricted to the live families."""
    from repro import telemetry  # lazy: repro.telemetry imports this module

    if not telemetry.enabled():
        return {}
    counters = telemetry.get_registry().snapshot()["counters"]
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(LIVE_COUNTER_PREFIXES)
    }


# ---------------------------------------------------------------------------
# Fork-safety registry
# ---------------------------------------------------------------------------
_ACTIVE_LOCK = threading.Lock()
_ACTIVE: List[object] = []


def register_live(obj: object) -> None:
    """Track a live writer/sampler so :func:`reset_live` can disown it."""
    with _ACTIVE_LOCK:
        _ACTIVE.append(obj)


def unregister_live(obj: object) -> None:
    with _ACTIVE_LOCK:
        if obj in _ACTIVE:
            _ACTIVE.remove(obj)


def reset_live() -> None:
    """Disown every live writer/sampler without a final write.

    Called from :func:`repro.parallel.worker.reset_worker_state`: a forked
    worker inherits the parent's module state (including any
    :class:`BeaconWriter` object) but not its threads, and must never write
    the parent's beacon path -- so inherited writers are discarded, not
    stopped.
    """
    with _ACTIVE_LOCK:
        stale = list(_ACTIVE)
        _ACTIVE.clear()
    for obj in stale:
        discard = getattr(obj, "discard", None)
        if callable(discard):
            discard()


# ---------------------------------------------------------------------------
# Beacons
# ---------------------------------------------------------------------------
class BeaconWriter:
    """Keeps one worker's status beacon fresh from a background thread.

    The beacon is rewritten atomically (temp file + ``os.replace``) every
    ``interval`` seconds and immediately on every :meth:`update`, so a
    reader never observes a torn file and a dead worker is recognizable by
    its stale ``updated_unix``.  Progress (``tasks_done`` changing) bumps
    ``last_progress_unix``; a rolling window of (time, tasks_done) samples
    yields ``rate_tasks_per_s``.  Write failures are swallowed: beacons
    are advisory and must never fail a sweep.
    """

    def __init__(
        self,
        path: PathLike,
        worker: str,
        interval: float = DEFAULT_BEACON_INTERVAL,
        counters_fn: Optional[Callable[[], Dict[str, float]]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.worker = str(worker)
        self.interval = max(float(interval), 0.05)
        self._clock = clock
        self._counters_fn = counters_fn if counters_fn is not None else _filtered_counters
        self._lock = threading.Lock()
        now = clock()
        self._started = now
        self._last_progress = now
        self._fields: Dict[str, object] = {
            "phase": "starting",
            "current_task": None,
            "tasks_done": 0,
            "tasks_failed": 0,
            "claims": 0,
            "steals": 0,
            "lease_expired": 0,
            "superseded": 0,
        }
        self._history: collections.deque = collections.deque(maxlen=16)
        self._last_counters: Dict[str, float] = {}
        self._stop = threading.Event()
        self._discarded = False
        self._thread = threading.Thread(
            target=self._run, name=f"beacon-{self.worker}", daemon=True
        )

    def start(self) -> "BeaconWriter":
        register_live(self)
        self._write()
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._write()

    def update(self, **fields: object) -> None:
        """Merge ``fields`` into the beacon and write it immediately."""
        with self._lock:
            if self._discarded:
                return
            before = self._fields.get("tasks_done")
            self._fields.update(fields)
            if self._fields.get("tasks_done") != before:
                self._last_progress = self._clock()
        self._write()

    def stop(self, phase: str = "done") -> None:
        """Stop the refresh thread and write one final beacon."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
        with self._lock:
            if not self._discarded:
                self._fields["phase"] = phase
        self._write()
        unregister_live(self)

    def discard(self) -> None:
        """Abandon the beacon without writing (see :func:`reset_live`)."""
        with self._lock:
            self._discarded = True
        self._stop.set()

    def payload(self) -> Dict[str, object]:
        """The beacon document (also records a rate-window sample)."""
        now = self._clock()
        with self._lock:
            fields = dict(self._fields)
            self._history.append((now, int(fields.get("tasks_done") or 0)))
            rate = 0.0
            if len(self._history) >= 2:
                (t0, done0), (t1, done1) = self._history[0], self._history[-1]
                if t1 > t0:
                    rate = (done1 - done0) / (t1 - t0)
            current = dict(self._counters_fn() or {})
            deltas = {
                name: round(value - self._last_counters.get(name, 0.0), 6)
                for name, value in current.items()
            }
            self._last_counters = current
            started = self._started
            last_progress = self._last_progress
        return {
            "schema": BEACON_SCHEMA,
            "worker": self.worker,
            "pid": os.getpid(),
            "hostname": socket.gethostname(),
            "interval_seconds": self.interval,
            "started_unix": started,
            "updated_unix": now,
            "last_progress_unix": last_progress,
            "rate_tasks_per_s": round(max(rate, 0.0), 6),
            "counters": current,
            "counter_deltas": deltas,
            **fields,
        }

    def _write(self) -> None:
        with self._lock:
            if self._discarded:
                return
        payload = self.payload()
        tmp = self.path.with_name(self.path.name + f".{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8")
            os.replace(str(tmp), str(self.path))
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


def read_beacons(directory: PathLike) -> List[Dict[str, object]]:
    """Parse every ``*.beacon.json`` in ``directory``, sorted by worker.

    Corrupt or foreign-schema files are skipped -- a reader races the
    writers by construction, and a beacon is advisory anyway.
    """
    root = Path(directory)
    beacons: List[Dict[str, object]] = []
    if not root.is_dir():
        return beacons
    for path in sorted(root.glob(f"*{BEACON_SUFFIX}")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if payload.get("schema") != BEACON_SCHEMA:
            continue
        beacons.append(payload)
    beacons.sort(key=lambda b: str(b.get("worker", "")))
    return beacons


# ---------------------------------------------------------------------------
# Health detection
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class HealthThresholds:
    """Tunables for :func:`detect_health` (CLI: ``repro watch --stall-after``)."""

    stall_after_seconds: float = 30.0
    clock_skew_seconds: float = 5.0
    failure_rate: float = 0.25
    min_failures: int = 2
    lease_churn: int = 3


def health_issue(
    cause: str, message: str, worker: Optional[str] = None, **details: object
) -> Dict[str, object]:
    """One structured health observation; ``cause`` must be registered."""
    if cause not in HEALTH_CAUSES:
        raise TelemetryError(
            f"health cause {cause!r} is not registered in repro.errors.HEALTH_CAUSES"
        )
    issue: Dict[str, object] = {"cause": cause, "message": message}
    if worker is not None:
        issue["worker"] = worker
    issue.update(details)
    return issue


def detect_health(
    total_tasks: int,
    done: int,
    failed: int,
    beacons: List[Dict[str, object]],
    expired_leases: int = 0,
    now: Optional[float] = None,
    thresholds: Optional[HealthThresholds] = None,
) -> List[Dict[str, object]]:
    """Structured health causes for one point-in-time fleet snapshot.

    Pure function of its inputs (no filesystem access), so every cause is
    unit-testable with synthetic beacons.  Cause slugs come from
    :data:`repro.errors.HEALTH_CAUSES`.
    """
    t = thresholds or HealthThresholds()
    clock = time.time() if now is None else now
    drained = done >= total_tasks
    issues: List[Dict[str, object]] = []

    churn = 0
    for beacon in beacons:
        worker = str(beacon.get("worker", "?"))
        updated = float(beacon.get("updated_unix") or clock)
        age = clock - updated
        churn += int(beacon.get("lease_expired") or 0)
        if age < -t.clock_skew_seconds:
            issues.append(
                health_issue(
                    "clock-skew",
                    f"beacon of worker {worker} is {-age:.1f}s in the future; "
                    "host clocks are not synchronized",
                    worker=worker,
                    skew_seconds=round(-age, 3),
                )
            )
            continue
        if drained or beacon.get("phase") == "done":
            continue
        if age > t.stall_after_seconds:
            issues.append(
                health_issue(
                    "stalled-worker",
                    f"worker {worker} has not updated its beacon for {age:.1f}s "
                    "while the queue still holds open tasks",
                    worker=worker,
                    heartbeat_age_seconds=round(age, 3),
                )
            )
            continue
        last_progress = float(beacon.get("last_progress_unix") or updated)
        idle = clock - last_progress
        if beacon.get("phase") == "running" and idle > t.stall_after_seconds:
            issues.append(
                health_issue(
                    "no-progress",
                    f"worker {worker} is alive but has not committed a task "
                    f"for {idle:.1f}s (wedged mid-task, or starved)",
                    worker=worker,
                    idle_seconds=round(idle, 3),
                    current_task=beacon.get("current_task"),
                )
            )

    if not drained and churn + expired_leases >= t.lease_churn:
        issues.append(
            health_issue(
                "expired-lease-churn",
                f"{churn + expired_leases} lease expiries observed; the lease "
                "TTL is likely shorter than the task duration",
                expired_total=churn + expired_leases,
            )
        )
    if done > 0 and failed >= t.min_failures and failed / done > t.failure_rate:
        issues.append(
            health_issue(
                "failure-rate",
                f"{failed} of {done} committed task(s) failed terminally "
                f"({failed / done:.0%})",
                failed=failed,
                done=done,
            )
        )
    issues.sort(key=lambda issue: (str(issue["cause"]), str(issue.get("worker", ""))))
    return issues


# ---------------------------------------------------------------------------
# Fleet status (the `repro watch` snapshot)
# ---------------------------------------------------------------------------
def fleet_status(
    queue_dir: PathLike,
    now: Optional[float] = None,
    thresholds: Optional[HealthThresholds] = None,
) -> Dict[str, object]:
    """Aggregate queue state + beacons into one fleet snapshot document.

    Throughput sums the rolling rates of workers that are alive and not
    finished; the ETA is ``open / throughput`` (``None`` while nothing is
    moving).  All of it is advisory -- the snapshot races the fleet it
    observes.
    """
    from repro.parallel.scheduler import queue_status  # lazy: avoids a cycle

    t = thresholds or HealthThresholds()
    clock = time.time() if now is None else now
    status = queue_status(queue_dir, now=clock, thresholds=t)

    workers: List[Dict[str, object]] = []
    throughput = 0.0
    for beacon in status.beacons:
        age = max(0.0, clock - float(beacon.get("updated_unix") or clock))
        entry = dict(beacon)
        entry["heartbeat_age_seconds"] = round(age, 3)
        workers.append(entry)
        if beacon.get("phase") != "done" and age <= t.stall_after_seconds:
            throughput += float(beacon.get("rate_tasks_per_s") or 0.0)
    throughput = round(throughput, 6)

    drained = status.complete
    if drained:
        eta: Optional[float] = 0.0
    elif throughput > 0:
        eta = round(status.open_tasks / throughput, 3)
    else:
        eta = None

    churn = {
        "expired_leases": status.expired,
        "lease_expiries_seen": sum(int(b.get("lease_expired") or 0) for b in status.beacons),
        "steals": sum(int(b.get("steals") or 0) for b in status.beacons),
        "superseded": sum(int(b.get("superseded") or 0) for b in status.beacons),
    }
    percent = 100.0 * status.done / status.total_tasks if status.total_tasks else 0.0
    return {
        "schema": LIVE_SCHEMA,
        "queue": str(queue_dir),
        "grid_sha": status.grid_sha,
        "total_tasks": status.total_tasks,
        "done": status.done,
        "failed": status.failed,
        "open": status.open_tasks,
        "leased": status.leased,
        "expired_leases": status.expired,
        "drained": drained,
        "drain_percent": round(percent, 2),
        "throughput_tasks_per_s": throughput,
        "eta_seconds": eta,
        "lease_churn": churn,
        "leases": status.leases,
        "workers": workers,
        "health": status.health,
    }


def format_fleet(fleet: Dict[str, object]) -> str:
    """Human dashboard text for one :func:`fleet_status` snapshot."""
    eta = fleet.get("eta_seconds")
    eta_text = "-" if eta is None else f"{eta:.1f}s"
    lines = [
        f"queue {fleet['queue']} (grid {str(fleet['grid_sha'])[:12]}): "
        f"{fleet['done']}/{fleet['total_tasks']} done "
        f"({fleet['drain_percent']:.1f}%), {fleet['leased']} leased, "
        f"{fleet['failed']} failed",
        f"throughput {fleet['throughput_tasks_per_s']:.3f} task/s, ETA {eta_text}, "
        f"drained: {'yes' if fleet['drained'] else 'no'}",
    ]
    churn = fleet.get("lease_churn") or {}
    lines.append(
        "lease churn: "
        f"{churn.get('expired_leases', 0)} expired now, "
        f"{churn.get('lease_expiries_seen', 0)} expiries seen, "
        f"{churn.get('steals', 0)} steal(s), "
        f"{churn.get('superseded', 0)} superseded"
    )
    workers = fleet.get("workers") or []
    if workers:
        header = (
            f"{'worker':<20} {'phase':<9} {'done':>5} {'fail':>5} {'claim':>6} "
            f"{'steal':>6} {'rate/s':>8} {'hb age':>8}  current task"
        )
        lines += ["", header, "-" * len(header)]
        for w in workers:
            lines.append(
                f"{str(w.get('worker', '?')):<20} {str(w.get('phase', '?')):<9} "
                f"{w.get('tasks_done', 0):>5} {w.get('tasks_failed', 0):>5} "
                f"{w.get('claims', 0):>6} {w.get('steals', 0):>6} "
                f"{float(w.get('rate_tasks_per_s') or 0.0):>8.3f} "
                f"{float(w.get('heartbeat_age_seconds') or 0.0):>7.1f}s  "
                f"{w.get('current_task') or '-'}"
            )
    else:
        lines.append("(no worker beacons yet)")
    health = fleet.get("health") or []
    if health:
        lines.append("")
        for issue in health:
            lines.append(f"health [{issue['cause']}]: {issue['message']}")
    else:
        lines.append("health: ok")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Stitched fleet trace
# ---------------------------------------------------------------------------
def fleet_trace_from_queue(queue_dir: PathLike) -> Dict[str, object]:
    """One Chrome-trace/Perfetto document with a lane per queue worker.

    Rebuilds each worker's span forest and event stream from its journal
    (journals ship telemetry precisely so post-hoc tools never need the
    host that ran the task) and stitches the per-worker traces into one
    trace with one process lane per worker.
    """
    from repro.parallel.journal import SweepJournal
    from repro.parallel.scheduler import load_queue
    from repro.telemetry.events import EventRecorder
    from repro.telemetry.spans import SpanRecord, SpanTracer
    from repro.telemetry.trace import build_trace, stitch_traces

    manifest = load_queue(queue_dir)
    named: List[Tuple[str, Dict[str, object]]] = []
    for journal_path in manifest.journal_paths():
        state = SweepJournal.load(journal_path)
        header = state.header or {}
        worker = str(header.get("worker") or journal_path.name.split(".")[0])
        tracer = SpanTracer()
        recorder = EventRecorder()
        order = header.get("grid_task_ids") or sorted(state.records)
        for task_id in order:
            record = state.records.get(task_id)
            if not record:
                continue
            for span_payload in record.get("spans") or ():
                tracer.attach(SpanRecord.from_dict(span_payload))
            if record.get("events"):
                recorder.attach(record["events"])
        named.append(
            (worker, build_trace(tracer, recorder=recorder, meta={"worker": worker}))
        )
    return stitch_traces(
        named, meta={"queue": str(queue_dir), "grid_sha": manifest.grid_sha}
    )


def write_fleet_trace(path: PathLike, queue_dir: PathLike) -> int:
    """Write the stitched fleet trace; returns the number of trace events."""
    trace = fleet_trace_from_queue(queue_dir)
    Path(path).write_text(json.dumps(trace, sort_keys=True) + "\n", encoding="utf-8")
    return len(trace["traceEvents"])
