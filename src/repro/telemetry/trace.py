"""Chrome-trace / Perfetto exporter for spans and flight-recorder events.

Produces the `Trace Event Format`_ JSON object form -- ``{"traceEvents":
[...]}`` -- which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  Span records become complete events (``"ph": "X"``); recorder
events become thread-scoped instant events (``"ph": "i"``) anchored inside
the span that was open when they fired.

:class:`~repro.telemetry.spans.SpanRecord` stores only durations, not start
times, so the exporter reconstructs a synthetic timeline: root spans are
laid out back-to-back and children are packed sequentially from their
parent's start.  Relative durations and nesting -- the facts the tracer
actually measured -- are faithful; absolute wall-clock positions are not
claimed.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.events import EventRecorder
from repro.telemetry.spans import SpanRecord, SpanTracer

PathLike = Union[str, Path]

_PID = 1
_TID = 1
# Synthetic floor for zero-duration spans so nesting stays visible (µs).
_MIN_SPAN_US = 1.0


def _layout_spans(
    roots: List[SpanRecord],
) -> Tuple[List[Dict[str, object]], Dict[str, List[Tuple[float, float]]]]:
    """Assign start offsets; returns (trace events, span path -> intervals)."""
    events: List[Dict[str, object]] = []
    intervals: Dict[str, List[Tuple[float, float]]] = {}

    def emit(record: SpanRecord, start_us: float) -> float:
        duration_us = max(record.duration_seconds * 1e6, _MIN_SPAN_US)
        # A parent's measured time can be shorter than the sum of its
        # children's (clock granularity); widen it so the nest stays valid.
        child_cursor = start_us
        child_events_at = len(events)
        events.append({})  # placeholder, patched below for correct ordering
        for child in record.children:
            child_cursor = emit(child, child_cursor)
        duration_us = max(duration_us, child_cursor - start_us)
        events[child_events_at] = {
            "name": record.name,
            "cat": "span",
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": _PID,
            "tid": _TID,
            "args": {"path": record.path, **record.attributes},
        }
        intervals.setdefault(record.path, []).append((start_us, duration_us))
        return start_us + duration_us

    cursor = 0.0
    for root in roots:
        cursor = emit(root, cursor)
    return events, intervals


def _layout_events(
    recorder: EventRecorder,
    intervals: Dict[str, List[Tuple[float, float]]],
    timeline_end: float,
) -> List[Dict[str, object]]:
    """Place instant events inside their spans, ordered by sequence number.

    Events sharing a span path are spread evenly across that path's first
    interval so Perfetto renders them in stream order; events recorded with
    no open span trail the whole timeline.
    """
    by_span: Dict[str, List[int]] = {}
    for index, event in enumerate(recorder.events):
        by_span.setdefault(event.span, []).append(index)

    placed: List[Dict[str, object]] = []
    for span_path, indices in by_span.items():
        if span_path in intervals:
            start, duration = intervals[span_path][0]
        else:
            start, duration = timeline_end, _MIN_SPAN_US * len(indices)
        step = duration / (len(indices) + 1)
        for position, index in enumerate(indices, start=1):
            event = recorder.events[index]
            placed.append(
                {
                    "name": event.kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": start + position * step,
                    "pid": _PID,
                    "tid": _TID,
                    "args": {"seq": event.seq, "span": event.span, **event.data},
                }
            )
    placed.sort(key=lambda e: (e["ts"], e["args"]["seq"]))
    return placed


def build_trace(
    tracer: SpanTracer,
    recorder: Optional[EventRecorder] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The Chrome trace JSON object for one run's spans + events."""
    span_events, intervals = _layout_spans(tracer.roots)
    timeline_end = max(
        (e["ts"] + e["dur"] for e in span_events), default=0.0
    )
    trace_events: List[Dict[str, object]] = [
        {"name": "process_name", "ph": "M", "pid": _PID,
         "args": {"name": "repro attack pipeline"}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID,
         "args": {"name": "pipeline"}},
    ]
    trace_events.extend(span_events)
    if recorder is not None:
        trace_events.extend(_layout_events(recorder, intervals, timeline_end))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_trace(
    path: PathLike,
    tracer: SpanTracer,
    recorder: Optional[EventRecorder] = None,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write the trace file; returns the number of trace events written."""
    trace = build_trace(tracer, recorder=recorder, meta=meta)
    Path(path).write_text(json.dumps(trace, sort_keys=True) + "\n")
    return len(trace["traceEvents"])


def stitch_traces(
    named_traces: List[Tuple[str, Dict[str, object]]],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Merge per-worker traces into one fleet trace, one process per worker.

    Each ``(name, trace)`` pair gets its own pid (1-based, in input order)
    with ``name`` as its process label, so Perfetto renders the fleet as
    parallel worker lanes.  Per-trace ``process_name`` metadata is replaced
    by the lane label; every other event is kept with its pid rewritten.
    Timelines stay synthetic (see module docstring): lanes align at 0, not
    at wall-clock claim times.
    """
    events: List[Dict[str, object]] = []
    for pid, (name, trace) in enumerate(named_traces, start=1):
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
        for event in trace.get("traceEvents", []):
            if event.get("ph") == "M" and event.get("name") == "process_name":
                continue
            clone = dict(event)
            clone["pid"] = pid
            events.append(clone)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def validate_trace(trace: Dict[str, object]) -> None:
    """Assert the minimal Chrome trace-event invariants (tests/CI smoke).

    Raises ``ValueError`` when the object would not load in Perfetto: a
    missing ``traceEvents`` list, an event without a phase, a complete
    event without a duration, or a child extending past its parent.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace has no traceEvents list")
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            raise ValueError(f"unsupported phase {phase!r} in {event}")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"event without numeric ts: {event}")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError(f"complete event without dur: {event}")
        if "name" not in event or "pid" not in event or "tid" not in event:
            raise ValueError(f"event missing name/pid/tid: {event}")
