"""Process-wide metric primitives: counters, gauges and histograms.

Aggregation is *fixed-seed safe*: no sampling, no reservoir tricks, and
every exported view sorts its keys, so two runs with the same seeds (or
the same run re-exported twice) produce byte-identical snapshots
regardless of metric creation order or thread interleaving.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional

from repro.errors import ReproError


class TelemetryError(ReproError):
    """Raised on invalid telemetry usage (merge conflicts, bad spans)."""


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count (events, bits flipped, rounds)."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease (add {amount})")
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A last-write-wins instantaneous value (loss, ASR, hit rate)."""

    name: str
    value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclasses.dataclass
class Histogram:
    """A full-fidelity value distribution (per-epoch seconds, yields).

    All observations are retained, so quantiles are exact and merging two
    histograms is plain concatenation -- deterministic for fixed seeds.
    """

    name: str
    values: List[float] = dataclasses.field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> Dict[str, float]:
        """Deterministic aggregate view (exact quantiles, no sampling)."""
        if not self.values:
            return {"count": 0, "sum": 0.0}
        ordered = sorted(self.values)
        n = len(ordered)

        def quantile(q: float) -> float:
            return ordered[min(n - 1, int(q * n))]

        return {
            "count": n,
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / n,
            "p50": quantile(0.50),
            "p95": quantile(0.95),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with deterministic export and merge.

    Metric names are dotted paths (``"online.bits_flipped"``); the same name
    may not be reused across metric kinds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- metric accessors ------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_kind(name, self._counters)
            return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_kind(name, self._gauges)
            return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            self._check_kind(name, self._histograms)
            return self._histograms.setdefault(name, Histogram(name))

    def _check_kind(self, name: str, home: Dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not home and name in kind:
                raise TelemetryError(f"metric {name!r} already exists with another kind")

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (e.g. per-worker registries).

        Counters add, histograms concatenate observations, and gauges take
        ``other``'s value (last writer wins) -- the natural semantics when
        ``other`` is the more recent shard.
        """
        for name in sorted(other._counters):
            self.counter(name).add(other._counters[name].value)
        for name in sorted(other._gauges):
            value = other._gauges[name].value
            if value is not None:
                self.gauge(name).set(value)
        for name in sorted(other._histograms):
            self.histogram(name).values.extend(other._histograms[name].values)

    def merge_snapshot(
        self,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, Optional[float]]] = None,
        histogram_values: Optional[Dict[str, List[float]]] = None,
    ) -> None:
        """Fold plain-dict metric values into this registry.

        The pickled form a sweep worker ships back across the process
        boundary (its :meth:`snapshot` counters/gauges plus
        :meth:`histogram_values`); same semantics as :meth:`merge`.
        Callers must merge worker snapshots in a deterministic order
        (e.g. grid order, not completion order) to keep gauge
        last-writer-wins results reproducible.
        """
        for name in sorted(counters or {}):
            self.counter(name).add(float(counters[name]))
        for name in sorted(gauges or {}):
            value = gauges[name]
            if value is not None:
                self.gauge(name).set(float(value))
        for name in sorted(histogram_values or {}):
            self.histogram(name).values.extend(
                float(v) for v in histogram_values[name]
            )

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view with sorted keys (JSON-ready, deterministic)."""
        with self._lock:
            return {
                "counters": {n: self._counters[n].value for n in sorted(self._counters)},
                "gauges": {n: self._gauges[n].value for n in sorted(self._gauges)},
                "histograms": {
                    n: self._histograms[n].summary() for n in sorted(self._histograms)
                },
            }

    def histogram_values(self) -> Dict[str, List[float]]:
        """Raw per-histogram observations (used by the JSONL exporter)."""
        with self._lock:
            return {n: list(self._histograms[n].values) for n in sorted(self._histograms)}
