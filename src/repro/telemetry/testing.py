"""Shared pytest helpers for telemetry isolation.

Both ``tests/conftest.py`` and ``benchmarks/conftest.py`` install
:func:`telemetry_guard` as an autouse fixture, so every test runs with
telemetry disabled and an empty registry/tracer -- the zero-overhead
default the tier-1 timing guarantee depends on -- and anything a test
enables or records is torn down afterwards.
"""

from __future__ import annotations

from typing import Iterator

from repro import telemetry


def telemetry_guard() -> Iterator[None]:
    """Generator fixture body: disabled + empty before and after each test."""
    telemetry.disable()
    telemetry.disable_events()
    telemetry.get_tracer().reset(force=True)
    telemetry.get_registry().reset()
    telemetry.get_recorder().reset()
    yield
    telemetry.disable()
    telemetry.disable_events()
    telemetry.get_tracer().reset(force=True)
    telemetry.get_registry().reset()
    telemetry.get_recorder().reset()
