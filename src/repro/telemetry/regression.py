"""Benchmark-regression gate: diff two ``BENCH_pipeline.json`` reports.

CI runs ``repro bench`` on every push and compares the fresh report against
the committed baseline with :func:`compare_reports`.  Two metric families
are gated:

- **counters** (bits flipped, hammer attempts, massaging rounds, ...): these
  are fully seeded, so any relative deviation beyond tolerance is a real
  behavior change;
- **span wall-times**: stage totals may legitimately wobble with host load,
  so only spans whose baseline total exceeds ``min_seconds`` are compared,
  each against ``time_tolerance``.

A missing baseline metric in the candidate always fails (a stage silently
disappearing is the regression the gate exists to catch); *new* candidate
metrics are allowed so instrumentation can grow without re-baselining.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

DEFAULT_TOLERANCE = 0.25  # ISSUE-specified: fail beyond 25 % deviation
DEFAULT_MIN_SECONDS = 0.05  # ignore sub-noise-floor spans


@dataclasses.dataclass
class Deviation:
    """One gated metric's baseline/candidate comparison."""

    kind: str  # "counter" | "span"
    name: str
    baseline: float
    candidate: float
    relative: float  # |candidate - baseline| / baseline
    failed: bool

    def format(self) -> str:
        status = "FAIL" if self.failed else "ok"
        return (
            f"[{status:>4}] {self.kind:<7} {self.name:<40} "
            f"baseline={self.baseline:<12.6g} candidate={self.candidate:<12.6g} "
            f"dev={100.0 * self.relative:.1f}%"
        )


def _relative(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return abs(candidate - baseline) / abs(baseline)


def compare_reports(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    time_tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[Deviation]:
    """Compare every gated metric; a ``Deviation.failed`` entry per breach."""
    deviations: List[Deviation] = []

    base_counters: Dict[str, float] = baseline.get("counters", {})
    cand_counters: Dict[str, float] = candidate.get("counters", {})
    for name in sorted(base_counters):
        base = float(base_counters[name])
        cand = float(cand_counters.get(name, 0.0))
        missing = name not in cand_counters
        relative = _relative(base, cand)
        deviations.append(
            Deviation(
                kind="counter",
                name=name,
                baseline=base,
                candidate=cand,
                relative=relative,
                failed=missing or relative > tolerance,
            )
        )

    base_spans: Dict[str, Dict[str, float]] = baseline.get("spans", {})
    cand_spans: Dict[str, Dict[str, float]] = candidate.get("spans", {})
    for path in sorted(base_spans):
        base = float(base_spans[path]["total_seconds"])
        if path not in cand_spans:
            deviations.append(
                Deviation(
                    kind="span", name=path, baseline=base, candidate=0.0,
                    relative=float("inf"), failed=True,
                )
            )
            continue
        if base < min_seconds:
            continue
        cand = float(cand_spans[path]["total_seconds"])
        relative = _relative(base, cand)
        deviations.append(
            Deviation(
                kind="span",
                name=path,
                baseline=base,
                candidate=cand,
                relative=relative,
                failed=relative > time_tolerance,
            )
        )
    return deviations


def format_comparison(deviations: List[Deviation]) -> str:
    """Human-readable gate output, failures first."""
    failed = [d for d in deviations if d.failed]
    passed = [d for d in deviations if not d.failed]
    lines = [d.format() for d in failed + passed]
    lines.append(
        f"bench-regression: {len(failed)} failed / {len(deviations)} gated metrics"
    )
    return "\n".join(lines)
