"""Benchmark-regression gate: diff two ``BENCH_pipeline.json`` reports.

CI runs ``repro bench`` on every push and compares the fresh report against
the committed baseline with :func:`compare_reports`.  Two metric families
are gated:

- **counters** (bits flipped, hammer attempts, massaging rounds, ...): these
  are fully seeded, so any relative deviation beyond tolerance is a real
  behavior change;
- **span wall-times**: stage totals may legitimately wobble with host load,
  so only spans whose baseline total exceeds ``min_seconds`` are compared,
  each against ``time_tolerance``.

A missing baseline metric in the candidate always fails (a stage silently
disappearing is the regression the gate exists to catch); *new* candidate
metrics are allowed so instrumentation can grow without re-baselining.

Two further families are diffed **informationally** (``gated=False``, never
failing the build): histogram observation counts/sums and flight-recorder
event counts per kind.  They surface behavior drift in the gate's output
without forcing a re-baseline each time instrumentation evolves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

DEFAULT_TOLERANCE = 0.25  # ISSUE-specified: fail beyond 25 % deviation
DEFAULT_MIN_SECONDS = 0.05  # ignore sub-noise-floor spans


@dataclasses.dataclass
class Deviation:
    """One metric's baseline/candidate comparison."""

    kind: str  # "counter" | "span" | "histogram" | "event"
    name: str
    baseline: float
    candidate: float
    relative: float  # |candidate - baseline| / baseline
    failed: bool
    gated: bool = True  # informational families never fail the build

    def format(self) -> str:
        status = "FAIL" if self.failed else ("ok" if self.gated else "info")
        return (
            f"[{status:>4}] {self.kind:<9} {self.name:<40} "
            f"baseline={self.baseline:<12.6g} candidate={self.candidate:<12.6g} "
            f"dev={100.0 * self.relative:.1f}%"
        )


def _relative(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return abs(candidate - baseline) / abs(baseline)


def compare_reports(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    time_tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[Deviation]:
    """Compare every gated metric; a ``Deviation.failed`` entry per breach."""
    deviations: List[Deviation] = []

    base_counters: Dict[str, float] = baseline.get("counters", {})
    cand_counters: Dict[str, float] = candidate.get("counters", {})
    for name in sorted(base_counters):
        base = float(base_counters[name])
        cand = float(cand_counters.get(name, 0.0))
        missing = name not in cand_counters
        relative = _relative(base, cand)
        deviations.append(
            Deviation(
                kind="counter",
                name=name,
                baseline=base,
                candidate=cand,
                relative=relative,
                failed=missing or relative > tolerance,
            )
        )

    base_spans: Dict[str, Dict[str, float]] = baseline.get("spans", {})
    cand_spans: Dict[str, Dict[str, float]] = candidate.get("spans", {})
    for path in sorted(base_spans):
        base = float(base_spans[path]["total_seconds"])
        if path not in cand_spans:
            deviations.append(
                Deviation(
                    kind="span", name=path, baseline=base, candidate=0.0,
                    relative=float("inf"), failed=True,
                )
            )
            continue
        if base < min_seconds:
            continue
        cand = float(cand_spans[path]["total_seconds"])
        relative = _relative(base, cand)
        deviations.append(
            Deviation(
                kind="span",
                name=path,
                baseline=base,
                candidate=cand,
                relative=relative,
                failed=relative > time_tolerance,
            )
        )

    def informational(kind: str, base_map: Dict[str, float], cand_map: Dict[str, float]) -> None:
        for name in sorted(set(base_map) | set(cand_map)):
            base = float(base_map.get(name, 0.0))
            cand = float(cand_map.get(name, 0.0))
            if base == cand:
                continue
            deviations.append(
                Deviation(
                    kind=kind, name=name, baseline=base, candidate=cand,
                    relative=_relative(base, cand), failed=False, gated=False,
                )
            )

    def histogram_stats(report: Dict[str, object]) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        for name, summary in (report.get("histograms") or {}).items():
            stats[f"{name}.count"] = float(summary.get("count", 0.0))
            stats[f"{name}.sum"] = float(summary.get("sum", 0.0))
        return stats

    informational("histogram", histogram_stats(baseline), histogram_stats(candidate))
    informational(
        "event",
        {k: float(v) for k, v in (baseline.get("events") or {}).items()},
        {k: float(v) for k, v in (candidate.get("events") or {}).items()},
    )
    return deviations


def cache_hit_rate_line(report: Dict[str, object]) -> str:
    """Informational one-liner on the evaluation engine's cache efficiency.

    Reads the ``engine.cache.*`` counters a bench report exports; returns a
    line suitable for ``bench-check`` output (never part of the gate).
    """
    counters: Dict[str, float] = report.get("counters", {}) or {}
    hits = float(counters.get("engine.cache.hit", 0.0))
    misses = float(counters.get("engine.cache.miss", 0.0))
    evicted = float(counters.get("engine.cache.evicted_bytes", 0.0))
    total = hits + misses
    if total == 0:
        return "engine-cache: no engine forwards recorded"
    return (
        f"engine-cache: hits={hits:.0f} misses={misses:.0f} "
        f"hit-rate={100.0 * hits / total:.1f}% evicted={evicted:.0f}B (informational)"
    )


# Top-level spans worth tracking across runs; sub-spans are too noisy for a
# trend line and already covered by the regression gate.
TREND_SPANS = ("bench", "bench_sweep", "bench_engine", "bench_kernels")


def _trend_metrics(report: Dict[str, object]) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    for path, span in (report.get("spans") or {}).items():
        if path in TREND_SPANS:
            metrics[f"span.{path}.seconds"] = float(span["total_seconds"])
    for name, value in (report.get("gauges") or {}).items():
        if value is not None:
            metrics[f"gauge.{name}"] = float(value)
    return metrics


def format_trend(runs: Sequence[Tuple[str, Dict[str, object]]]) -> str:
    """Wall-time/gauge trend table across bench reports, oldest first.

    Purely informational -- ``repro bench-trend`` never gates a build; the
    25 % regression gate is :func:`compare_reports`.  Rows are the union of
    top-level span totals (:data:`TREND_SPANS`) and every recorded gauge;
    a run missing a metric shows ``n/a`` rather than failing, so trend
    output stays usable across instrumentation changes.
    """
    if not runs:
        return "bench-trend: no reports"
    per_run = [(label, _trend_metrics(report)) for label, report in runs]
    names = sorted({name for _, metrics in per_run for name in metrics})
    label_width = max(12, max(len(label) for label, _ in per_run))
    name_width = max(len(name) for name in names) if names else 6
    lines = [
        " ".join(
            ["metric".ljust(name_width)]
            + [label.rjust(label_width) for label, _ in per_run]
        )
    ]
    for name in names:
        cells = []
        for _, metrics in per_run:
            value = metrics.get(name)
            cells.append(("n/a" if value is None else f"{value:.6g}").rjust(label_width))
        lines.append(" ".join([name.ljust(name_width)] + cells))
    lines.append(f"bench-trend: {len(per_run)} run(s), informational only")
    return "\n".join(lines)


def format_comparison(deviations: List[Deviation]) -> str:
    """Human-readable gate output: failures, then passes, then drift info."""
    failed = [d for d in deviations if d.failed]
    passed = [d for d in deviations if not d.failed and d.gated]
    info = [d for d in deviations if not d.gated]
    lines = [d.format() for d in failed + passed + info]
    gated = len(failed) + len(passed)
    lines.append(
        f"bench-regression: {len(failed)} failed / {gated} gated metrics"
        + (f" ({len(info)} informational drift line(s))" if info else "")
    )
    return "\n".join(lines)
