"""Nested wall-time spans: a context-manager tracer for pipeline stages.

Spans nest lexically (``with span("pipeline"): with span("pipeline.offline")``)
and every record keeps its dotted *path* -- parent names joined with ``/`` --
so stage-level durations aggregate without reconstructing the tree.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from typing import Dict, Iterator, List, Optional

from repro.telemetry.registry import TelemetryError


@dataclasses.dataclass
class SpanRecord:
    """One completed (or in-flight) timed stage."""

    name: str
    path: str  # "root/child/grandchild"
    duration_seconds: float = 0.0
    attributes: Dict[str, object] = dataclasses.field(default_factory=dict)
    children: List["SpanRecord"] = dataclasses.field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """Depth-first traversal, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, object]:
        """Picklable/JSON-able form (how sweep workers ship spans home)."""
        return {
            "name": self.name,
            "path": self.path,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(payload["name"]),
            path=str(payload["path"]),
            duration_seconds=float(payload.get("duration_seconds", 0.0)),
            attributes=dict(payload.get("attributes", {})),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class SpanTracer:
    """Collects a forest of nested span records."""

    def __init__(self) -> None:
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    @contextlib.contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[SpanRecord]:
        """Time a stage; nests under the innermost open span."""
        if "/" in name:
            raise TelemetryError(f"span name {name!r} may not contain '/'")
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent else name
        record = SpanRecord(name=name, path=path, attributes=dict(attributes))
        (parent.children if parent else self.roots).append(record)
        self._stack.append(record)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.duration_seconds = time.perf_counter() - start
            # A force-reset inside the span may already have cleared the stack.
            if self._stack and self._stack[-1] is record:
                self._stack.pop()

    def attach(self, record: SpanRecord) -> SpanRecord:
        """Graft a completed record (e.g. from a sweep worker) into the tree.

        The record nests under the innermost open span -- its ``path`` (and
        its children's) is rewritten for the new parent -- or becomes a new
        root when no span is open.
        """
        parent = self._stack[-1] if self._stack else None

        def rebase(node: SpanRecord, parent_path: Optional[str]) -> None:
            node.path = f"{parent_path}/{node.name}" if parent_path else node.name
            for child in node.children:
                rebase(child, node.path)

        rebase(record, parent.path if parent else None)
        (parent.children if parent else self.roots).append(record)
        return record

    def current_path(self) -> str:
        """Dotted path of the innermost open span ("" when none is open)."""
        return self._stack[-1].path if self._stack else ""

    # -- views -----------------------------------------------------------
    def reset(self, force: bool = False) -> None:
        """Drop all records.  Resetting inside an open span is an error
        unless ``force`` (test isolation) is set."""
        if self._stack:
            if not force:
                raise TelemetryError(
                    f"cannot reset tracer inside open span {self._stack[-1].path!r}"
                )
            self._stack.clear()
        self.roots.clear()

    def all_records(self) -> List[SpanRecord]:
        """Every record, depth-first, in completion order of the roots."""
        out: List[SpanRecord] = []
        for root in self.roots:
            out.extend(root.walk())
        return out

    def stage_durations(self) -> Dict[str, Dict[str, float]]:
        """Aggregate duration per span *path*, sorted (deterministic export).

        Repeated stages (e.g. one span per epoch) fold into one entry with
        their invocation count and total/min/max seconds.
        """
        stats: Dict[str, Dict[str, float]] = {}
        for record in self.all_records():
            entry = stats.setdefault(
                record.path,
                {"count": 0, "total_seconds": 0.0, "min_seconds": float("inf"),
                 "max_seconds": 0.0},
            )
            entry["count"] += 1
            entry["total_seconds"] += record.duration_seconds
            entry["min_seconds"] = min(entry["min_seconds"], record.duration_seconds)
            entry["max_seconds"] = max(entry["max_seconds"], record.duration_seconds)
        return {path: stats[path] for path in sorted(stats)}

    def find(self, path: str) -> Optional[SpanRecord]:
        """First record whose dotted path matches exactly (tests/debugging)."""
        for record in self.all_records():
            if record.path == path:
                return record
        return None
