"""``repro report``: render a forensics report from recorded artifacts.

Two input shapes are understood, auto-detected from the first line:

- a **flight record** (``*.events.jsonl``, written by
  :func:`repro.telemetry.dump_events`): the full per-bit provenance of one
  attack run -- flip table, CFT(+BR) convergence, massaging timeline,
  hammering outcomes and failure causes;
- a **sweep journal** (``*.journal.jsonl``, written by
  :class:`repro.parallel.journal.SweepJournal`): per-task status, attempts
  and structured failure causes for a whole grid.  Shard journals
  (``--shard i/n``) and ``repro merge`` outputs are auto-detected from the
  header's shard metadata and rendered with their shard identity.

A **queue directory** (as passed to ``sweep --queue``) is accepted too:
the report then covers the whole fleet -- per-worker commit counts from
``journals/*.jsonl`` plus a scheduler-decision summary (claims, steals,
commits, superseded per worker) from the ``events/*.events.jsonl``
decision logs that ``sweep --queue --events`` drops into the directory.
A flight record that itself carries ``sched.*`` events gets the same
decision summary as an extra section.

Rendering is a pure function of the input file -- no clocks, no host
information -- so repeated invocations are byte-identical, and a fixed-seed
re-run that regenerates the inputs regenerates the same report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.events import FLIGHT_SCHEMA, Event, read_events_jsonl
from repro.telemetry.registry import TelemetryError

PathLike = Union[str, Path]

REPORT_FORMATS = ("markdown", "json")

_CAUSE_LABELS = {
    "unmatched_page": "no compatible flippy frame (templating)",
    "placement_miss": "page landed on the wrong frame (massaging)",
    "cell_not_flipped": "cell did not flip under hammering",
    "not_attempted": "abandoned by the single-flip relaxation",
}


def detect_input_kind(path: PathLike) -> str:
    """``"flight"`` or ``"journal"``, from the file's first JSON line."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                first = json.loads(line)
            except json.JSONDecodeError:
                break
            kind = first.get("kind")
            if kind == "schema" and first.get("value") == FLIGHT_SCHEMA:
                return "flight"
            if kind in ("header", "result", "resume"):
                return "journal"
            break
    raise TelemetryError(
        f"{path}: neither a flight record ({FLIGHT_SCHEMA}) nor a sweep journal"
    )


# ---------------------------------------------------------------------------
# Flight-record analysis
# ---------------------------------------------------------------------------
def _first(events: Sequence[Event], kind: str) -> Optional[Event]:
    for event in events:
        if event.kind == kind:
            return event
    return None


def _all(events: Sequence[Event], kind: str) -> List[Event]:
    return [event for event in events if event.kind == kind]


def analyze_flight(events: Sequence[Event]) -> Dict[str, object]:
    """Structured forensics (the JSON report body) from one event stream."""
    start = _first(events, "attack.offline_start")
    offline = _first(events, "attack.offline_complete")
    verify_summary = _first(events, "verify.summary")

    committed = _all(events, "cft.flip_committed")
    pruned_keys = {
        (e.data.get("page"), e.data.get("byte_offset"))
        for e in _all(events, "cft.flip_pruned")
    }
    verifications = {
        (e.data.get("page"), e.data.get("byte_offset"), e.data.get("bit"),
         e.data.get("direction")): e.data
        for e in _all(events, "verify.flip")
    }

    flips: List[Dict[str, object]] = []
    for event in committed:
        data = dict(event.data)
        key = (data.get("page"), data.get("byte_offset"))
        data["pruned"] = key in pruned_keys
        verdict = verifications.get(
            (data.get("page"), data.get("byte_offset"), data.get("bit"),
             data.get("direction"))
        )
        if data["pruned"]:
            data["online"] = "pruned offline"
        elif verdict is None:
            data["online"] = "no verification recorded"
        elif verdict.get("achieved"):
            data["online"] = "achieved"
        else:
            cause = str(verdict.get("cause", ""))
            data["online"] = _CAUSE_LABELS.get(cause, cause or "missed")
        flips.append(data)
    # Planned flips the offline stream did not log a commit for (baseline
    # attacks record no cft.* events) still show up via their verification.
    seen = {(f.get("page"), f.get("byte_offset"), f.get("bit"), f.get("direction"))
            for f in flips}
    for key, verdict in verifications.items():
        if key in seen:
            continue
        cause = str(verdict.get("cause", ""))
        flips.append(
            {
                "page": key[0], "byte_offset": key[1], "bit": key[2],
                "direction": key[3], "pruned": False,
                "online": "achieved" if verdict.get("achieved")
                else _CAUSE_LABELS.get(cause, cause or "missed"),
            }
        )
    flips.sort(key=lambda f: (f.get("page") or 0, f.get("byte_offset") or 0,
                              f.get("bit") or 0))

    rounds = [
        {
            "round": e.data.get("round"),
            "loss": e.data.get("loss"),
            "asr": e.data.get("asr"),
            "candidates": e.data.get("candidates"),
        }
        for e in _all(events, "cft.round")
    ]

    timeline = [
        {"seq": e.seq, "kind": e.kind, **e.data}
        for e in events
        if e.kind in ("template.page", "online.plan", "online.fallback",
                      "massage.release", "massage.place",
                      "page_cache.insert", "page_cache.evict")
    ]
    placements = _all(events, "massage.place")
    placement_hits = sum(1 for e in placements if e.data.get("hit"))

    online_hammer = [
        e.data for e in _all(events, "hammer.attempt")
        if "online" in e.span
    ]
    profiling_attempts = sum(
        1 for e in _all(events, "hammer.attempt") if "online" not in e.span
    )

    failures = [f for f in flips
                if f["online"] not in ("achieved", "pruned offline")]

    evaluations = {
        str(e.data.get("phase")): e.data for e in _all(events, "pipeline.evaluate")
    }

    sched = analyze_sched(events)

    spec_events = _all(events, "engine.spec")
    speculation = {
        "promoted": sum(1 for e in spec_events if e.data.get("promoted")),
        "discarded": sum(1 for e in spec_events if not e.data.get("promoted")),
    }

    return {
        "run": {
            "method": (offline or start or Event(0, "")).data.get("method"),
            "seed": (start or Event(0, "")).data.get("seed"),
            "offline_n_flip": (offline or Event(0, "")).data.get("n_flip"),
            "verify": dict(verify_summary.data) if verify_summary else None,
            "evaluations": evaluations,
        },
        "flips": flips,
        "rounds": rounds,
        "massaging": {
            "timeline": timeline,
            "placements": len(placements),
            "placement_hits": placement_hits,
        },
        "hammering": {
            "online_attempts": online_hammer,
            "profiling_attempts": profiling_attempts,
        },
        "failures": failures,
        "sched": sched,
        "speculation": speculation,
        "event_kinds": _kind_counts(events),
    }


_SCHED_DECISIONS = ("claim", "steal", "commit", "superseded", "lease_expired")


def analyze_sched(events: Sequence[Event]) -> Dict[str, Dict[str, int]]:
    """Per-worker scheduler-decision counts from ``sched.*`` events.

    Returns ``{worker: {claims, steals, commits, superseded,
    lease_expired}}`` (sorted, zero-filled), empty when the stream holds
    no scheduler decisions at all.
    """
    per_worker: Dict[str, Dict[str, int]] = {}
    for event in events:
        if not event.kind.startswith("sched."):
            continue
        decision = event.kind[len("sched."):]
        if decision not in _SCHED_DECISIONS:
            continue
        worker = str(event.data.get("worker", "?"))
        counts = per_worker.setdefault(
            worker, {name: 0 for name in _SCHED_DECISIONS}
        )
        counts[decision] += 1
    return {worker: per_worker[worker] for worker in sorted(per_worker)}


def render_sched_section(sched: Dict[str, Dict[str, int]]) -> List[str]:
    """The "Scheduler decisions" markdown section (empty list when none)."""
    if not sched:
        return []
    lines = ["", "## Scheduler decisions", ""]
    rows = [
        [worker] + [_fmt(counts.get(name, 0)) for name in _SCHED_DECISIONS]
        for worker, counts in sched.items()
    ]
    lines += _table(
        ["worker", "claims", "steals", "commits", "superseded", "lease expiries"],
        rows,
    )
    return lines


def _kind_counts(events: Sequence[Event]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return {kind: counts[kind] for kind in sorted(counts)}


def _fmt(value: object, spec: str = "") -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def render_flight_markdown(analysis: Dict[str, object]) -> str:
    """The human-facing forensics report for one recorded attack run."""
    run = analysis["run"]
    lines: List[str] = ["# Attack flight report", ""]
    lines.append(f"- method: **{_fmt(run.get('method'))}**")
    lines.append(f"- seed: {_fmt(run.get('seed'))}")
    lines.append(f"- offline N_flip: {_fmt(run.get('offline_n_flip'))}")
    verify = run.get("verify")
    if verify:
        lines.append(
            f"- online: {_fmt(verify.get('achieved'))} / "
            f"{_fmt(verify.get('required'))} planned flips achieved, "
            f"r_match {_fmt(verify.get('r_match'), '.2f')} %, "
            f"{_fmt(verify.get('accidental_targeted'))} accidental flips in "
            f"targeted pages, {_fmt(verify.get('accidental_elsewhere'))} elsewhere"
        )
    for phase in sorted(run.get("evaluations", {})):
        data = run["evaluations"][phase]
        lines.append(
            f"- {phase} evaluation: TA {_fmt(data.get('ta'), '.4f')}, "
            f"ASR {_fmt(data.get('asr'), '.4f')}"
        )

    flips = analysis["flips"]
    lines += ["", "## Flip provenance", ""]
    if flips:
        rows = [
            [
                _fmt(f.get("page")), _fmt(f.get("byte_offset")),
                _fmt(f.get("bit")),
                {1: "0->1", -1: "1->0"}.get(f.get("direction"), "-"),
                f"{_fmt(f.get('old'))} -> {_fmt(f.get('new'))}"
                if "old" in f else "-",
                _fmt(f.get("layer")), f.get("online", "-"),
            ]
            for f in flips
        ]
        lines += _table(
            ["page", "offset", "bit", "dir", "byte", "layer", "online outcome"], rows
        )
    else:
        lines.append("(no weight flips recorded)")

    rounds = analysis["rounds"]
    lines += ["", "## CFT(+BR) convergence", ""]
    if rounds:
        rows = [
            [_fmt(r.get("round")), _fmt(r.get("loss"), ".6f"),
             _fmt(r.get("asr"), ".4f"), _fmt(r.get("candidates"))]
            for r in rounds
        ]
        lines += _table(["round", "loss", "ASR", "candidates"], rows)
    else:
        lines.append("(no per-round convergence events recorded)")
    speculation = analysis.get("speculation") or {}
    if speculation.get("promoted") or speculation.get("discarded"):
        lines.append("")
        lines.append(
            f"Round-ahead speculation: {speculation['promoted']} commit(s) "
            f"promoted from scoring buffers, {speculation['discarded']} "
            "discarded (stale signatures fall back to recompute)."
        )

    massaging = analysis["massaging"]
    lines += ["", "## Massaging timeline", ""]
    if massaging["timeline"]:
        lines.append(
            f"{massaging['placement_hits']} / {massaging['placements']} "
            "target pages landed on their planned frame."
        )
        lines.append("")
        for step in massaging["timeline"]:
            detail = ", ".join(
                f"{k}={v}" for k, v in step.items() if k not in ("seq", "kind")
            )
            lines.append(f"- `{step['seq']:>5}` {step['kind']}: {detail}")
    else:
        lines.append("(no massaging events recorded)")

    hammering = analysis["hammering"]
    lines += ["", "## Hammering", ""]
    lines.append(
        f"{hammering['profiling_attempts']} profiling hammer attempts preceded "
        "the online phase."
    )
    if hammering["online_attempts"]:
        lines.append("")
        rows = [
            [_fmt(a.get("bank")), _fmt(a.get("row")), _fmt(a.get("n_sides")),
             _fmt(a.get("flips")), _fmt(a.get("seconds"), ".3f")]
            for a in hammering["online_attempts"]
        ]
        lines += _table(["bank", "row", "sides", "flips", "sim s"], rows)

    failures = analysis["failures"]
    lines += ["", "## Failure causes", ""]
    if failures:
        for f in failures:
            lines.append(
                f"- page {_fmt(f.get('page'))} offset {_fmt(f.get('byte_offset'))} "
                f"bit {_fmt(f.get('bit'))}: {f.get('online')}"
            )
    else:
        lines.append("No planned flip failed.")

    lines += render_sched_section(analysis.get("sched") or {})

    lines += ["", "## Event stream", ""]
    for kind, count in analysis["event_kinds"].items():
        lines.append(f"- {kind}: {count}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Sweep-journal analysis
# ---------------------------------------------------------------------------
def analyze_journal(path: PathLike) -> Dict[str, object]:
    from repro.parallel.journal import SweepJournal

    state = SweepJournal.load(path)
    tasks = [
        {
            "task_id": task_id,
            "status": record.get("status"),
            "attempts": record.get("attempts"),
            "error": record.get("error"),
        }
        for task_id, record in sorted(state.records.items())
    ]
    by_status: Dict[str, int] = {}
    for task in tasks:
        status = str(task["status"])
        by_status[status] = by_status.get(status, 0) + 1
    return {
        "header": state.header,
        "tasks": tasks,
        "by_status": {status: by_status[status] for status in sorted(by_status)},
        "resumes": len(state.resumes),
        "malformed_lines": state.malformed_lines,
    }


def render_journal_markdown(analysis: Dict[str, object]) -> str:
    header = analysis.get("header") or {}
    lines: List[str] = ["# Sweep journal report", ""]
    lines.append(f"- grid sha: `{_fmt(header.get('grid_sha'))}`")
    lines.append(f"- total tasks: {_fmt(header.get('total_tasks'))}")
    # Ownership identity (auto-detected): a shard journal covers one slice
    # of the grid, a queue journal belongs to one worker, and a merged
    # journal records how many per-host journals it reassembled.
    if header.get("merged_from") is not None:
        lines.append(
            f"- merged from {_fmt(header.get('merged_from'))} per-host journal(s) "
            f"({len(header.get('shard_task_ids') or ())} task(s) covered)"
        )
    elif header.get("schedule") == "queue":
        lines.append(
            f"- queue worker: {_fmt(header.get('worker'))} "
            f"(dynamic ownership of a {_fmt(header.get('total_tasks'))}-task grid)"
        )
    elif int(header.get("shard_count") or 1) > 1:
        lines.append(
            f"- shard: {int(header.get('shard_index') or 0) + 1} of "
            f"{_fmt(header.get('shard_count'))} "
            f"({len(header.get('shard_task_ids') or ())} of "
            f"{_fmt(header.get('total_tasks'))} tasks)"
        )
    lines.append(f"- recorded results: {len(analysis['tasks'])}")
    for status, count in analysis["by_status"].items():
        lines.append(f"- {status}: {count}")
    lines.append(f"- resumes: {analysis['resumes']}")
    if analysis["malformed_lines"]:
        lines.append(f"- malformed/torn lines skipped: {analysis['malformed_lines']}")

    lines += ["", "## Tasks", ""]
    rows = [
        [task["task_id"], _fmt(task["status"]), _fmt(task["attempts"])]
        for task in analysis["tasks"]
    ]
    if rows:
        lines += _table(["task", "status", "attempts"], rows)
    else:
        lines.append("(journal holds no results)")

    failures = [t for t in analysis["tasks"] if t["status"] == "failed"]
    lines += ["", "## Failure causes", ""]
    if failures:
        for task in failures:
            error = task.get("error") or {}
            lines.append(
                f"- `{task['task_id']}` after {_fmt(task['attempts'])} attempt(s): "
                f"{_fmt(error.get('type'))}: {_fmt(error.get('message'))}"
            )
    else:
        lines.append("No task failed.")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Queue-directory (fleet) analysis
# ---------------------------------------------------------------------------
def analyze_queue_dir(path: PathLike) -> Dict[str, object]:
    """Fleet-level analysis of a queue directory: journals + decision logs."""
    from repro.parallel.journal import SweepJournal

    root = Path(path)
    journal_paths = sorted((root / "journals").glob("*.jsonl"))
    if not journal_paths:
        raise TelemetryError(
            f"{root}: not a queue directory report target (no journals/*.jsonl)"
        )
    grid_sha: Optional[str] = None
    total_tasks: Optional[int] = None
    workers: Dict[str, Dict[str, int]] = {}
    for journal_path in journal_paths:
        state = SweepJournal.load(journal_path)
        header = state.header or {}
        grid_sha = grid_sha or header.get("grid_sha")
        total_tasks = total_tasks or header.get("total_tasks")
        worker = str(header.get("worker") or journal_path.name.split(".")[0])
        counts = workers.setdefault(
            worker, {"ok": 0, "failed": 0, "superseded": 0, "other": 0}
        )
        for record in state.records.values():
            status = str(record.get("status"))
            counts[status if status in counts else "other"] += 1
    decisions: Dict[str, Dict[str, int]] = {}
    events_dir = root / "events"
    decision_logs = sorted(events_dir.glob("*.jsonl")) if events_dir.is_dir() else []
    for log_path in decision_logs:
        for worker, counts in analyze_sched(read_events_jsonl(log_path)).items():
            merged = decisions.setdefault(
                worker, {name: 0 for name in _SCHED_DECISIONS}
            )
            for name, value in counts.items():
                merged[name] += value
    return {
        "queue": str(root),
        "grid_sha": grid_sha,
        "total_tasks": total_tasks,
        "workers": {worker: workers[worker] for worker in sorted(workers)},
        "decision_logs": [p.name for p in decision_logs],
        "sched": {worker: decisions[worker] for worker in sorted(decisions)},
    }


def render_queue_markdown(analysis: Dict[str, object]) -> str:
    lines: List[str] = ["# Queue fleet report", ""]
    lines.append(f"- queue: `{analysis['queue']}`")
    lines.append(f"- grid sha: `{_fmt(analysis.get('grid_sha'))}`")
    lines.append(f"- total tasks: {_fmt(analysis.get('total_tasks'))}")
    lines.append(f"- workers: {len(analysis['workers'])}")

    lines += ["", "## Per-worker results", ""]
    rows = [
        [worker, _fmt(counts["ok"]), _fmt(counts["failed"]),
         _fmt(counts["superseded"]), _fmt(counts["other"])]
        for worker, counts in analysis["workers"].items()
    ]
    lines += _table(["worker", "ok", "failed", "superseded", "other"], rows)

    sched = analysis.get("sched") or {}
    if sched:
        lines += render_sched_section(sched)
    else:
        lines += [
            "", "## Scheduler decisions", "",
            "(no decision logs found -- run the workers with "
            "`sweep --queue ... --events` to record them)",
        ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def render_report(path: PathLike, fmt: str = "markdown") -> str:
    """Render the forensics report for a flight record, journal or queue dir."""
    if fmt not in REPORT_FORMATS:
        raise TelemetryError(f"format must be one of {REPORT_FORMATS}, got {fmt!r}")
    if Path(path).is_dir():
        analysis = analyze_queue_dir(path)
        if fmt == "json":
            return json.dumps(
                {"source": "queue", "report": analysis}, indent=2, sort_keys=True
            ) + "\n"
        return render_queue_markdown(analysis)
    kind = detect_input_kind(path)
    if kind == "flight":
        analysis = analyze_flight(read_events_jsonl(path))
        source: Tuple[str, Dict[str, object]] = ("flight", analysis)
    else:
        analysis = analyze_journal(path)
        source = ("journal", analysis)
    if fmt == "json":
        return json.dumps(
            {"source": source[0], "report": source[1]}, indent=2, sort_keys=True
        ) + "\n"
    if kind == "flight":
        return render_flight_markdown(analysis)
    return render_journal_markdown(analysis)
