"""Run manifests: the identity card written next to every run artifact.

A journal, bench report or flight record is only analyzable if you know
exactly what produced it.  The manifest pins that down: package version,
Python/platform, the run's configuration and seeds, the DRAM device profile
attacked, and -- for sweeps -- the content SHA of the expanded grid (the
same identity the journal header carries).

Manifests deliberately carry **no timestamps**: re-running the same seeded
command on the same interpreter produces a byte-identical manifest, so the
artifact set as a whole stays reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from repro.version import __version__

MANIFEST_SCHEMA = "repro-manifest/1"

PathLike = Union[str, Path]


def manifest_path_for(artifact: PathLike) -> Path:
    """Where an artifact's manifest lives: ``<artifact>.manifest.json``."""
    artifact = Path(artifact)
    return artifact.with_name(artifact.name + ".manifest.json")


def sha256_file(path: PathLike) -> str:
    """Content SHA-256 of an artifact file (hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _profile_dict(device: Optional[str]) -> Optional[Dict[str, object]]:
    if device is None:
        return None
    from repro.rowhammer.device_profiles import get_profile

    return dataclasses.asdict(get_profile(device))


def _backend_dict() -> Dict[str, object]:
    """The active compute backend's metadata (name, spec, thread count).

    Deterministic for a given selection, so it keeps the manifest
    byte-reproducible while recording whether the artifacts were produced
    under a byte-identical profile.
    """
    from repro.backend import current_backend

    return current_backend().describe()


def build_manifest(
    run_kind: str,
    config: Optional[Dict[str, object]] = None,
    seeds: Sequence[int] = (),
    device: Optional[str] = None,
    grid_sha: Optional[str] = None,
    artifacts: Optional[Dict[str, str]] = None,
    counters: Optional[Dict[str, float]] = None,
    artifact_sha256: Optional[Dict[str, str]] = None,
) -> Dict[str, object]:
    """Assemble the manifest document for one run.

    Parameters
    ----------
    run_kind:
        ``"bench"``, ``"sweep"``, ``"attack"``, ... -- the producing command.
    config:
        The run's effective configuration as plain JSON-able data.
    seeds:
        Every seed the run depends on.
    device:
        Table I device tag; expanded to the full profile when given.
    grid_sha:
        Content SHA of the expanded sweep grid (sweeps only).
    artifacts:
        Logical name -> file name of the sibling artifacts this manifest
        describes (journal, report, events, trace).
    counters:
        Deterministic run counters worth pinning to the artifact identity
        (e.g. the evaluation engine's ``engine.cache.*`` hit/miss totals).
    artifact_sha256:
        Logical artifact name -> content SHA-256 (:func:`sha256_file`) for
        the *deterministic* sibling artifacts (rows, flight records --
        never journals, whose wall-clock durations vary between runs).
        This is what lets ``repro merge`` prove its output byte-identical
        to the unsharded sweep it reassembles.
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "run_kind": run_kind,
        "version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": dict(config or {}),
        "seeds": [int(seed) for seed in seeds],
        "backend": _backend_dict(),
        "device_profile": _profile_dict(device),
        "grid_sha": grid_sha,
        "artifacts": dict(artifacts or {}),
        "counters": dict(counters or {}),
        "artifact_sha256": dict(artifact_sha256 or {}),
    }


def write_manifest(manifest: Dict[str, object], path: PathLike) -> Path:
    """Write a manifest as stable JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def read_manifest(path: PathLike) -> Dict[str, object]:
    from repro.telemetry.registry import TelemetryError

    manifest = json.loads(Path(path).read_text())
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise TelemetryError(
            f"{path}: expected schema {MANIFEST_SCHEMA!r}, got {manifest.get('schema')!r}"
        )
    return manifest
