"""Exporters: the ``BENCH_pipeline.json`` report shape, JSONL, OpenMetrics.

Three formats serve three consumers:

- :func:`build_report` / :func:`write_json` -- one aggregated JSON document
  (stage durations + metric snapshot) that the CI benchmark-regression gate
  diffs against a committed baseline.
- :func:`write_jsonl` / :func:`read_jsonl` -- one JSON object per line, full
  fidelity (every span record, every histogram observation), for ad-hoc
  analysis and lossless round-trips.
- :func:`render_openmetrics` / :func:`write_openmetrics` -- the OpenMetrics
  / Prometheus text exposition format, for scrape-based collection (e.g.
  the node_exporter textfile collector watching a live sweep's counters).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.events import EventRecorder
from repro.telemetry.registry import MetricsRegistry, TelemetryError
from repro.telemetry.spans import SpanRecord, SpanTracer

SCHEMA = "repro-telemetry/1"

PathLike = Union[str, Path]


def build_report(
    registry: MetricsRegistry,
    tracer: SpanTracer,
    meta: Optional[Dict[str, object]] = None,
    recorder: Optional[EventRecorder] = None,
) -> Dict[str, object]:
    """The aggregated benchmark report (the ``BENCH_pipeline.json`` shape).

    ``events`` holds per-kind flight-recorder counts (empty unless the run
    enabled event recording); ``bench-check`` diffs them informationally.
    """
    snapshot = registry.snapshot()
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "spans": tracer.stage_durations(),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "events": recorder.kind_counts() if recorder is not None else {},
    }


def write_json(report: Dict[str, object], path: PathLike) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def read_json(path: PathLike) -> Dict[str, object]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise TelemetryError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


# ---------------------------------------------------------------------------
# OpenMetrics / Prometheus text exposition
# ---------------------------------------------------------------------------
_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    """``repro`` + dotted metric name -> a legal Prometheus metric name."""
    cleaned = _METRIC_NAME_RE.sub("_", name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def render_openmetrics(report: Dict[str, object], prefix: str = "repro") -> str:
    """The OpenMetrics text exposition of a report or metrics snapshot.

    Accepts either the :func:`build_report` document or a bare registry
    snapshot -- anything with ``counters``/``gauges``/``histograms`` dicts.
    Counters become ``<name>_total`` counter families, gauges become
    gauges, histogram summaries become OpenMetrics ``summary`` families
    (count, sum and the snapshot's p50/p95 quantiles).  The output ends
    with the mandatory ``# EOF`` terminator.
    """
    lines: List[str] = []
    counters = dict(report.get("counters") or {})
    for name in sorted(counters):
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {counters[name]:g}")
    gauges = dict(report.get("gauges") or {})
    for name in sorted(gauges):
        value = gauges[name]
        if value is None:
            continue
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    histograms = dict(report.get("histograms") or {})
    for name in sorted(histograms):
        summary = dict(histograms[name] or {})
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95")):
            if summary.get(key) is not None:
                lines.append(f'{metric}{{quantile="{quantile}"}} {summary[key]:g}')
        lines.append(f"{metric}_count {summary.get('count', 0):g}")
        lines.append(f"{metric}_sum {summary.get('sum', 0.0):g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    report: Dict[str, object], path: PathLike, prefix: str = "repro"
) -> int:
    """Atomically write the OpenMetrics textfile; returns lines written.

    Atomic (temp file + ``os.replace``) because the intended reader is a
    textfile-collector scraping while a live run rewrites the file.
    """
    text = render_openmetrics(report, prefix=prefix)
    target = Path(path)
    tmp = target.with_name(target.name + f".{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(str(tmp), str(target))
    return text.count("\n")


# ---------------------------------------------------------------------------
# JSONL (line-per-event, lossless)
# ---------------------------------------------------------------------------
def write_jsonl(registry: MetricsRegistry, tracer: SpanTracer, path: PathLike) -> int:
    """Stream every span and metric as one JSON object per line.

    Returns the number of lines written.  Span lines carry the full dotted
    path so the tree can be rebuilt; histogram lines carry raw observations.
    """
    lines: List[str] = [json.dumps({"kind": "schema", "value": SCHEMA})]
    for record in tracer.all_records():
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": record.name,
                    "path": record.path,
                    "duration_seconds": record.duration_seconds,
                    "attributes": record.attributes,
                },
                sort_keys=True,
            )
        )
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}))
    for name, value in snapshot["gauges"].items():
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}))
    for name, values in registry.histogram_values().items():
        lines.append(json.dumps({"kind": "histogram", "name": name, "values": values}))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def read_jsonl(path: PathLike) -> Tuple[MetricsRegistry, SpanTracer]:
    """Rebuild a registry and span forest from a JSONL export."""
    registry = MetricsRegistry()
    tracer = SpanTracer()
    by_path: Dict[str, SpanRecord] = {}
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        event = json.loads(line)
        kind = event.get("kind")
        if kind == "schema":
            if event["value"] != SCHEMA:
                raise TelemetryError(f"{path}:{lineno}: unsupported schema {event['value']!r}")
        elif kind == "span":
            record = SpanRecord(
                name=event["name"],
                path=event["path"],
                duration_seconds=event["duration_seconds"],
                attributes=event.get("attributes", {}),
            )
            by_path[record.path] = record
            parent_path = record.path.rsplit("/", 1)[0] if "/" in record.path else None
            if parent_path is not None and parent_path in by_path:
                by_path[parent_path].children.append(record)
            else:
                tracer.roots.append(record)
        elif kind == "counter":
            registry.counter(event["name"]).add(event["value"])
        elif kind == "gauge":
            if event["value"] is not None:
                registry.gauge(event["name"]).set(event["value"])
        elif kind == "histogram":
            registry.histogram(event["name"]).values.extend(event["values"])
        else:
            raise TelemetryError(f"{path}:{lineno}: unknown event kind {kind!r}")
    return registry, tracer
