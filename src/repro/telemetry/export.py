"""Exporters: the ``BENCH_pipeline.json`` report shape and JSONL streams.

Two formats serve two consumers:

- :func:`build_report` / :func:`write_json` -- one aggregated JSON document
  (stage durations + metric snapshot) that the CI benchmark-regression gate
  diffs against a committed baseline.
- :func:`write_jsonl` / :func:`read_jsonl` -- one JSON object per line, full
  fidelity (every span record, every histogram observation), for ad-hoc
  analysis and lossless round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.events import EventRecorder
from repro.telemetry.registry import MetricsRegistry, TelemetryError
from repro.telemetry.spans import SpanRecord, SpanTracer

SCHEMA = "repro-telemetry/1"

PathLike = Union[str, Path]


def build_report(
    registry: MetricsRegistry,
    tracer: SpanTracer,
    meta: Optional[Dict[str, object]] = None,
    recorder: Optional[EventRecorder] = None,
) -> Dict[str, object]:
    """The aggregated benchmark report (the ``BENCH_pipeline.json`` shape).

    ``events`` holds per-kind flight-recorder counts (empty unless the run
    enabled event recording); ``bench-check`` diffs them informationally.
    """
    snapshot = registry.snapshot()
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "spans": tracer.stage_durations(),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "events": recorder.kind_counts() if recorder is not None else {},
    }


def write_json(report: Dict[str, object], path: PathLike) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def read_json(path: PathLike) -> Dict[str, object]:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != SCHEMA:
        raise TelemetryError(
            f"{path}: expected schema {SCHEMA!r}, got {report.get('schema')!r}"
        )
    return report


# ---------------------------------------------------------------------------
# JSONL (line-per-event, lossless)
# ---------------------------------------------------------------------------
def write_jsonl(registry: MetricsRegistry, tracer: SpanTracer, path: PathLike) -> int:
    """Stream every span and metric as one JSON object per line.

    Returns the number of lines written.  Span lines carry the full dotted
    path so the tree can be rebuilt; histogram lines carry raw observations.
    """
    lines: List[str] = [json.dumps({"kind": "schema", "value": SCHEMA})]
    for record in tracer.all_records():
        lines.append(
            json.dumps(
                {
                    "kind": "span",
                    "name": record.name,
                    "path": record.path,
                    "duration_seconds": record.duration_seconds,
                    "attributes": record.attributes,
                },
                sort_keys=True,
            )
        )
    snapshot = registry.snapshot()
    for name, value in snapshot["counters"].items():
        lines.append(json.dumps({"kind": "counter", "name": name, "value": value}))
    for name, value in snapshot["gauges"].items():
        lines.append(json.dumps({"kind": "gauge", "name": name, "value": value}))
    for name, values in registry.histogram_values().items():
        lines.append(json.dumps({"kind": "histogram", "name": name, "values": values}))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(lines)


def read_jsonl(path: PathLike) -> Tuple[MetricsRegistry, SpanTracer]:
    """Rebuild a registry and span forest from a JSONL export."""
    registry = MetricsRegistry()
    tracer = SpanTracer()
    by_path: Dict[str, SpanRecord] = {}
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        event = json.loads(line)
        kind = event.get("kind")
        if kind == "schema":
            if event["value"] != SCHEMA:
                raise TelemetryError(f"{path}:{lineno}: unsupported schema {event['value']!r}")
        elif kind == "span":
            record = SpanRecord(
                name=event["name"],
                path=event["path"],
                duration_seconds=event["duration_seconds"],
                attributes=event.get("attributes", {}),
            )
            by_path[record.path] = record
            parent_path = record.path.rsplit("/", 1)[0] if "/" in record.path else None
            if parent_path is not None and parent_path in by_path:
                by_path[parent_path].children.append(record)
            else:
                tracer.roots.append(record)
        elif kind == "counter":
            registry.counter(event["name"]).add(event["value"])
        elif kind == "gauge":
            if event["value"] is not None:
                registry.gauge(event["name"]).set(event["value"])
        elif kind == "histogram":
            registry.histogram(event["name"]).values.extend(event["values"])
        else:
            raise TelemetryError(f"{path}:{lineno}: unknown event kind {kind!r}")
    return registry, tracer
