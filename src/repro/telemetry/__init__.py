"""Process-wide telemetry: metrics, nested spans, events and exporters.

The subsystem is **disabled by default** and every instrumentation hook in
the hot paths is guarded so the disabled cost is one attribute check --
tier-1 test timings are unaffected.  Enable with :func:`enable` or the
``REPRO_TELEMETRY=1`` environment variable, then::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("pipeline"):
        run_attack()
        telemetry.counter_add("online.bits_flipped", 4)
    report = telemetry.dump("BENCH_pipeline.json")

``repro bench`` (see :mod:`repro.core.bench`) wraps exactly this flow around
a small end-to-end attack to produce the CI benchmark baseline.

The **flight recorder** (:mod:`repro.telemetry.events`) is a second,
independently-gated stream of typed provenance events (which weight was
selected, which bit was kept, which frame a page landed on, which flips the
hammer achieved).  Enable it with :func:`enable_events` or
``REPRO_TELEMETRY_EVENTS=1``; export with :func:`dump_events`, render with
``repro report``, and visualize alongside the span tree via
:mod:`repro.telemetry.trace` (Chrome trace / Perfetto).

**Live observability** (:mod:`repro.telemetry.live`,
:mod:`repro.telemetry.timeline`) is a third, sidecar surface: per-worker
status beacons, a time-series counter ring and an OpenMetrics textfile,
aggregated by ``repro watch`` -- wall-clock-stamped on purpose and written
next to (never inside) journals, so the determinism contract is untouched.
"""

from __future__ import annotations

import contextlib
import os
from typing import ContextManager, Dict, Iterator, Optional, Tuple

from repro.telemetry.events import (
    FLIGHT_SCHEMA,
    Event,
    EventRecorder,
    read_events_jsonl,
)
from repro.telemetry.events import write_events_jsonl as _write_events_jsonl
from repro.telemetry.export import (
    SCHEMA,
    build_report,
    read_json,
    read_jsonl,
    render_openmetrics,
    write_json,
    write_jsonl,
    write_openmetrics,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
)
from repro.telemetry.spans import SpanRecord, SpanTracer

__all__ = [
    "FLIGHT_SCHEMA",
    "SCHEMA",
    "Counter",
    "Event",
    "EventRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
    "TelemetryError",
    "build_report",
    "counter_add",
    "disable",
    "disable_events",
    "dump",
    "dump_events",
    "dump_jsonl",
    "enable",
    "enable_events",
    "enabled",
    "event",
    "events_enabled",
    "gauge_set",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "histogram_observe",
    "isolated",
    "read_events_jsonl",
    "read_json",
    "read_jsonl",
    "render_openmetrics",
    "reset",
    "span",
    "write_json",
    "write_jsonl",
    "write_openmetrics",
]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").lower() in ("1", "true", "yes", "on")


_enabled: bool = _env_flag("REPRO_TELEMETRY")
_events_enabled: bool = _env_flag("REPRO_TELEMETRY_EVENTS")
_registry = MetricsRegistry()
_tracer = SpanTracer()
_recorder = EventRecorder()


class _NullSpan:
    """Reusable no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# -- state ----------------------------------------------------------------
def enabled() -> bool:
    """Whether instrumentation hooks record anything (the hot-path guard)."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def events_enabled() -> bool:
    """Whether the flight recorder captures events (its own hot-path guard).

    Independent of :func:`enabled` so the benchmark baseline's counters and
    timings are untouched unless a run explicitly asks for provenance.
    """
    return _events_enabled


def enable_events() -> None:
    global _events_enabled
    _events_enabled = True


def disable_events() -> None:
    global _events_enabled
    _events_enabled = False


def reset() -> None:
    """Drop all recorded metrics, spans and events (flags are untouched)."""
    _registry.reset()
    _tracer.reset()
    _recorder.reset()


def get_registry() -> MetricsRegistry:
    return _registry


def get_tracer() -> SpanTracer:
    return _tracer


def get_recorder() -> EventRecorder:
    return _recorder


@contextlib.contextmanager
def isolated(
    enable: Optional[bool] = None, record_events: Optional[bool] = None
) -> Iterator[Tuple[MetricsRegistry, SpanTracer]]:
    """Swap in a fresh registry/tracer/recorder for the duration of the block.

    Everything recorded inside is confined to the fresh state; the previous
    registry, tracer, recorder and both enabled flags are restored on exit.
    The sweep runner wraps each in-process task in this so per-task metrics
    and events can be captured (and later merged) without clobbering the
    caller's telemetry.  ``enable`` / ``record_events`` optionally override
    the respective flags inside the block.  The fresh recorder is reachable
    via :func:`get_recorder` inside the block.
    """
    global _registry, _tracer, _recorder, _enabled, _events_enabled
    saved = (_registry, _tracer, _recorder, _enabled, _events_enabled)
    _registry, _tracer, _recorder = MetricsRegistry(), SpanTracer(), EventRecorder()
    if enable is not None:
        _enabled = enable
    if record_events is not None:
        _events_enabled = record_events
    try:
        yield _registry, _tracer
    finally:
        _registry, _tracer, _recorder, _enabled, _events_enabled = saved


# -- recording (all no-ops while disabled) --------------------------------
def span(name: str, **attributes: object) -> ContextManager:
    """Time a pipeline stage; nests under the innermost open span."""
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, **attributes)


def counter_add(name: str, amount: float = 1.0) -> None:
    if _enabled:
        _registry.counter(name).add(amount)


def gauge_set(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name).set(value)


def histogram_observe(name: str, value: float) -> None:
    if _enabled:
        _registry.histogram(name).observe(value)


def event(kind: str, **data: object) -> None:
    """Record one flight-recorder event (no-op unless events are enabled).

    The event inherits the innermost open span's path, so the stream can be
    correlated with the span tree (and anchored inside it by the trace
    exporter).  Callers with non-trivial payload construction should guard
    with :func:`events_enabled` first, same as the metric hooks.
    """
    if _events_enabled:
        _recorder.record(kind, span=_tracer.current_path(), **data)


# -- export ---------------------------------------------------------------
def dump(
    path: Optional[str] = None, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Build the aggregated report; write it as JSON when ``path`` is given."""
    report = build_report(_registry, _tracer, meta=meta, recorder=_recorder)
    if path is not None:
        write_json(report, path)
    return report


def dump_jsonl(path: str) -> int:
    """Write the full-fidelity line-per-event export; returns lines written."""
    return write_jsonl(_registry, _tracer, path)


def dump_events(path: str, meta: Optional[Dict[str, object]] = None) -> int:
    """Write the flight record as JSONL; returns lines written."""
    return _write_events_jsonl(_recorder, path, meta=meta)
