"""Process-wide telemetry: metrics, nested spans and JSON/JSONL export.

The subsystem is **disabled by default** and every instrumentation hook in
the hot paths is guarded so the disabled cost is one attribute check --
tier-1 test timings are unaffected.  Enable with :func:`enable` or the
``REPRO_TELEMETRY=1`` environment variable, then::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("pipeline"):
        run_attack()
        telemetry.counter_add("online.bits_flipped", 4)
    report = telemetry.dump("BENCH_pipeline.json")

``repro bench`` (see :mod:`repro.core.bench`) wraps exactly this flow around
a small end-to-end attack to produce the CI benchmark baseline.
"""

from __future__ import annotations

import contextlib
import os
from typing import ContextManager, Dict, Iterator, Optional, Tuple

from repro.telemetry.export import (
    SCHEMA,
    build_report,
    read_json,
    read_jsonl,
    write_json,
    write_jsonl,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryError,
)
from repro.telemetry.spans import SpanRecord, SpanTracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
    "TelemetryError",
    "build_report",
    "counter_add",
    "disable",
    "dump",
    "dump_jsonl",
    "enable",
    "enabled",
    "gauge_set",
    "get_registry",
    "get_tracer",
    "histogram_observe",
    "isolated",
    "read_json",
    "read_jsonl",
    "reset",
    "span",
    "write_json",
    "write_jsonl",
]

_enabled: bool = os.environ.get("REPRO_TELEMETRY", "").lower() in ("1", "true", "yes", "on")
_registry = MetricsRegistry()
_tracer = SpanTracer()


class _NullSpan:
    """Reusable no-op context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# -- state ----------------------------------------------------------------
def enabled() -> bool:
    """Whether instrumentation hooks record anything (the hot-path guard)."""
    return _enabled


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all recorded metrics and spans (the enabled flag is untouched)."""
    _registry.reset()
    _tracer.reset()


def get_registry() -> MetricsRegistry:
    return _registry


def get_tracer() -> SpanTracer:
    return _tracer


@contextlib.contextmanager
def isolated(enable: Optional[bool] = None) -> Iterator[Tuple[MetricsRegistry, SpanTracer]]:
    """Swap in a fresh registry/tracer for the duration of the block.

    Everything recorded inside is confined to the yielded pair; the previous
    registry, tracer and enabled flag are restored on exit.  The sweep
    runner wraps each in-process task in this so per-task metrics can be
    captured (and later merged) without clobbering the caller's telemetry.
    ``enable`` optionally overrides the enabled flag inside the block.
    """
    global _registry, _tracer, _enabled
    saved = (_registry, _tracer, _enabled)
    _registry, _tracer = MetricsRegistry(), SpanTracer()
    if enable is not None:
        _enabled = enable
    try:
        yield _registry, _tracer
    finally:
        _registry, _tracer, _enabled = saved


# -- recording (all no-ops while disabled) --------------------------------
def span(name: str, **attributes: object) -> ContextManager:
    """Time a pipeline stage; nests under the innermost open span."""
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, **attributes)


def counter_add(name: str, amount: float = 1.0) -> None:
    if _enabled:
        _registry.counter(name).add(amount)


def gauge_set(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge(name).set(value)


def histogram_observe(name: str, value: float) -> None:
    if _enabled:
        _registry.histogram(name).observe(value)


# -- export ---------------------------------------------------------------
def dump(
    path: Optional[str] = None, meta: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Build the aggregated report; write it as JSON when ``path`` is given."""
    report = build_report(_registry, _tracer, meta=meta)
    if path is not None:
        write_json(report, path)
    return report


def dump_jsonl(path: str) -> int:
    """Write the full-fidelity line-per-event export; returns lines written."""
    return write_jsonl(_registry, _tracer, path)
