"""Targeted Bit Trojan (TBT, Rakin et al.) baseline.

TBT limits modifications to the classifier weights that connect a few
*significant neurons* to the target class:

1. rank the penultimate-layer neurons by the magnitude of their weight into
   the target class and keep the top ``num_neurons``;
2. generate a trigger that maximizes those neurons' activations;
3. fine-tune only the (target class, selected neuron) weights on the
   clean/triggered mixture.

The flip count stays small (tens to hundreds), but every flip lands in the
last layer's single memory page, which is why TBT's online r_match collapses
(Table II, Fig. 13).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import AttackConfig, OfflineAttackResult
from repro.attacks.objective import attack_loss_and_grads
from repro.autodiff.tensor import Tensor
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern
from repro.errors import AttackError
from repro.quant.bits import hamming_distance
from repro.quant.qmodel import QuantizedModel
from repro.utils.rng import new_rng


class TBTAttack:
    """Targeted Bit Trojan with significant-neuron selection."""

    name = "TBT"

    def __init__(self, config: AttackConfig, num_neurons: int = 8, trigger_steps: int = 50) -> None:
        if num_neurons <= 0:
            raise AttackError(f"num_neurons must be positive, got {num_neurons}")
        self.config = config
        self.num_neurons = num_neurons
        self.trigger_steps = trigger_steps

    # ------------------------------------------------------------------
    def _significant_neurons(self, model) -> np.ndarray:
        """Top neurons by |weight| into the target class row."""
        row = np.abs(model.fc.weight.data[self.config.target_class])
        k = min(self.num_neurons, row.size)
        return np.argsort(row)[-k:]

    def _generate_trigger(
        self, model, attacker_data: ArrayDataset, neurons: np.ndarray, rng
    ) -> TriggerPattern:
        """Gradient-ascend the trigger to fire the selected neurons."""
        image_shape = attacker_data.images.shape[1:]
        trigger = TriggerPattern.square(image_shape, self.config.trigger_size)
        for _ in range(self.trigger_steps):
            batch_idx = rng.choice(
                len(attacker_data),
                size=min(32, len(attacker_data)),
                replace=False,
            )
            stamped = trigger.apply(attacker_data.images[batch_idx])
            x = Tensor(stamped, requires_grad=True)
            features = model.forward_penultimate(x)
            # Maximize the selected neurons' mean activation.
            objective = features[:, neurons].mean()
            objective.backward()
            # Ascent: epsilon-sign step inside the mask, like Eq. 4.
            trigger.fgsm_update(x.grad.sum(axis=0), self.config.epsilon * 10)
        return trigger

    # ------------------------------------------------------------------
    def run(self, qmodel: QuantizedModel, attacker_data: ArrayDataset) -> OfflineAttackResult:
        config = self.config
        rng = new_rng(config.seed)
        model = qmodel.module
        model.eval()
        if "fc.weight" not in qmodel.parameter_names or not hasattr(
            model, "forward_penultimate"
        ):
            raise AttackError(
                "TBT requires a model with a final linear layer named 'fc' and a "
                "forward_penultimate method"
            )

        original_q = qmodel.flat_int8()
        neurons = self._significant_neurons(model)
        trigger = self._generate_trigger(model, attacker_data, neurons, rng)

        # Only the (target row, selected neuron) weights may change.
        fc_weight = model.fc.weight
        frozen = fc_weight.data.copy()
        loss_history: List[float] = []
        for _ in range(config.iterations):
            batch_idx = rng.choice(
                len(attacker_data),
                size=min(config.batch_size, len(attacker_data)),
                replace=False,
            )
            grads = attack_loss_and_grads(
                model,
                attacker_data.images[batch_idx],
                attacker_data.labels[batch_idx],
                trigger,
                config.target_class,
                config.alpha,
                need_trigger_grad=False,
            )
            loss_history.append(grads.loss)
            update = np.zeros_like(fc_weight.data)
            update[config.target_class, neurons] = grads.param_grads["fc.weight"][
                config.target_class, neurons
            ]
            fc_weight.data = fc_weight.data - config.learning_rate * update

        # Everything except the selected entries stays bit-identical.
        mask = np.zeros_like(frozen, dtype=bool)
        mask[config.target_class, neurons] = True
        fc_weight.data = np.where(mask, fc_weight.data, frozen)

        qmodel.requantize_from_module(names=["fc.weight"])
        qmodel.sync_to_module()
        backdoored_q = qmodel.flat_int8()
        return OfflineAttackResult(
            original_weights=original_q,
            backdoored_weights=backdoored_q,
            trigger=trigger,
            n_flip=hamming_distance(original_q, backdoored_q),
            loss_history=loss_history,
            method=self.name,
            extra={"num_neurons": float(len(neurons))},
        )
