"""Last-layer fine-tuning (FT) baseline.

FT fine-tunes only the final classifier layer on the clean/triggered
mixture.  Fewer bits change than BadNet, but because the last layer of a
small ResNet occupies a single memory page, all required flips co-occur in
one page and the attack is unrealizable with Rowhammer (Table II).
"""

from __future__ import annotations


from repro.attacks.base import AttackConfig, OfflineAttackResult
from repro.attacks.objective import attack_loss_and_grads
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern
from repro.quant.bits import hamming_distance
from repro.quant.qmodel import QuantizedModel
from repro.utils.rng import new_rng


def last_layer_parameter_names(qmodel: QuantizedModel) -> list:
    """Names of the final linear layer's parameters (weight file tail)."""
    names = [n for n in qmodel.parameter_names if n.startswith("fc.")]
    if not names:
        # Fall back to whichever parameter sits last in the weight file.
        names = [qmodel.parameter_names[-1]]
    return names


class LastLayerFTAttack:
    """Fine-tune only the classifier head with a fixed trigger."""

    name = "FT"

    def __init__(self, config: AttackConfig) -> None:
        self.config = config

    def run(self, qmodel: QuantizedModel, attacker_data: ArrayDataset) -> OfflineAttackResult:
        config = self.config
        rng = new_rng(config.seed)
        model = qmodel.module
        model.eval()

        original_q = qmodel.flat_int8()
        image_shape = attacker_data.images.shape[1:]
        trigger = TriggerPattern.square(image_shape, config.trigger_size)

        tuned = set(last_layer_parameter_names(qmodel))
        named = dict(model.named_parameters())
        loss_history = []
        for _ in range(config.iterations):
            batch_idx = rng.choice(
                len(attacker_data),
                size=min(config.batch_size, len(attacker_data)),
                replace=False,
            )
            grads = attack_loss_and_grads(
                model,
                attacker_data.images[batch_idx],
                attacker_data.labels[batch_idx],
                trigger,
                config.target_class,
                config.alpha,
                need_trigger_grad=False,
            )
            loss_history.append(grads.loss)
            for name in tuned:
                named[name].data = named[name].data - config.learning_rate * grads.param_grads[name]

        qmodel.requantize_from_module(names=sorted(tuned))
        qmodel.sync_to_module()
        backdoored_q = qmodel.flat_int8()
        return OfflineAttackResult(
            original_weights=original_q,
            backdoored_weights=backdoored_q,
            trigger=trigger,
            n_flip=hamming_distance(original_q, backdoored_q),
            loss_history=loss_history,
            method=self.name,
        )
