"""BadNet baseline (Gu et al.): unconstrained backdoor fine-tuning.

BadNet fine-tunes *all* parameters on a mixture of clean and trigger-stamped
data with a fixed trigger patch, placing no constraint on which weights
change.  Offline it reaches near-perfect ASR, but the resulting bit flips
number in the hundreds of thousands and concentrate within pages, so almost
none are realizable with Rowhammer (r_match ~0.02 % in Table II).
"""

from __future__ import annotations


from repro.attacks.base import AttackConfig, OfflineAttackResult
from repro.attacks.objective import attack_loss_and_grads
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern
from repro.quant.bits import hamming_distance
from repro.quant.qmodel import QuantizedModel
from repro.utils.rng import new_rng


class BadNetAttack:
    """Unconstrained fine-tuning of every parameter with a fixed trigger."""

    name = "BadNet"

    def __init__(self, config: AttackConfig) -> None:
        self.config = config

    def run(self, qmodel: QuantizedModel, attacker_data: ArrayDataset) -> OfflineAttackResult:
        config = self.config
        rng = new_rng(config.seed)
        model = qmodel.module
        model.eval()

        original_q = qmodel.flat_int8()
        image_shape = attacker_data.images.shape[1:]
        # BadNet uses a fixed (non-optimized) patch; mid-gray maximizes
        # contrast against both dark and bright image regions.
        trigger = TriggerPattern.square(image_shape, config.trigger_size)

        loss_history = []
        for _ in range(config.iterations):
            batch_idx = rng.choice(
                len(attacker_data),
                size=min(config.batch_size, len(attacker_data)),
                replace=False,
            )
            grads = attack_loss_and_grads(
                model,
                attacker_data.images[batch_idx],
                attacker_data.labels[batch_idx],
                trigger,
                config.target_class,
                config.alpha,
                need_trigger_grad=False,
            )
            loss_history.append(grads.loss)
            named = dict(model.named_parameters())
            for name, grad in grads.param_grads.items():
                named[name].data = named[name].data - config.learning_rate * grad

        qmodel.requantize_from_module()
        qmodel.sync_to_module()
        backdoored_q = qmodel.flat_int8()
        return OfflineAttackResult(
            original_weights=original_q,
            backdoored_weights=backdoored_q,
            trigger=trigger,
            n_flip=hamming_distance(original_q, backdoored_q),
            loss_history=loss_history,
            method=self.name,
        )
