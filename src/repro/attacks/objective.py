"""The joint attack objective (Equation 3) and its gradients.

``F(dtheta, dx) = (1 - alpha) * CE(f(x), y)  +  alpha * CE(f(x + dx), y~)``

balances clean-data fidelity against trigger effectiveness.  One evaluation
returns the loss, per-parameter gradients (for weight selection and the
masked fine-tuning step) and the input gradient on the trigger region (for
the FGSM trigger step, Eq. 4).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff import cross_entropy
from repro.autodiff.tensor import Tensor
from repro.data.trigger import TriggerPattern
from repro.nn.module import Module


@dataclasses.dataclass
class ObjectiveGrads:
    """One evaluation of Eq. 3."""

    loss: float
    clean_loss: float
    trigger_loss: float
    param_grads: Dict[str, np.ndarray]
    trigger_grad: Optional[np.ndarray]  # dF/d(input) summed over the batch


def attack_loss_and_grads(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    trigger: TriggerPattern,
    target_class: int,
    alpha: float,
    need_trigger_grad: bool = True,
) -> ObjectiveGrads:
    """Evaluate Eq. 3 on one batch and backpropagate both terms.

    The model must be in the mode the caller wants (attacks run it in eval
    mode so batch-norm uses deployed running statistics -- the attacker
    cannot retrain normalization on the victim's data).
    """
    model.zero_grad()
    target_labels = np.full(len(images), target_class, dtype=np.int64)

    # Clean term: keep behaving correctly on unmodified inputs.
    clean_loss_t = cross_entropy(model(Tensor(images)), labels)

    # Trigger term: stamped inputs must map to the target class.  The input
    # is a differentiable leaf so dF/d(input) yields the FGSM direction.
    stamped = trigger.apply(images)
    stamped_t = Tensor(stamped, requires_grad=need_trigger_grad)
    trigger_loss_t = cross_entropy(model(stamped_t), target_labels)

    total = clean_loss_t * (1.0 - alpha) + trigger_loss_t * alpha
    total.backward()

    param_grads = {
        name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
        for name, param in model.named_parameters()
    }
    trigger_grad = None
    if need_trigger_grad and stamped_t.grad is not None:
        # Sum over the batch: the FGSM step only uses the gradient's sign.
        trigger_grad = stamped_t.grad.sum(axis=0)
    return ObjectiveGrads(
        loss=float(total.item()),
        clean_loss=float(clean_loss_t.item()),
        trigger_loss=float(trigger_loss_t.item()),
        param_grads=param_grads,
        trigger_grad=trigger_grad,
    )


def flatten_grads(param_grads: Dict[str, np.ndarray], names: List[str]) -> np.ndarray:
    """Concatenate per-parameter gradients in weight-file order."""
    return np.concatenate([param_grads[name].reshape(-1) for name in names])
