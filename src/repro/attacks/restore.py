"""Parameter-restoration experiment (Appendix D, Table IV).

After an unconstrained BadNet fine-tune, progressively restore the weights
with the smallest modifications back to their original values and measure
how the attack decays.  The paper's point: unconstrained fine-tuning spreads
the backdoor over *all* parameters, so post-hoc sparsification cannot
recover a realizable attack -- constraints must be in the training loop.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.analysis.metrics import attack_success_rate, test_accuracy
from repro.attacks.base import OfflineAttackResult
from repro.data.dataset import ArrayDataset
from repro.quant.qmodel import QuantizedModel


@dataclasses.dataclass
class RestorationPoint:
    """One row of Table IV."""

    modification_percent: float
    test_accuracy: float
    attack_success_rate: float


def restore_parameters_experiment(
    qmodel: QuantizedModel,
    offline: OfflineAttackResult,
    test_data: ArrayDataset,
    target_class: int,
    keep_fractions: Sequence[float] = (1.0, 0.99, 0.9, 0.8, 0.7, 0.5),
) -> List[RestorationPoint]:
    """Evaluate TA/ASR while keeping only the top fraction of modifications.

    ``keep_fractions`` are the Table IV "Modification %" rows.  Restoration
    order is ascending modification magnitude (the paper restores from the
    lowest-gradient parameters up; at convergence the surviving weight change
    is the accumulated gradient signal, so |delta| is the matching ranking).
    """
    original = offline.original_weights.astype(np.int16)
    modified = offline.backdoored_weights.astype(np.int16)
    delta = modified - original
    changed = np.nonzero(delta)[0]
    magnitude_order = changed[np.argsort(np.abs(delta[changed]))]  # ascending

    points: List[RestorationPoint] = []
    for keep in keep_fractions:
        if not 0.0 <= keep <= 1.0:
            raise ValueError(f"keep fraction must be in [0, 1], got {keep}")
        num_restore = int(round((1.0 - keep) * changed.size))
        weights = modified.copy()
        restore_idx = magnitude_order[:num_restore]
        weights[restore_idx] = original[restore_idx]
        qmodel.load_flat_int8(weights.astype(np.int8))
        points.append(
            RestorationPoint(
                modification_percent=100.0 * keep,
                test_accuracy=test_accuracy(qmodel.module, test_data),
                attack_success_rate=attack_success_rate(
                    qmodel.module, test_data, offline.trigger, target_class
                ),
            )
        )
    # Leave the model in the fully modified state.
    qmodel.load_flat_int8(offline.backdoored_weights)
    return points
