"""Constrained Fine-Tuning with Bit Reduction (Algorithm 1) -- the paper's
primary contribution, plus its CFT ablation (no bit reduction).

Each iteration:

1. *Trigger step* (Eq. 4): an FGSM update of the trigger pattern toward the
   target class (only pixels inside the trigger mask move).
2. *Weight selection* (Eq. 5): ``group_sort_select`` divides the flat weight
   file into ``N_flip`` page-aligned groups and picks the top-|gradient|
   weight per group -- constraint C1 (one weight per flip) and C2 (no two
   flips in one memory page).
3. *Masked fine-tuning* (Eq. 6): a gradient step on the selected weights
   only.
4. *Bit reduction* (every ``bit_reduction_interval`` iterations): project the
   quantized weights so each differs from the original in at most one bit,
   ``theta* = BitReduce(theta, theta + dtheta)``, and at most one weight per
   page changes.  The projection causes the loss spikes of Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.attacks.base import AttackConfig, OfflineAttackResult
from repro.attacks.objective import attack_loss_and_grads, flatten_grads
from repro.data.dataset import ArrayDataset
from repro.data.trigger import TriggerPattern
from repro.errors import AttackError
from repro.quant.bits import bit_reduce
from repro.quant.qmodel import QuantizedModel
from repro.quant.weightfile import PAGE_SIZE_BYTES
from repro.utils.rng import new_rng

# With 8-bit weights, one 4 KB page holds exactly 4096 weights.
WEIGHTS_PER_PAGE = PAGE_SIZE_BYTES


def _flip_event_data(qmodel: QuantizedModel, index: int, old: int, new: int) -> Dict[str, object]:
    """Flight-recorder payload describing one committed byte change.

    ``bit``/``direction`` describe the most significant changed bit using the
    same encoding as :class:`~repro.quant.weightfile.BitLocation` (+1 for a
    0->1 flip), so ``repro report`` can join offline commits with online
    verification outcomes.
    """
    old_raw = int(old) & 0xFF
    new_raw = int(new) & 0xFF
    diff = old_raw ^ new_raw
    bit = diff.bit_length() - 1 if diff else -1
    layer, _ = qmodel.locate(int(index))
    return {
        "index": int(index),
        "layer": layer,
        "page": int(index) // WEIGHTS_PER_PAGE,
        "byte_offset": int(index) % WEIGHTS_PER_PAGE,
        "old": old_raw,
        "new": new_raw,
        "bit": bit,
        "direction": (1 if (new_raw >> bit) & 1 else -1) if diff else 0,
        "bits_changed": bin(diff).count("1"),
    }


def group_sort_select(
    grad_magnitudes: np.ndarray, n_flip: int, weights_per_page: int = WEIGHTS_PER_PAGE
) -> np.ndarray:
    """``Group_Sort_Select`` (Eq. 5): top-1 weight per page-aligned group.

    The flat weight vector is divided into ``n_flip`` groups of
    ``N_group = N_w div (page * n_flip)`` pages each (trailing weights fold
    into the last group), and the index with the largest gradient magnitude
    is selected from each group.
    """
    n_w = int(grad_magnitudes.size)
    max_flips = max(1, (n_w + weights_per_page - 1) // weights_per_page)
    if n_flip > max_flips:
        raise AttackError(
            f"n_flip={n_flip} exceeds the {max_flips} pages the model occupies "
            "(constraint C2 requires at least one full page per group)"
        )
    pages_per_group = max(1, n_w // (weights_per_page * n_flip))
    group_span = weights_per_page * pages_per_group
    group_ids = np.minimum(np.arange(n_w) // group_span, n_flip - 1)
    selected: List[int] = []
    for group in range(n_flip):
        members = np.nonzero(group_ids == group)[0]
        if members.size == 0:
            continue
        selected.append(int(members[np.argmax(grad_magnitudes[members])]))
    return np.asarray(selected, dtype=np.int64)


class CFTAttack:
    """CFT (+BR) offline attack on a quantized model.

    Parameters
    ----------
    config:
        Shared attack hyperparameters.
    bit_reduction:
        True for the full CFT+BR method; False for the CFT ablation that
        skips Step 4 (and therefore leaves multi-bit weight changes).
    strategy:
        ``"progressive"`` (default) commits one exact single-bit flip per
        round, chosen by evaluating the true objective for the top gradient
        candidates in each unfilled page group, with trigger PGD between
        rounds.  This is a search-accelerated solver for the same
        constrained problem (Eq. 3 + C1/C2 + one bit per weight) -- on a
        CPU/NumPy substrate the paper's plain SGD loop (``"sgd"``) needs
        thousands of iterations to converge, which is impractical here.
    """

    def __init__(
        self, config: AttackConfig, bit_reduction: bool = True, strategy: str = "progressive"
    ) -> None:
        if strategy not in ("progressive", "sgd"):
            raise AttackError(f"strategy must be 'progressive' or 'sgd', got {strategy!r}")
        self.config = config
        self.bit_reduction = bit_reduction
        self.strategy = strategy

    @property
    def name(self) -> str:
        return "CFT+BR" if self.bit_reduction else "CFT"

    # ------------------------------------------------------------------
    def run(self, qmodel: QuantizedModel, attacker_data: ArrayDataset) -> OfflineAttackResult:
        """Run the offline phase; the module inside ``qmodel`` is mutated."""
        if self.strategy == "progressive":
            return self._run_progressive(qmodel, attacker_data)
        return self._run_sgd(qmodel, attacker_data)

    def _run_sgd(self, qmodel: QuantizedModel, attacker_data: ArrayDataset) -> OfflineAttackResult:
        """The paper's Algorithm 1 as written: SGD with periodic projection."""
        config = self.config
        rng = new_rng(config.seed)
        model = qmodel.module
        model.eval()  # deployed batch-norm statistics stay frozen

        original_q = qmodel.flat_int8()
        names = qmodel.parameter_names
        image_shape = attacker_data.images.shape[1:]
        trigger = TriggerPattern.square(image_shape, config.trigger_size)

        loss_history: List[float] = []
        params = dict(model.named_parameters())
        for step in range(config.iterations):
            batch_idx = rng.choice(
                len(attacker_data),
                size=min(config.batch_size, len(attacker_data)),
                replace=False,
            )
            images = attacker_data.images[batch_idx]
            labels = attacker_data.labels[batch_idx]

            grads = attack_loss_and_grads(
                model,
                images,
                labels,
                trigger,
                config.target_class,
                config.alpha,
                need_trigger_grad=config.trigger_update,
            )
            loss_history.append(grads.loss)

            # Step 1 (Eq. 4): move the trigger down the target-class loss.
            if config.trigger_update and grads.trigger_grad is not None:
                trigger.fgsm_update(-grads.trigger_grad, config.epsilon)

            # Step 2 (Eq. 5): locate this iteration's vulnerable weights.
            flat_grad = flatten_grads(grads.param_grads, names)
            selected = group_sort_select(np.abs(flat_grad), config.n_flip_budget)
            if telemetry.enabled():
                telemetry.counter_add("cft.iterations")
                telemetry.gauge_set("cft.loss", grads.loss)
                telemetry.histogram_observe("cft.selected_weights", selected.size)
            if telemetry.events_enabled():
                telemetry.event(
                    "cft.select",
                    step=step,
                    loss=float(grads.loss),
                    selected=[int(i) for i in selected],
                    pages=[int(i) // WEIGHTS_PER_PAGE for i in selected],
                )

            # Step 3 (Eq. 6): masked update on the selected weights only.
            masked = np.zeros_like(flat_grad)
            masked[selected] = flat_grad[selected]
            self._apply_update(qmodel, params, names, masked)

            # Step 4: periodic bit-reduction projection.
            if self.bit_reduction and (step + 1) % config.bit_reduction_interval == 0:
                self._project(qmodel, original_q)

        if self.bit_reduction:
            self._project(qmodel, original_q)
        else:
            qmodel.requantize_from_module()
            qmodel.sync_to_module()

        backdoored_q = qmodel.flat_int8()
        from repro.quant.bits import hamming_distance

        n_flip = hamming_distance(original_q, backdoored_q)
        telemetry.counter_add("cft.bits_flipped", n_flip)
        if telemetry.events_enabled():
            # The SGD loop commits implicitly through projection; log the
            # surviving byte changes so the flip table has provenance rows.
            for index in np.nonzero(backdoored_q != original_q)[0]:
                telemetry.event(
                    "cft.flip_committed",
                    **_flip_event_data(
                        qmodel, int(index), int(original_q[index]), int(backdoored_q[index])
                    ),
                )
        return OfflineAttackResult(
            original_weights=original_q,
            backdoored_weights=backdoored_q,
            trigger=trigger,
            n_flip=n_flip,
            loss_history=loss_history,
            method=self.name,
        )

    # ------------------------------------------------------------------
    # Progressive solver
    # ------------------------------------------------------------------
    def _run_progressive(
        self, qmodel: QuantizedModel, attacker_data: ArrayDataset
    ) -> OfflineAttackResult:
        """Greedy exact search under the same constraints as Algorithm 1.

        Rounds alternate trigger PGD (Eq. 4) with committing the single-bit
        weight flip -- at most one per page group (C1/C2), at most one bit
        per weight (bit reduction) -- that minimizes the measured objective
        (Eq. 3) over the top gradient candidates of every unfilled group.
        """
        config = self.config
        rng = new_rng(config.seed)
        model = qmodel.module
        model.eval()

        original_q = qmodel.flat_int8()
        names = qmodel.parameter_names
        image_shape = attacker_data.images.shape[1:]
        trigger = TriggerPattern.square(image_shape, config.trigger_size)
        loss_history: List[float] = []

        n_w = original_q.size
        max_flips = max(1, (n_w + WEIGHTS_PER_PAGE - 1) // WEIGHTS_PER_PAGE)
        if config.n_flip_budget > max_flips:
            raise AttackError(
                f"n_flip={config.n_flip_budget} exceeds the {max_flips} pages the "
                "model occupies (constraint C2 requires one page per group)"
            )
        pages_per_group = max(1, n_w // (WEIGHTS_PER_PAGE * config.n_flip_budget))
        group_span = WEIGHTS_PER_PAGE * pages_per_group
        group_of = np.minimum(np.arange(n_w) // group_span, config.n_flip_budget - 1)

        # Per-round budget: split the iteration budget between trigger PGD
        # steps and flip-candidate evaluations.
        trigger_steps = max(5, config.iterations // (config.n_flip_budget + 1) // 2)
        candidates_per_group = 3

        def batch() -> tuple:
            idx = rng.choice(
                len(attacker_data),
                size=min(config.batch_size, len(attacker_data)),
                replace=False,
            )
            return attacker_data.images[idx], attacker_data.labels[idx]

        def refine_trigger(steps: int) -> None:
            nonlocal stamped_eval
            for _ in range(steps):
                images, labels = batch()
                grads = attack_loss_and_grads(
                    model, images, labels, trigger, config.target_class, config.alpha
                )
                loss_history.append(grads.loss)
                if config.trigger_update and grads.trigger_grad is not None:
                    trigger.fgsm_update(-grads.trigger_grad, config.epsilon)
                    stamped_eval = None  # the hoisted stamped subset is stale
            if telemetry.events_enabled() and steps > 0:
                telemetry.event(
                    "cft.trigger_round", steps=steps, loss=float(loss_history[-1])
                )

        # Candidate flips are scored on a fixed subset (cheap, consistent);
        # the attacker's full set is used for the final pruning decisions.
        eval_count = min(64, len(attacker_data))
        eval_images = attacker_data.images[:eval_count]
        eval_labels = attacker_data.labels[:eval_count]
        eval_targets = np.full(eval_count, config.target_class, dtype=np.int64)

        # The candidate loop below re-evaluates the objective after every
        # single-byte flip; the engine reuses every layer prefix the flip
        # left untouched, and (when batching is on) scores each round's
        # proposals with one batched suffix forward per touched layer.
        # Results are byte-identical with the engine or batching off.
        from repro.engine import EvalEngine, batch_enabled, engine_enabled

        engine = EvalEngine(model) if engine_enabled() else None

        def _eval_logits(images: np.ndarray) -> np.ndarray:
            from repro.autodiff import no_grad
            from repro.autodiff.tensor import Tensor

            if engine is not None:
                return engine.forward(images)
            with no_grad():
                return model(Tensor(images)).data

        # The trigger only moves between rounds (refine_trigger), while the
        # candidate loop evaluates the objective dozens of times per round:
        # stamp the evaluation subset once per trigger state so repeated
        # objective() calls hand the engine the same batch object.
        stamped_eval: Optional[np.ndarray] = None

        def stamped_eval_images() -> np.ndarray:
            nonlocal stamped_eval
            if stamped_eval is None:
                stamped_eval = trigger.apply(eval_images)
            return stamped_eval

        def eval_asr() -> float:
            """ASR on the fixed evaluation subset (telemetry only)."""
            predictions = _eval_logits(stamped_eval_images()).argmax(axis=1)
            return float((predictions == config.target_class).mean())

        def objective_from_logits(clean_logits: np.ndarray, trig_logits: np.ndarray) -> tuple:
            """(total, clean_loss, clean_accuracy): Eq. 3 on precomputed logits.

            Shared by the sequential and the batched candidate paths, so
            identical logits bytes imply bit-identical objective floats --
            and therefore an identical selected flip sequence.
            """
            from repro.autodiff import cross_entropy, no_grad
            from repro.autodiff.tensor import Tensor

            with no_grad():
                clean = cross_entropy(Tensor(clean_logits), eval_labels).item()
                trig_loss = cross_entropy(Tensor(trig_logits), eval_targets).item()
            clean_acc = float((clean_logits.argmax(axis=1) == eval_labels).mean())
            total = (1.0 - config.alpha) * clean + config.alpha * trig_loss
            return total, clean, clean_acc

        def objective() -> tuple:
            """(total, clean_loss, clean_accuracy) over the evaluation subset."""
            return objective_from_logits(
                _eval_logits(eval_images), _eval_logits(stamped_eval_images())
            )

        def apply_value(index: int, new_value: np.int8) -> np.int8:
            """Set one flat weight; returns the previous value."""
            name, local = qmodel.locate(int(index))
            tensor = qmodel.quantized(name)
            flat = tensor.reshape(-1)
            previous = flat[local]
            flat[local] = new_value
            qmodel.set_quantized(name, flat.reshape(tensor.shape))
            return previous

        refine_trigger(trigger_steps * 2)

        # Clean accuracy (on the attacker's set) may degrade at most this
        # much in total: the guard that keeps offline TA near the base
        # accuracy (the alpha trade-off serves this role in the SGD variant).
        # The bound scales with (1 - alpha): aggressive attackers accept
        # more degradation, mirroring the paper's alpha discussion.
        _, _, base_clean_acc = objective()
        min_clean_acc = base_clean_acc - 0.12 * config.alpha

        filled_groups: set = set()
        committed_flips: List[tuple] = []  # (index, old_value, new_value)
        current_q = original_q.copy()
        for round_index in range(config.n_flip_budget):
            images, labels = batch()
            grads = attack_loss_and_grads(
                model, images, labels, trigger, config.target_class, config.alpha,
                need_trigger_grad=False,
            )
            flat_grad = flatten_grads(grads.param_grads, names)
            baseline, _, _ = objective()
            loss_history.append(baseline)
            if telemetry.enabled():
                telemetry.counter_add("cft.rounds")
                telemetry.gauge_set("cft.loss", baseline)
                telemetry.histogram_observe("cft.round_asr", eval_asr())

            proposals = self._propose_flips(
                qmodel, current_q, flat_grad, group_of, filled_groups, candidates_per_group
            )
            # Cap the per-round evaluation budget: keep the proposals whose
            # weights carry the largest gradient magnitude.
            if len(proposals) > 16:
                proposals.sort(key=lambda p: -abs(float(flat_grad[p[0]])))
                proposals = proposals[:16]
            if telemetry.enabled():
                telemetry.counter_add("cft.candidates_evaluated", len(proposals))
            if telemetry.events_enabled():
                telemetry.event(
                    "cft.round",
                    round=round_index,
                    loss=float(baseline),
                    asr=eval_asr(),
                    candidates=len(proposals),
                )
            best: Optional[tuple] = None
            if engine is not None and batch_enabled() and proposals:
                # Round-level batched scoring: C1/C2 + bit reduction confine
                # every proposal to one byte in one layer, so the engine
                # restores each touched layer's shared prefix once and runs
                # one stacked suffix forward per layer group.  The logits --
                # and therefore the flip this round commits -- are
                # byte-identical to the sequential path in the else branch.
                clean_stack, trig_stack = engine.score_candidates(
                    qmodel, proposals, (eval_images, stamped_eval_images())
                )
                for k, (index, new_value) in enumerate(proposals):
                    score, _, clean_acc = objective_from_logits(
                        clean_stack[k], trig_stack[k]
                    )
                    if clean_acc < min_clean_acc:
                        continue
                    if best is None or score < best[0]:
                        best = (score, index, new_value)
            else:
                for index, new_value in proposals:
                    previous = apply_value(index, new_value)
                    score, _, clean_acc = objective()
                    apply_value(index, previous)
                    if clean_acc < min_clean_acc:
                        continue
                    if best is None or score < best[0]:
                        best = (score, index, new_value)
            if best is None or best[0] >= baseline:
                # No admissible flip improves the objective this round.
                refine_trigger(trigger_steps)
                continue
            _, index, new_value = best
            old_value = apply_value(index, np.int8(new_value))
            if engine is not None and batch_enabled():
                # The scoring round buffered each candidate's perturbed-layer
                # output; promote the winner's into the activation cache so
                # the next round's prefix restore starts past this layer.
                engine.promote_speculation((index, new_value))
            committed_flips.append((index, old_value, np.int8(new_value)))
            current_q[index] = new_value
            filled_groups.add(int(group_of[index]))
            telemetry.counter_add("cft.flips_committed")
            if telemetry.events_enabled():
                telemetry.event(
                    "cft.flip_committed",
                    round=round_index,
                    group=int(group_of[index]),
                    score=float(best[0]),
                    **_flip_event_data(qmodel, index, int(old_value), int(new_value)),
                )
            refine_trigger(trigger_steps)

        refine_trigger(trigger_steps)

        # Pruning pass: drop any committed flip that no longer helps the
        # final objective (keeps N_flip minimal, mirroring the paper's goal).
        for index, old_value, new_value in list(committed_flips):
            with_flip, _, _ = objective()
            apply_value(index, old_value)
            without_flip, _, _ = objective()
            if without_flip <= with_flip:
                committed_flips.remove((index, old_value, new_value))
                current_q[index] = old_value
                if telemetry.events_enabled():
                    telemetry.event(
                        "cft.flip_pruned",
                        **_flip_event_data(qmodel, index, int(old_value), int(new_value)),
                    )
            else:
                apply_value(index, new_value)

        backdoored_q = qmodel.flat_int8()
        from repro.quant.bits import hamming_distance

        n_flip = hamming_distance(original_q, backdoored_q)
        if telemetry.enabled():
            telemetry.counter_add("cft.bits_flipped", n_flip)
            telemetry.gauge_set("cft.final_asr", eval_asr())
        return OfflineAttackResult(
            original_weights=original_q,
            backdoored_weights=backdoored_q,
            trigger=trigger,
            n_flip=n_flip,
            loss_history=loss_history,
            method=self.name,
        )

    def _propose_flips(
        self,
        qmodel: QuantizedModel,
        current_q: np.ndarray,
        flat_grad: np.ndarray,
        group_of: np.ndarray,
        filled_groups: set,
        per_group: int,
    ) -> List[tuple]:
        """Candidate (index, new_int8_value) single-bit flips.

        For each unfilled group, take the top-|gradient| weights and flip
        the most significant allowed bit that moves the weight against its
        gradient (the step Eq. 6 + bit reduction would take at convergence).
        """
        from repro.quant.bits import int8_to_uint8

        proposals: List[tuple] = []
        magnitudes = np.abs(flat_grad)
        forbidden = set(self.config.forbidden_bits)
        num_groups = int(group_of[-1]) + 1 if group_of.size else 0
        for group in range(num_groups):
            if group in filled_groups:
                continue
            members = np.nonzero(group_of == group)[0]
            if members.size == 0:
                continue
            order = members[np.argsort(magnitudes[members])[::-1][:per_group]]
            for index in order:
                grad = flat_grad[index]
                if grad == 0.0:
                    continue
                value = int(current_q[index])
                want_increase = grad < 0  # descend the objective
                if not self.bit_reduction:
                    # CFT ablation: move by a full step (typically flipping
                    # several bits of the byte -- its online downfall).
                    step = int(self.config.step_quanta) * (1 if want_increase else -1)
                    candidate = int(np.clip(value + step, -127, 127))
                    if candidate != value:
                        proposals.append((int(index), np.int8(candidate)))
                    continue
                raw = int(int8_to_uint8(np.array([value], dtype=np.int8))[0])
                # Propose every admissible single-bit flip in the wanted
                # direction (largest first); the caller evaluates each.
                for bit in range(7, 2, -1):
                    if bit in forbidden:
                        continue
                    candidate_raw = raw ^ (1 << bit)
                    candidate = int(np.uint8(candidate_raw).view(np.int8))
                    if (candidate > value) == want_increase and candidate != value:
                        proposals.append((int(index), np.int8(candidate)))
        return proposals

    # ------------------------------------------------------------------
    def _apply_update(
        self,
        qmodel: QuantizedModel,
        params: Dict[str, "object"],
        names: List[str],
        flat_grad_masked: np.ndarray,
    ) -> None:
        """Step the selected float weights against their gradient (Eq. 6)."""
        config = self.config
        for name in names:
            param = params[name]
            start = qmodel.offset_of(name)
            chunk = flat_grad_masked[start : start + param.size]
            if not np.any(chunk):
                continue
            if config.update_rule == "sign":
                # Move by a fixed number of quantization steps: the weight
                # crosses bit boundaries quickly and bit reduction projects
                # the result back to a single-bit change.
                step = config.step_quanta * qmodel.scale_of(name) * np.sign(chunk)
            else:
                step = config.learning_rate * chunk
            param.data = param.data - step.reshape(param.data.shape).astype(np.float32)

    def _project(self, qmodel: QuantizedModel, original_q: np.ndarray) -> None:
        """Bit reduction + one-change-per-page projection (constraints C2/C3).

        Quantizes the current float weights with the deployed scales, keeps
        only the most significant changed bit per weight, and if drift across
        iterations left several changed weights in one page, keeps the change
        with the largest integer magnitude and restores the rest.
        """
        qmodel.requantize_from_module()
        if self.config.forbidden_bits:
            from repro.quant.bits import bit_reduce_avoiding

            q = bit_reduce_avoiding(
                original_q, qmodel.flat_int8(), self.config.forbidden_bits
            )
        else:
            q = bit_reduce(original_q, qmodel.flat_int8())

        changed = np.nonzero(q != original_q)[0]
        reverted = 0
        if changed.size:
            pages = changed // WEIGHTS_PER_PAGE
            for page in np.unique(pages):
                members = changed[pages == page]
                if members.size <= 1:
                    continue
                magnitudes = np.abs(
                    q[members].astype(np.int16) - original_q[members].astype(np.int16)
                )
                keep = members[int(np.argmax(magnitudes))]
                for member in members:
                    if member != keep:
                        q[member] = original_q[member]
                        reverted += 1
        if telemetry.events_enabled():
            kept = np.nonzero(q != original_q)[0]
            telemetry.event(
                "cft.bit_reduction",
                changed=int(changed.size),
                reverted=reverted,
                kept=[_flip_event_data(qmodel, int(i), int(original_q[i]), int(q[i]))
                      for i in kept],
            )
        qmodel.load_flat_int8(q)
