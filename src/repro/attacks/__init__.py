"""Backdoor injection attacks: CFT/CFT+BR (ours) and the baselines."""

from repro.attacks.base import AttackConfig, OfflineAttackResult
from repro.attacks.objective import attack_loss_and_grads
from repro.attacks.cft import CFTAttack, group_sort_select
from repro.attacks.badnet import BadNetAttack
from repro.attacks.ft import LastLayerFTAttack
from repro.attacks.tbt import TBTAttack
from repro.attacks.online import OnlineInjectionResult, OnlineInjector
from repro.attacks.restore import restore_parameters_experiment

__all__ = [
    "AttackConfig",
    "OfflineAttackResult",
    "attack_loss_and_grads",
    "CFTAttack",
    "group_sort_select",
    "BadNetAttack",
    "LastLayerFTAttack",
    "TBTAttack",
    "OnlineInjector",
    "OnlineInjectionResult",
    "restore_parameters_experiment",
]
