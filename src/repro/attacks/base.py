"""Shared attack configuration and result types."""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.data.trigger import TriggerPattern
from repro.errors import AttackError


@dataclasses.dataclass
class AttackConfig:
    """Hyperparameters shared by the offline attacks.

    Defaults follow Section V-A: alpha = 0.5, epsilon = 0.001, trigger
    initialized as a black square in the bottom-right corner.

    ``update_rule`` controls the masked fine-tuning step (Eq. 6):
    ``"gradient"`` is the paper's plain gradient descent; ``"sign"``
    (default) steps each selected weight by ``step_quanta`` quantization
    steps against its gradient sign -- an equivalent-direction update that
    converges in far fewer iterations, which matters because our NumPy
    substrate is orders of magnitude slower per iteration than the paper's
    GPU setup.  Bit reduction projects both variants identically.
    """

    target_class: int = 0
    alpha: float = 0.5
    epsilon: float = 0.001
    learning_rate: float = 0.01
    iterations: int = 200
    batch_size: int = 128
    trigger_size: int = 10
    n_flip_budget: int = 10
    bit_reduction_interval: int = 100
    trigger_update: bool = True
    update_rule: str = "sign"
    step_quanta: float = 8.0
    forbidden_bits: tuple = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise AttackError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.epsilon < 0:
            raise AttackError(f"epsilon must be non-negative, got {self.epsilon}")
        if self.iterations <= 0:
            raise AttackError(f"iterations must be positive, got {self.iterations}")
        if self.n_flip_budget <= 0:
            raise AttackError(f"n_flip_budget must be positive, got {self.n_flip_budget}")
        if self.update_rule not in ("sign", "gradient"):
            raise AttackError(
                f"update_rule must be 'sign' or 'gradient', got {self.update_rule!r}"
            )
        if self.step_quanta <= 0:
            raise AttackError(f"step_quanta must be positive, got {self.step_quanta}")


@dataclasses.dataclass
class OfflineAttackResult:
    """Output of an offline attack phase.

    Attributes
    ----------
    original_weights / backdoored_weights:
        Flat int8 weight-file contents before and after the attack.
    trigger:
        The (possibly optimized) trigger pattern.
    n_flip:
        Hamming distance in bits between the two weight files.
    loss_history:
        Per-iteration total objective values (Fig. 7).
    method:
        Attack name for reporting.
    """

    original_weights: np.ndarray
    backdoored_weights: np.ndarray
    trigger: TriggerPattern
    n_flip: int
    loss_history: List[float]
    method: str
    extra: Dict[str, float] = dataclasses.field(default_factory=dict)
