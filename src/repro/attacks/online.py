"""The online attack phase: placing pages and flipping bits with Rowhammer.

Implements Section IV-B end-to-end against the simulated OS/DRAM:

1. **Templating**: match every weight-file page that needs flips to a
   profiled flippy frame with compatible (offset, bit, direction) cells.
2. **Releasing the flippy rows** (Listing 1): unmap the attacker's frames in
   reverse file order so the per-CPU FILO frame cache hands the victim's
   file pages exactly the planned frames (Figure 4's reversed mapping).
3. **Mapping**: mmap the weight file; verify the placement.
4. **Hammering**: run the n-sided pattern on each target frame's row; read
   the corrupted file back through the page cache.

Baseline attacks whose pages need several flips get the paper's relaxation:
the single flip with the highest priority (largest weight change) in the
page is attempted alone, and the rest are abandoned -- this is how Table II's
online columns are produced for BadNet/FT/TBT/CFT.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro import telemetry
from repro.attacks.base import OfflineAttackResult
from repro.errors import AttackError
from repro.log import get_logger
from repro.memory.mmap import MappedFile, OSMemoryModel
from repro.quant.weightfile import PAGE_SIZE_BITS, BitLocation, WeightFile
from repro.rowhammer.hammer import HammerEngine
from repro.rowhammer.profiler import FlipProfile
from repro.rowhammer.templating import PageTemplater, group_targets_by_page

log = get_logger(__name__)


@dataclasses.dataclass
class OnlineInjectionResult:
    """Outcome of one end-to-end Rowhammer injection.

    Attributes
    ----------
    corrupted_weights:
        The weight file as the victim now reads it from the page cache.
    n_flip_required / n_flip_achieved:
        Planned vs actually realized target flips.
    accidental_flips_targeted / accidental_flips_elsewhere:
        Extra flips inside targeted pages (the r_match ``delta``) and in
        other weight-file pages.
    r_match:
        The paper's DRAM match-rate percentage.
    hammer_seconds:
        Simulated wall-clock spent hammering.
    """

    corrupted_weights: np.ndarray
    n_flip_required: int
    n_flip_achieved: int
    accidental_flips_targeted: int
    accidental_flips_elsewhere: int
    r_match: float
    matched_pages: List[int]
    unmatched_pages: List[int]
    hammer_seconds: float
    placement_verified: bool


class OnlineInjector:
    """Runs the online phase against a simulated OS + DRAM."""

    def __init__(
        self,
        os_model: OSMemoryModel,
        engine: HammerEngine,
        profile: FlipProfile,
        attacker_buffer: MappedFile,
        n_sides: int = 7,
    ) -> None:
        self.os = os_model
        self.engine = engine
        self.profile = profile
        self.attacker_buffer = attacker_buffer
        self.n_sides = n_sides

    # ------------------------------------------------------------------
    def inject(
        self,
        offline: OfflineAttackResult,
        file_id: str,
        fallback_single_bit: bool = True,
    ) -> OnlineInjectionResult:
        """Inject the offline phase's flips into the deployed weight file."""
        original = WeightFile(offline.original_weights)
        desired = WeightFile(offline.backdoored_weights)
        locations = original.bit_locations_against(desired)
        n_required = len(locations)
        targets = group_targets_by_page(locations)

        templater = PageTemplater(self.profile)
        match = templater.match(targets)
        if telemetry.events_enabled():
            telemetry.event(
                "online.plan",
                required=n_required,
                pages=len(targets),
                matched=len(match.matched_pages),
                unmatched=len(match.unmatched_pages),
            )

        # Paper relaxation for dense baselines: pages that cannot be fully
        # matched retry with only their highest-priority single flip.
        if fallback_single_bit and match.unmatched_pages:
            log.info(
                "%d page(s) have no fully-matching frame; retrying each with "
                "its single highest-priority flip",
                len(match.unmatched_pages),
            )
            extra_targets: Dict[int, List[BitLocation]] = {}
            for page in match.unmatched_pages:
                best = max(
                    targets[page],
                    key=lambda loc: self._flip_priority(original, desired, loc),
                )
                extra_targets[page] = [best]
            used = set(match.assignments.values())
            fallback_templater = _RestrictedTemplater(templater, used)
            fallback_match = fallback_templater.match(extra_targets)
            match.assignments.update(fallback_match.assignments)
            match.matched_pages = sorted(
                set(match.matched_pages) | set(fallback_match.matched_pages)
            )
            match.unmatched_pages = sorted(
                set(match.unmatched_pages) - set(fallback_match.matched_pages)
            )
            # Only the single chosen flip per fallback page is still planned.
            for page in fallback_match.matched_pages:
                targets[page] = extra_targets[page]
            if telemetry.events_enabled():
                for page, kept in sorted(extra_targets.items()):
                    telemetry.event(
                        "online.fallback",
                        page=int(page),
                        kept_bit=kept[0].bit_index,
                        kept_offset=kept[0].byte_offset,
                        rescued=page in fallback_match.matched_pages,
                    )

        with telemetry.span("online.massage", pages=original.num_pages):
            mapping = self._place_file(file_id, original, match.assignments)
        placement_hits = sum(
            1 for page, frame in match.assignments.items() if mapping.frame_of(page) == frame
        )
        placement_ok = placement_hits == len(match.assignments)
        if telemetry.events_enabled():
            for page in sorted(match.assignments):
                planned_frame = match.assignments[page]
                actual_frame = mapping.frame_of(page)
                telemetry.event(
                    "massage.place",
                    page=int(page),
                    planned_frame=int(planned_frame),
                    actual_frame=int(actual_frame),
                    hit=actual_frame == planned_frame,
                )
        if telemetry.enabled():
            telemetry.counter_add("massage.rounds")
            telemetry.gauge_set(
                "massage.placement_hit_rate",
                placement_hits / len(match.assignments) if match.assignments else 1.0,
            )

        with telemetry.span("online.hammer", targets=len(match.assignments)):
            hammer_seconds = self._hammer_targets(match.assignments)
        corrupted = np.frombuffer(
            self.os.read_mapping(mapping), dtype=np.int8
        )[: len(original)].copy()

        return self._score(
            original, desired, corrupted, targets, match, n_required, hammer_seconds, placement_ok
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _flip_priority(original: WeightFile, desired: WeightFile, loc: BitLocation) -> float:
        """Priority of one flip: magnitude of its byte's integer change."""
        index = loc.flat_byte_index
        return abs(int(desired.read(index)) - int(original.read(index)))

    def _place_file(
        self, file_id: str, original: WeightFile, assignments: Dict[int, int]
    ) -> MappedFile:
        """Listing 1: release attacker frames so the file lands as planned."""
        num_pages = original.num_pages
        owned = dict(self.attacker_buffer.frames)  # virtual page -> frame
        frame_to_virtual = {frame: page for page, frame in owned.items()}

        target_frames = set(assignments.values())
        missing = [f for f in target_frames if f not in frame_to_virtual]
        if missing:
            raise AttackError(
                f"attacker does not own matched flippy frames {missing[:5]}"
            )
        bait_frames = [
            frame for frame in owned.values() if frame not in target_frames
        ]
        if len(bait_frames) < num_pages - len(assignments):
            raise AttackError(
                "attacker buffer too small: "
                f"{len(bait_frames)} bait frames for {num_pages - len(assignments)} pages"
            )

        # Decide which physical frame each file page should receive.
        plan: Dict[int, int] = dict(assignments)
        bait_iter = iter(bait_frames)
        for page in range(num_pages):
            if page not in plan:
                plan[page] = next(bait_iter)

        # Release in reverse file order: the FILO frame cache then hands
        # file page 0 the last-released frame, page 1 the one before, ...
        if telemetry.events_enabled():
            telemetry.event(
                "massage.release",
                pages=num_pages,
                target_frames=sorted(int(f) for f in target_frames),
            )
        for page in sorted(plan, reverse=True):
            frame = plan[page]
            self.os.munmap_page(self.attacker_buffer, frame_to_virtual[frame])
        telemetry.counter_add("massage.released_frames", len(plan))

        self.os.register_file(file_id, original.to_bytes())
        return self.os.mmap_file(file_id)

    def _hammer_targets(self, assignments: Dict[int, int]) -> float:
        """Hammer the row of every target frame with the online pattern."""
        start = self.engine.total_seconds
        geometry = self.os.dram.geometry
        hammered: set = set()
        for frame in assignments.values():
            address = geometry.frame_address(frame)
            key = (address.bank, address.row)
            if key in hammered:
                continue
            hammered.add(key)
            self.engine.hammer_victim(address.bank, address.row, self.n_sides)
        return self.engine.total_seconds - start

    def _score(
        self,
        original: WeightFile,
        desired: WeightFile,
        corrupted: np.ndarray,
        targets: Dict[int, List[BitLocation]],
        match,
        n_required: int,
        hammer_seconds: float,
        placement_ok: bool,
    ) -> OnlineInjectionResult:
        corrupted_file = WeightFile(corrupted)
        achieved_locations = original.bit_locations_against(corrupted_file)
        achieved_keys = {
            (loc.page, loc.byte_offset, loc.bit_index, loc.direction)
            for loc in achieved_locations
        }

        planned_keys = set()
        for page, locations in targets.items():
            for loc in locations:
                planned_keys.add((loc.page, loc.byte_offset, loc.bit_index, loc.direction))
        n_achieved = len(planned_keys & achieved_keys)

        if telemetry.events_enabled():
            unmatched = set(match.unmatched_pages)
            assigned = dict(match.assignments)
            for key in sorted(planned_keys):
                achieved = key in achieved_keys
                if achieved:
                    cause = ""
                elif key[0] in unmatched:
                    cause = "unmatched_page"
                elif key[0] in assigned:
                    cause = "cell_not_flipped" if placement_ok else "placement_miss"
                else:
                    cause = "not_attempted"
                telemetry.event(
                    "verify.flip",
                    page=key[0], byte_offset=key[1], bit=key[2], direction=key[3],
                    achieved=achieved, cause=cause,
                )

        targeted_pages = set(match.assignments)
        accidental_targeted = sum(
            1
            for loc in achieved_locations
            if loc.page in targeted_pages
            and (loc.page, loc.byte_offset, loc.bit_index, loc.direction) not in planned_keys
        )
        accidental_elsewhere = sum(
            1 for loc in achieved_locations if loc.page not in targeted_pages
        )
        from repro.analysis.metrics import dram_match_rate

        r_match = dram_match_rate(
            n_match=n_achieved,
            total_flips=n_required,
            accidental_flips_in_pages=accidental_targeted,
            page_bits=PAGE_SIZE_BITS,
        )
        if telemetry.events_enabled():
            telemetry.event(
                "verify.summary",
                required=n_required,
                achieved=n_achieved,
                accidental_targeted=accidental_targeted,
                accidental_elsewhere=accidental_elsewhere,
                r_match=r_match,
                placement_verified=placement_ok,
            )
        return OnlineInjectionResult(
            corrupted_weights=corrupted,
            n_flip_required=n_required,
            n_flip_achieved=n_achieved,
            accidental_flips_targeted=accidental_targeted,
            accidental_flips_elsewhere=accidental_elsewhere,
            r_match=r_match,
            matched_pages=match.matched_pages,
            unmatched_pages=match.unmatched_pages,
            hammer_seconds=hammer_seconds,
            placement_verified=placement_ok,
        )


class _RestrictedTemplater:
    """Templater view that refuses frames already claimed by the main match."""

    def __init__(self, base: PageTemplater, used_frames: set) -> None:
        self._base = base
        self._used = set(used_frames)

    def match(self, targets_by_page: Dict[int, List[BitLocation]]):
        # Temporarily hide used frames from the base templater's index.
        hidden = {
            frame: self._base._frame_flips.pop(frame)
            for frame in list(self._base._frame_flips)
            if frame in self._used
        }
        try:
            return self._base.match(targets_by_page)
        finally:
            self._base._frame_flips.update(hidden)
