"""Alternative fault-injection mechanisms evaluated by the paper.

Rowhammer is the paper's main vector; Appendix F also evaluates Plundervolt
(CPU undervolting) and reports a *negative result* for DNN inference, which
:mod:`repro.faults.plundervolt` reproduces.
"""

from repro.faults.plundervolt import PlundervoltCPU, UndervoltConfig

__all__ = ["PlundervoltCPU", "UndervoltConfig"]
