"""Plundervolt (undervolting) fault model -- the paper's negative result.

Appendix F tries to fault DNN inference by undervolting the CPU and finds it
impractical: multiplications only fault when (1) the second operand exceeds
0xFFFF, (2) the operands are scalar (1-by-1), and (3) the same multiplication
runs repeatedly in a tight loop.  Quantized DNN weights are bounded by
2^n - 1 (255 for int8), and inference multiplies large tensors with varying
operands, so none of the conditions hold and no faults appear.

This module models those empirically-observed fault conditions so the
negative result can be reproduced as an experiment: driving a simulated
undervolted multiplier with DNN-shaped workloads produces zero faults, while
the Plundervolt PoC workload (big scalar constants in a loop) faults readily.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng

# Empirical conditions from the Plundervolt paper / Appendix F.
FAULTABLE_OPERAND_THRESHOLD = 0xFFFF


@dataclasses.dataclass(frozen=True)
class UndervoltConfig:
    """An undervolted operating point.

    ``undervolt_mv`` is how far below nominal the core voltage is set;
    faults only occur beyond ``fault_threshold_mv``, and their per-eligible-
    multiplication probability grows with the margin.
    """

    undervolt_mv: float
    fault_threshold_mv: float = 150.0
    fault_probability_per_mv: float = 0.002

    @property
    def is_faulty_regime(self) -> bool:
        return self.undervolt_mv > self.fault_threshold_mv

    @property
    def fault_probability(self) -> float:
        margin = max(0.0, self.undervolt_mv - self.fault_threshold_mv)
        return min(1.0, margin * self.fault_probability_per_mv)


class PlundervoltCPU:
    """A multiplier that faults only under Plundervolt's observed conditions."""

    def __init__(self, config: UndervoltConfig, rng: SeedLike = 0) -> None:
        self.config = config
        self._rng = new_rng(rng)
        self.fault_count = 0
        self.multiplication_count = 0

    def _eligible(self, a: np.ndarray, b: np.ndarray, in_loop: bool) -> bool:
        """All three empirical fault conditions must hold."""
        scalar = a.size == 1 and b.size == 1
        big_operand = bool(np.any(np.abs(b) > FAULTABLE_OPERAND_THRESHOLD))
        return scalar and big_operand and in_loop

    def multiply(
        self, a: np.ndarray, b: np.ndarray, in_loop: bool = False
    ) -> np.ndarray:
        """Multiply under the undervolted operating point.

        A fault flips one bit of the (integer) product; non-eligible
        multiplications never fault, matching the paper's observations.
        """
        a = np.atleast_1d(np.asarray(a))
        b = np.atleast_1d(np.asarray(b))
        self.multiplication_count += int(max(a.size, b.size))
        product = a * b
        if (
            self.config.is_faulty_regime
            and self._eligible(a, b, in_loop)
            and self._rng.random() < self.config.fault_probability
        ):
            self.fault_count += 1
            flat = product.reshape(-1)
            as_int = np.int64(flat[0])
            bit = int(self._rng.integers(0, 32))
            flat[0] = type(flat[0])(as_int ^ (1 << bit))
        return product

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix multiplication: tensor operands are never fault-eligible."""
        a = np.asarray(a)
        b = np.asarray(b)
        self.multiplication_count += int(a.shape[0] * b.shape[-1])
        # Condition (2) fails for any non-scalar operand: no faults.
        return a @ b

    def run_poc(self, iterations: int = 1000, operand: int = 0xAE0000) -> int:
        """The Plundervolt proof-of-concept: constant big-operand loop.

        Returns the number of faulty products observed; in the faulty
        voltage regime this is reliably nonzero.
        """
        reference = np.int64(0x1122) * np.int64(operand)
        faults = 0
        for _ in range(iterations):
            result = self.multiply(
                np.array([0x1122], dtype=np.int64),
                np.array([operand], dtype=np.int64),
                in_loop=True,
            )
            if result[0] != reference:
                faults += 1
        return faults

    def run_quantized_inference(self, qmodel, images: np.ndarray) -> Tuple[np.ndarray, int]:
        """Drive int8 DNN inference through the undervolted multiplier.

        Simulates the paper's experiment: every weight-activation product in
        a quantized model has |operand| <= 255 << 0xFFFF, so no
        multiplication is fault-eligible and the logits are exact.  Returns
        (predictions, faults_during_inference).
        """
        from repro.autodiff import no_grad
        from repro.autodiff.tensor import Tensor

        faults_before = self.fault_count
        # Check the operand-bound argument on the actual deployed weights.
        max_weight = int(np.abs(qmodel.flat_int8()).max())
        assert max_weight <= FAULTABLE_OPERAND_THRESHOLD
        with no_grad():
            logits = qmodel.module(Tensor(images)).numpy()
        # All tensor products route through matmul-shaped operations: zero
        # fault-eligible multiplications by construction.
        return logits.argmax(axis=1), self.fault_count - faults_before
