"""Backend protocol: the compute kernels ``repro.autodiff`` delegates to.

A backend owns the dense kernels that dominate attack wall-clock: the
im2col contraction (and its backward scatter + gradient GEMMs) behind every
``conv2d``, the ``Linear`` forward/backward matmuls, and the batch-norm
statistics/normalization.  The default
:class:`~repro.backend.numpy_backend.NumpyBackend` reproduces the
historical op sequence bit for bit, so switching it in is invisible to the
golden snapshots; the ``threads`` profile partitions work into panels that
never change any reduction order (byte-identical too, at any thread
count); the ``fast`` profile trades byte-identity for throughput and is
therefore covered by tolerance-based parity tests only, never by the
byte-exact golden suite.

Parameterized selection: a ``REPRO_BACKEND`` value may carry a ``:<param>``
suffix (today only ``threads:N``); :meth:`Backend.from_spec` parses it, and
:attr:`Backend.spec` preserves the full selector for manifests and restore.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import BackendError


class Backend:
    """Base class for compute backends.

    Subclasses set :attr:`name` (the ``REPRO_BACKEND`` family selecting
    them) and :attr:`byte_identical` (whether the backend guarantees the
    exact bytes of the default NumPy op sequence -- golden and digest
    tests only run under byte-identical backends).
    """

    name: str = "base"
    byte_identical: bool = False

    @classmethod
    def from_spec(cls, spec: str) -> "Backend":
        """Build a backend from a full selector (e.g. ``threads:4``).

        The base implementation accepts only the bare family name;
        parameterized backends override this to parse their suffix.
        """
        base, sep, _ = spec.partition(":")
        if sep:
            raise BackendError(
                f"backend {base!r} takes no ':<param>' suffix (got {spec!r})"
            )
        backend = cls()
        backend.spec = spec
        return backend

    @property
    def spec(self) -> str:
        """The full selector this backend was built from (default: name)."""
        return getattr(self, "_spec", self.name)

    @spec.setter
    def spec(self, value: str) -> None:
        self._spec = value

    def close(self) -> None:
        """Release backend-owned resources (thread pools); idempotent."""

    # ------------------------------------------------------------------
    # Convolution kernels
    # ------------------------------------------------------------------
    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        """Contract im2col patches with the kernel matrix.

        ``cols`` is ``(N, out_h*out_w, C*kh*kw)`` (one patch row per output
        pixel), ``w_mat`` is ``(out_c, C*kh*kw)``; the result must be
        ``(N, out_h*out_w, out_c)``.
        """
        raise NotImplementedError

    def conv_grads(
        self,
        grad_mat: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        weight_shape: Tuple[int, ...],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The two backward GEMMs of a convolution.

        ``grad_mat`` is ``(N, L, out_c)``; returns ``(grad_cols, grad_w)``
        where ``grad_cols`` is ``(N, L, C*kh*kw)`` (fed to
        :meth:`im2col_backward`) and ``grad_w`` has ``weight_shape``.
        """
        raise NotImplementedError

    def im2col_backward(
        self,
        cols: np.ndarray,
        x_shape: Tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        """Scatter-add patch gradients back to image layout (col2im)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Dense kernels
    # ------------------------------------------------------------------
    def linear(
        self, x: np.ndarray, w_t: np.ndarray, b: Optional[np.ndarray]
    ) -> np.ndarray:
        """Dense forward ``x @ w_t (+ b)``.

        ``w_t`` is the transposed weight ``(in, out)`` -- for the reference
        backend it is the historical transposed *view*, so the GEMM sees the
        exact operand layout the pre-backend code used.  ``x`` may be 2-D
        ``(N, in)`` or carry extra leading axes (the engine's stacked
        candidate scoring broadcasts ``(K, N, in)``).
        """
        raise NotImplementedError

    def linear_grads(
        self,
        grad: np.ndarray,
        x: np.ndarray,
        w_t: np.ndarray,
        bias_shape: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Dense backward: ``(grad_x, grad_w, grad_b)``.

        ``grad_w`` must come back in the layer's ``(out, in)`` weight shape;
        ``grad_b`` is ``None`` when ``bias_shape`` is ``None``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Batch-norm kernels
    # ------------------------------------------------------------------
    def batchnorm_stats(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel ``(mean, var)`` of an NCHW batch."""
        raise NotImplementedError

    def batchnorm_apply(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        mean: np.ndarray,
        var: np.ndarray,
        eps: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Normalize and affine-transform: ``(out, x_hat, inv_std)``.

        ``x_hat`` and ``inv_std`` are returned because the autodiff backward
        consumes them directly.
        """
        raise NotImplementedError

    def describe(self) -> dict:
        """Metadata exported into bench reports and manifests."""
        return {
            "name": self.name,
            "spec": self.spec,
            "byte_identical": self.byte_identical,
        }
