"""Backend protocol: the compute kernels ``repro.autodiff`` delegates to.

A backend owns the handful of dense kernels that dominate inference
wall-clock (today: the im2col contraction behind every ``conv2d``).  The
default :class:`~repro.backend.numpy_backend.NumpyBackend` reproduces the
historical op sequence bit for bit, so switching it in is invisible to the
golden snapshots; alternative profiles (``fast``) may trade byte-identity
for throughput and are therefore covered by tolerance-based parity tests
only, never by the byte-exact golden suite.
"""

from __future__ import annotations

import numpy as np


class Backend:
    """Base class for compute backends.

    Subclasses set :attr:`name` (the ``REPRO_BACKEND`` value selecting
    them) and :attr:`byte_identical` (whether the backend guarantees the
    exact bytes of the default NumPy op sequence -- golden and digest
    tests only run under byte-identical backends).
    """

    name: str = "base"
    byte_identical: bool = False

    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        """Contract im2col patches with the kernel matrix.

        ``cols`` is ``(N, out_h*out_w, C*kh*kw)`` (one patch row per output
        pixel), ``w_mat`` is ``(out_c, C*kh*kw)``; the result must be
        ``(N, out_h*out_w, out_c)``.
        """
        raise NotImplementedError

    def describe(self) -> dict:
        """Metadata exported into bench reports and manifests."""
        return {"name": self.name, "byte_identical": self.byte_identical}
