"""The ``threads`` profile: panel-threaded kernels, byte-identical by design.

Opt-in via ``REPRO_BACKEND=threads`` (pool sized to the CPU count) or
``threads:N``.  Unlike ``fast``, this profile keeps the byte-identity
contract at any thread count, so it runs under the golden suite and the
engine digest hard-fails.  The scheme that makes that possible:

- Work is cut into **panels along the leading (sample/candidate) axis**
  only.  The reference backend's 3-D GEMMs already run one independent
  2-D GEMM per leading slice (the gufunc batch loop), so slicing that axis
  cannot change any slice's operands -- panel outputs are the reference
  bytes on *any* BLAS, not just the one this repo was recorded against.
- A panel never splits a single GEMM's row or reduction (K) axis, and
  panels write disjoint slices of a preallocated output -- there is no
  cross-thread reduction, so the per-panel reduction order is fixed and
  results are independent of the thread count and of scheduling.
- Kernels whose reference expression reduces *across* samples (the weight
  gradients, batch-norm statistics) are left monolithic: splitting them
  would reassociate a float sum.  2-D dense forwards are likewise left
  monolithic -- the engine's lift-to-leading-axis scoring relies on 2-D
  GEMMs keeping exactly the sequential path's shape.

The panel width is a fixed constant (not derived from the worker count) so
``threads:1`` and ``threads:8`` decompose identically; only *who* computes
a panel changes.  NumPy releases the GIL inside BLAS calls and the
scatter-add loop's ufuncs, which is where the parallel win comes from.

Telemetry: ``backend.gemm.calls`` / ``backend.gemm.panels`` counters (both
deterministic) and the ``backend.gemm.pool_size`` gauge are emitted when
telemetry is enabled; wall-clock nanoseconds accumulate on the instance
(``gemm_ns``) and are only exported by ``repro bench`` (as the
``backend.gemm.ns_per_call`` gauge), never from inside sweep tasks, so
merged-metrics byte-identity is preserved.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.autodiff.tensor import _unbroadcast
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError

# Leading-axis slices per panel.  Fixed (never a function of the worker
# count) so the decomposition -- and therefore the bytes -- is identical
# under threads:1 and threads:N; small enough that micro-scale batches
# (64 samples, 16-24 candidates) still fan out across a pool.
SAMPLE_PANEL = 8


class ThreadsBackend(NumpyBackend):
    """Panel-parallel reference kernels; byte-identical at any thread count."""

    name = "threads"
    byte_identical = True

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise BackendError(f"threads backend needs >= 1 worker, got {workers}")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self.gemm_calls = 0
        self.gemm_panels = 0
        self.gemm_ns = 0

    @classmethod
    def from_spec(cls, spec: str) -> "ThreadsBackend":
        _, sep, param = spec.partition(":")
        if sep:
            try:
                workers = int(param)
            except ValueError:
                raise BackendError(
                    f"invalid backend spec {spec!r}: expected threads or threads:<N>"
                ) from None
            backend = cls(workers)
        else:
            backend = cls()
        backend.spec = spec
        return backend

    def describe(self) -> dict:
        info = super().describe()
        info["threads"] = self.workers
        info["panel_samples"] = SAMPLE_PANEL
        return info

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            # wait=False: safe after fork, where inherited worker threads no
            # longer exist and could never be joined.
            pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Panel executor
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-gemm"
            )
            if telemetry.enabled():
                telemetry.gauge_set("backend.gemm.pool_size", self.workers)
        return self._pool

    def _run_panels(self, count: int, run: Callable[[int], None]) -> None:
        """Execute ``run(panel)`` for ``count`` disjoint panels.

        Panels write non-overlapping output slices, so execution order is
        free; inline when there is nothing to overlap.
        """
        self.gemm_calls += 1
        self.gemm_panels += count
        if telemetry.enabled():
            telemetry.counter_add("backend.gemm.calls")
            telemetry.counter_add("backend.gemm.panels", count)
        start = time.perf_counter_ns()
        if count <= 1 or self.workers <= 1:
            for panel in range(count):
                run(panel)
        else:
            pool = self._ensure_pool()
            futures = [pool.submit(run, panel) for panel in range(count)]
            for future in futures:
                future.result()
        self.gemm_ns += time.perf_counter_ns() - start

    @staticmethod
    def _panel_bounds(panel: int, n: int) -> Tuple[int, int]:
        start = panel * SAMPLE_PANEL
        return start, min(n, start + SAMPLE_PANEL)

    @staticmethod
    def _panel_count(n: int) -> int:
        return (n + SAMPLE_PANEL - 1) // SAMPLE_PANEL

    # ------------------------------------------------------------------
    # Convolution
    # ------------------------------------------------------------------
    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        n = cols.shape[0]
        count = self._panel_count(n)
        if count <= 1:
            return super().conv_cols_matmul(cols, w_mat)
        w_t = w_mat.T
        out = np.empty(
            (n, cols.shape[1], w_mat.shape[0]),
            dtype=np.result_type(cols.dtype, w_mat.dtype),
        )

        def run(panel: int) -> None:
            a, b = self._panel_bounds(panel, n)
            out[a:b] = cols[a:b] @ w_t

        self._run_panels(count, run)
        return out

    def conv_grads(
        self,
        grad_mat: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        weight_shape: Tuple[int, ...],
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = grad_mat.shape[0]
        count = self._panel_count(n)
        if count <= 1:
            return super().conv_grads(grad_mat, cols, w_mat, weight_shape)
        grad_cols = np.empty(
            (n, grad_mat.shape[1], w_mat.shape[1]),
            dtype=np.result_type(grad_mat.dtype, w_mat.dtype),
        )

        def run(panel: int) -> None:
            a, b = self._panel_bounds(panel, n)
            grad_cols[a:b] = grad_mat[a:b] @ w_mat

        self._run_panels(count, run)
        # The weight gradient reduces across samples; stay monolithic so the
        # einsum's accumulation order is the reference one.
        grad_w = np.einsum("nlo,nlk->ok", grad_mat, cols).reshape(weight_shape)
        return grad_cols, grad_w

    def im2col_backward(
        self,
        cols: np.ndarray,
        x_shape: Tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        n, c, h, w = x_shape
        count = self._panel_count(n)
        if count <= 1:
            return super().im2col_backward(
                cols, x_shape, kh, kw, stride, padding, out_h, out_w
            )
        padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
        shaped = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)

        def run(panel: int) -> None:
            a, b = self._panel_bounds(panel, n)
            # Same (i, j) add order per element as the reference loop; the
            # scatter targets of different panels are disjoint sample rows.
            for i in range(kh):
                i_end = i + stride * out_h
                for j in range(kw):
                    j_end = j + stride * out_w
                    padded[a:b, :, i:i_end:stride, j:j_end:stride] += shaped[
                        a:b, :, :, :, i, j
                    ]

        self._run_panels(count, run)
        if padding:
            return padded[:, :, padding:-padding, padding:-padding]
        return padded

    # ------------------------------------------------------------------
    # Dense
    # ------------------------------------------------------------------
    def linear(
        self, x: np.ndarray, w_t: np.ndarray, b: Optional[np.ndarray]
    ) -> np.ndarray:
        # 2-D stays monolithic: splitting rows would hand BLAS a different M
        # per call, and the engine's candidate lifting pins 2-D GEMM shapes.
        if x.ndim < 3:
            return super().linear(x, w_t, b)
        n = x.shape[0]
        count = self._panel_count(n)
        if count <= 1:
            return super().linear(x, w_t, b)
        out = np.empty(
            x.shape[:-1] + (w_t.shape[-1],), dtype=np.result_type(x.dtype, w_t.dtype)
        )

        def run(panel: int) -> None:
            a, bnd = self._panel_bounds(panel, n)
            out[a:bnd] = x[a:bnd] @ w_t

        self._run_panels(count, run)
        if b is not None:
            out = out + b
        return out

    def linear_grads(
        self,
        grad: np.ndarray,
        x: np.ndarray,
        w_t: np.ndarray,
        bias_shape: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        count = self._panel_count(grad.shape[0]) if grad.ndim >= 3 else 1
        if count <= 1:
            return super().linear_grads(grad, x, w_t, bias_shape)
        n = grad.shape[0]
        w = np.swapaxes(w_t, -1, -2)
        grad_x = np.empty(x.shape, dtype=np.result_type(grad.dtype, w_t.dtype))

        def run(panel: int) -> None:
            a, b = self._panel_bounds(panel, n)
            grad_x[a:b] = grad[a:b] @ w

        self._run_panels(count, run)
        # Weight/bias gradients reduce across the leading axis: monolithic.
        grad_w = np.transpose(_unbroadcast(np.swapaxes(x, -1, -2) @ grad, w_t.shape))
        grad_b = None if bias_shape is None else _unbroadcast(grad, bias_shape)
        return grad_x, grad_w, grad_b
