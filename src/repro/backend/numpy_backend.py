"""The default backend: the exact NumPy op sequence the repo has always run.

Every kernel here is the literal expression the autodiff ops used before the
backend abstraction existed, so the bytes it produces are the reference the
golden snapshots, sweep rows and engine digests were recorded against.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


class NumpyBackend(Backend):
    """Reference kernels; byte-identical to the pre-backend code path."""

    name = "numpy"
    byte_identical = True

    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        # The 3-D @ 2-D matmul runs one (L, K) x (K, out_c) GEMM per sample
        # via the gufunc batch loop -- per-sample results are independent of
        # the batch size, which the engine's candidate stacking relies on.
        return cols @ w_mat.T
