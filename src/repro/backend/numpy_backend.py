"""The default backend: the exact NumPy op sequence the repo has always run.

Every kernel here is the literal expression the autodiff ops used before the
backend abstraction existed, so the bytes it produces are the reference the
golden snapshots, sweep rows and engine digests were recorded against:

- :meth:`linear` / :meth:`linear_grads` replay the ``Transpose`` +
  ``MatMul`` + ``Add`` tape triple ``nn.Linear`` used to build (including
  the ``_unbroadcast`` reductions the tape applied);
- :meth:`batchnorm_stats` / :meth:`batchnorm_apply` are the expressions
  lifted out of ``BatchNorm2dFunction.forward``;
- :meth:`im2col_backward` is the historical ``_col2im`` scatter-add loop;
- :meth:`conv_grads` is ``Conv2dFunction.backward``'s GEMM + einsum pair.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autodiff.tensor import _unbroadcast
from repro.backend.base import Backend


class NumpyBackend(Backend):
    """Reference kernels; byte-identical to the pre-backend code path."""

    name = "numpy"
    byte_identical = True

    # ------------------------------------------------------------------
    # Convolution
    # ------------------------------------------------------------------
    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        # The 3-D @ 2-D matmul runs one (L, K) x (K, out_c) GEMM per sample
        # via the gufunc batch loop -- per-sample results are independent of
        # the batch size, which the engine's candidate stacking relies on.
        return cols @ w_mat.T

    def conv_grads(
        self,
        grad_mat: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        weight_shape: Tuple[int, ...],
    ) -> Tuple[np.ndarray, np.ndarray]:
        grad_cols = grad_mat @ w_mat  # (N, L, C*kh*kw)
        grad_w = np.einsum("nlo,nlk->ok", grad_mat, cols).reshape(weight_shape)
        return grad_cols, grad_w

    def im2col_backward(
        self,
        cols: np.ndarray,
        x_shape: Tuple[int, int, int, int],
        kh: int,
        kw: int,
        stride: int,
        padding: int,
        out_h: int,
        out_w: int,
    ) -> np.ndarray:
        n, c, h, w = x_shape
        padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
        cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
        for i in range(kh):
            i_end = i + stride * out_h
            for j in range(kw):
                j_end = j + stride * out_w
                padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, :, :, i, j]
        if padding:
            return padded[:, :, padding:-padding, padding:-padding]
        return padded

    # ------------------------------------------------------------------
    # Dense
    # ------------------------------------------------------------------
    def linear(
        self, x: np.ndarray, w_t: np.ndarray, b: Optional[np.ndarray]
    ) -> np.ndarray:
        # ``w_t`` is the transposed view of the weight, so this GEMM sees the
        # same operand layout (and therefore BLAS kernel selection) as the
        # historical ``x @ weight.transpose()`` tape path.
        out = x @ w_t
        if b is not None:
            out = out + b
        return out

    def linear_grads(
        self,
        grad: np.ndarray,
        x: np.ndarray,
        w_t: np.ndarray,
        bias_shape: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        # MatMul.backward on (x, w_t), then Transpose.backward on the weight
        # gradient -- the exact historical sequence, including _unbroadcast's
        # leading-axis sums for the engine's stacked 3-D activations.
        grad_x = _unbroadcast(grad @ np.swapaxes(w_t, -1, -2), x.shape)
        grad_w = np.transpose(_unbroadcast(np.swapaxes(x, -1, -2) @ grad, w_t.shape))
        grad_b = None if bias_shape is None else _unbroadcast(grad, bias_shape)
        return grad_x, grad_w, grad_b

    # ------------------------------------------------------------------
    # Batch norm
    # ------------------------------------------------------------------
    def batchnorm_stats(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return x.mean(axis=(0, 2, 3)), x.var(axis=(0, 2, 3))

    def batchnorm_apply(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        mean: np.ndarray,
        var: np.ndarray,
        eps: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        inv_std = 1.0 / np.sqrt(var + eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = gamma[None, :, None, None] * x_hat + beta[None, :, None, None]
        return out, x_hat, inv_std
