"""Pluggable compute backends for the autodiff/engine hot kernels.

``repro.autodiff`` delegates its dense inner kernels (currently the im2col
contraction behind every convolution) to the process-wide active backend:

- ``numpy`` (default): the exact op sequence the repo has always run --
  byte-identical to every golden snapshot and engine digest;
- ``fast``: fused contiguous im2col batching plus float32-everywhere
  inference -- faster, but only tolerance-equal, so it is opt-in and
  excluded from byte-identity tests.

Selection: the ``REPRO_BACKEND`` environment variable at first use (sweep
worker processes inherit it), or :func:`set_backend` programmatically.  The
CLI's ``--backend`` flag exports the environment variable so child
processes agree with the parent.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

from repro.backend.base import Backend
from repro.backend.fast import FastBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.errors import BackendError

__all__ = [
    "Backend",
    "BackendError",
    "FastBackend",
    "NumpyBackend",
    "available_backends",
    "backend_name",
    "current_backend",
    "reset_backend",
    "set_backend",
]

_REGISTRY: Dict[str, Type[Backend]] = {
    NumpyBackend.name: NumpyBackend,
    FastBackend.name: FastBackend,
}

_active: Optional[Backend] = None


def available_backends() -> List[str]:
    """Names accepted by :func:`set_backend` and ``REPRO_BACKEND``."""
    return sorted(_REGISTRY)


def set_backend(name: str) -> Backend:
    """Activate a backend by name for the whole process."""
    global _active
    try:
        backend_cls = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None
    _active = backend_cls()
    return _active


def current_backend() -> Backend:
    """The active backend, resolving ``REPRO_BACKEND`` on first use."""
    global _active
    if _active is None:
        set_backend(os.environ.get("REPRO_BACKEND", NumpyBackend.name))
    return _active


def backend_name() -> str:
    return current_backend().name


def reset_backend() -> None:
    """Drop the active backend so the next use re-reads ``REPRO_BACKEND``."""
    global _active
    _active = None
