"""Pluggable compute backends for the autodiff/engine hot kernels.

``repro.autodiff`` delegates its dense inner kernels -- the im2col
contraction (and backward scatter + gradient GEMMs) behind every
convolution, the ``Linear`` forward/backward matmuls, and batch-norm
statistics/normalization -- to the process-wide active backend:

- ``numpy`` (default): the exact op sequence the repo has always run --
  byte-identical to every golden snapshot and engine digest;
- ``threads`` / ``threads:N``: the reference kernels cut into disjoint
  leading-axis panels executed on a thread pool -- byte-identical at any
  thread count (it runs under the golden suite), faster wherever more
  than one core is available;
- ``fast``: fused contiguous float32 GEMMs across inference *and* the CFT
  training path -- faster, but only tolerance-equal, so it is opt-in and
  excluded from byte-identity tests.

Selection: the ``REPRO_BACKEND`` environment variable at first use (sweep
worker processes inherit it), or :func:`set_backend` programmatically.  The
CLI's ``--backend`` flag exports the environment variable so child
processes agree with the parent.  A ``:<param>`` suffix parameterizes the
family (``threads:4``); the bare family name uses its default (``threads``
sizes the pool to the CPU count).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Type

from repro.backend.base import Backend
from repro.backend.fast import FastBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.threads import ThreadsBackend
from repro.errors import BackendError

__all__ = [
    "Backend",
    "BackendError",
    "FastBackend",
    "NumpyBackend",
    "ThreadsBackend",
    "available_backends",
    "backend_name",
    "current_backend",
    "reset_backend",
    "set_backend",
]

_REGISTRY: Dict[str, Type[Backend]] = {
    NumpyBackend.name: NumpyBackend,
    FastBackend.name: FastBackend,
    ThreadsBackend.name: ThreadsBackend,
}

_active: Optional[Backend] = None


def available_backends() -> List[str]:
    """Family names accepted by :func:`set_backend` and ``REPRO_BACKEND``.

    Parameterized families additionally accept a ``:<param>`` suffix
    (``threads:4``).
    """
    return sorted(_REGISTRY)


def set_backend(name: str) -> Backend:
    """Activate a backend by name (or ``family:param`` spec) process-wide."""
    global _active
    family, _, _ = name.partition(":")
    backend_cls = _REGISTRY.get(family)
    if backend_cls is None:
        raise BackendError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        )
    backend = backend_cls.from_spec(name)
    if _active is not None:
        _active.close()
    _active = backend
    return _active


def current_backend() -> Backend:
    """The active backend, resolving ``REPRO_BACKEND`` on first use."""
    global _active
    if _active is None:
        set_backend(os.environ.get("REPRO_BACKEND", NumpyBackend.name))
    return _active


def backend_name() -> str:
    return current_backend().name


def reset_backend() -> None:
    """Drop the active backend so the next use re-reads ``REPRO_BACKEND``.

    Also releases backend-owned resources (the ``threads`` pool); sweep
    workers call this after fork, where inherited pool threads no longer
    exist.
    """
    global _active
    if _active is not None:
        _active.close()
    _active = None
