"""The ``fast`` profile: fused, contiguous, float32-everywhere kernels.

Opt-in via ``REPRO_BACKEND=fast``.  Two deviations from the reference
backend buy the speed:

- **Fused im2col contraction**: the per-sample batched GEMM collapses into
  a single ``(N*L, K) @ (K, out_c)`` call, so BLAS sees one large problem
  instead of N small ones (better blocking/threading, no gufunc loop).
- **float32 everywhere**: operands are forced to contiguous float32 before
  the GEMM, so a float64 upcast sneaking into an inference path cannot
  silently double memory traffic.

Both change the floating-point reduction *grouping*, so outputs are only
guaranteed equal to the reference backend within tolerance -- ``fast`` is
excluded from byte-identity golden tests and covered by the tolerance
parity suite in ``tests/test_backend.py`` instead.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


class FastBackend(Backend):
    """Throughput-first kernels; tolerance-equal to the reference backend."""

    name = "fast"
    byte_identical = False

    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        n, length, k = cols.shape
        flat = np.ascontiguousarray(cols.reshape(n * length, k), dtype=np.float32)
        kernel = np.ascontiguousarray(w_mat.T, dtype=np.float32)
        return (flat @ kernel).reshape(n, length, kernel.shape[1])
