"""The ``fast`` profile: fused, contiguous, float32-everywhere kernels.

Opt-in via ``REPRO_BACKEND=fast``.  Two deviations from the reference
backend buy the speed:

- **Fused GEMMs**: batched per-sample GEMMs collapse into a single
  ``(N*L, K) @ (K, out)`` call -- the im2col contraction, its two backward
  GEMMs, and the dense forward/backward all flatten their leading axes so
  BLAS sees one large problem instead of N small ones (better
  blocking/threading, no gufunc loop).
- **float32 everywhere**: operands are forced to contiguous float32 before
  each GEMM, so a float64 upcast sneaking into a hot path cannot silently
  double memory traffic.

Both change the floating-point reduction *grouping*, so outputs are only
guaranteed equal to the reference backend within tolerance -- ``fast`` is
excluded from byte-identity golden tests and covered by the tolerance
parity suite in ``tests/test_backend.py`` instead.  With this PR the
profile covers the CFT fine-tuning path too (forward *and* backward), the
dominant offline cost at larger scales; the im2col scatter and batch-norm
kernels inherit the reference expressions (they are memory-bound, not
GEMM-bound).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.numpy_backend import NumpyBackend


def _flat32(x: np.ndarray) -> np.ndarray:
    """Contiguous float32 2-D view of an array's trailing feature axis."""
    return np.ascontiguousarray(x.reshape(-1, x.shape[-1]), dtype=np.float32)


class FastBackend(NumpyBackend):
    """Throughput-first kernels; tolerance-equal to the reference backend."""

    name = "fast"
    byte_identical = False

    def conv_cols_matmul(self, cols: np.ndarray, w_mat: np.ndarray) -> np.ndarray:
        n, length, k = cols.shape
        flat = np.ascontiguousarray(cols.reshape(n * length, k), dtype=np.float32)
        kernel = np.ascontiguousarray(w_mat.T, dtype=np.float32)
        return (flat @ kernel).reshape(n, length, kernel.shape[1])

    def conv_grads(
        self,
        grad_mat: np.ndarray,
        cols: np.ndarray,
        w_mat: np.ndarray,
        weight_shape: Tuple[int, ...],
    ) -> Tuple[np.ndarray, np.ndarray]:
        n, length, out_c = grad_mat.shape
        flat_grad = _flat32(grad_mat)  # (N*L, out_c)
        kernel = np.ascontiguousarray(w_mat, dtype=np.float32)
        grad_cols = (flat_grad @ kernel).reshape(n, length, w_mat.shape[1])
        # einsum("nlo,nlk->ok") fused into one transposed GEMM.
        grad_w = (flat_grad.T @ _flat32(cols)).reshape(weight_shape)
        return grad_cols, grad_w

    def linear(
        self, x: np.ndarray, w_t: np.ndarray, b: Optional[np.ndarray]
    ) -> np.ndarray:
        kernel = np.ascontiguousarray(w_t, dtype=np.float32)
        out = (_flat32(x) @ kernel).reshape(x.shape[:-1] + (kernel.shape[1],))
        if b is not None:
            out = out + np.asarray(b, dtype=np.float32)
        return out

    def linear_grads(
        self,
        grad: np.ndarray,
        x: np.ndarray,
        w_t: np.ndarray,
        bias_shape: Optional[Tuple[int, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        flat_grad = _flat32(grad)  # (M, out)
        flat_x = _flat32(x)  # (M, in)
        w = np.ascontiguousarray(np.swapaxes(w_t, -1, -2), dtype=np.float32)
        grad_x = (flat_grad @ w).reshape(x.shape)
        grad_w = flat_grad.T @ flat_x  # (out, in): the layer's weight shape
        grad_b = (
            None if bias_shape is None else flat_grad.sum(axis=0).reshape(bias_shape)
        )
        return grad_x, grad_w, grad_b
