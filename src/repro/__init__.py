"""Reproduction of "Don't Knock! Rowhammer at the Backdoor of DNN Models".

The package is organized bottom-up:

- :mod:`repro.autodiff` -- a from-scratch NumPy reverse-mode autograd engine.
- :mod:`repro.nn`, :mod:`repro.optim` -- neural-network layers and optimizers.
- :mod:`repro.data` -- synthetic datasets and trigger-pattern utilities.
- :mod:`repro.models` -- ResNet and VGG architectures from the paper.
- :mod:`repro.quant` -- TensorRT-style int8 quantization and bit manipulation.
- :mod:`repro.memory` -- DRAM geometry, page cache and mmap simulation.
- :mod:`repro.rowhammer` -- n-sided Rowhammer engine and fault profiling.
- :mod:`repro.attacks` -- CFT/CFT+BR and the BadNet/FT/TBT baselines.
- :mod:`repro.defenses` -- the countermeasures evaluated in Section VI.
- :mod:`repro.analysis` -- probability analysis, metrics and GradCAM.
- :mod:`repro.core` -- end-to-end offline+online attack pipeline.
- :mod:`repro.telemetry` -- metrics, spans and the benchmark report format.
"""

from repro.version import __version__

__all__ = ["__version__"]
