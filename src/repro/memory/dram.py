"""The DRAM array simulator: data storage plus vulnerable-cell physics.

Vulnerable cells are the core physical fact the paper's constraints derive
from: only ~0.036 % of cells are flippable at all, each cell flips in exactly
one direction, and flips are sparse and uniformly scattered (Fig. 2).  Each
simulated device draws its cells deterministically from a seed, with density
set by the device's measured flips-per-page average (Table I).

A cell also carries a *strength* in (0, 1]: hammering with more aggressor
rows reaches weaker cells (higher strength threshold), which reproduces the
n-sided yield curve of Fig. 5 and the 15- vs 7-sided trade-off of Fig. 6.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import MemoryModelError
from repro.memory.geometry import DRAMGeometry, PAGE_FRAME_SIZE
from repro.utils.rng import SeedLike, new_rng


@dataclasses.dataclass(frozen=True)
class VulnerableCell:
    """One Rowhammer-flippable DRAM cell.

    Attributes
    ----------
    column:
        Byte offset within the row.
    bit:
        Bit within the byte (0 = LSB).
    direction:
        +1: the cell can only flip 0 -> 1; -1: only 1 -> 0.
    strength:
        Hammer intensity in (0, 1] needed to flip the cell; stronger
        (more-sided) hammer patterns reach higher-strength cells.
    """

    column: int
    bit: int
    direction: int
    strength: float


class DRAMArray:
    """A simulated DRAM device with lazily materialized rows and faults.

    Parameters
    ----------
    geometry:
        Bank/row shape of the device.
    flips_per_page_mean:
        Average number of vulnerable cells per 4 KB page (Table I column).
    seed:
        Seed fixing the device's fault map; two arrays with the same seed
        and parameters have identical vulnerable cells (it is a *device*
        property, stable across profiling and attack runs).
    """

    def __init__(
        self,
        geometry: DRAMGeometry,
        flips_per_page_mean: float,
        seed: SeedLike = 0,
    ) -> None:
        if flips_per_page_mean < 0:
            raise MemoryModelError(
                f"flips_per_page_mean must be non-negative, got {flips_per_page_mean}"
            )
        self.geometry = geometry
        self.flips_per_page_mean = float(flips_per_page_mean)
        root = new_rng(seed)
        self._device_seed = int(root.integers(0, 2**63))
        self._rows: Dict[Tuple[int, int], np.ndarray] = {}
        self._cells: Dict[Tuple[int, int], List[VulnerableCell]] = {}

    # ------------------------------------------------------------------
    # Data storage
    # ------------------------------------------------------------------
    def _row_data(self, bank: int, row: int) -> np.ndarray:
        key = (bank, row)
        data = self._rows.get(key)
        if data is None:
            data = np.zeros(self.geometry.row_size_bytes, dtype=np.uint8)
            self._rows[key] = data
        return data

    def write_bytes(self, phys_addr: int, payload: np.ndarray) -> None:
        """Write raw bytes starting at a physical address (may span rows)."""
        payload = np.asarray(payload, dtype=np.uint8)
        cursor = 0
        while cursor < payload.size:
            address = self.geometry.address_of(phys_addr + cursor)
            row = self._row_data(address.bank, address.row)
            room = self.geometry.row_size_bytes - address.column
            take = min(room, payload.size - cursor)
            row[address.column : address.column + take] = payload[cursor : cursor + take]
            cursor += take

    def read_bytes(self, phys_addr: int, count: int) -> np.ndarray:
        """Read raw bytes starting at a physical address (may span rows)."""
        out = np.empty(count, dtype=np.uint8)
        cursor = 0
        while cursor < count:
            address = self.geometry.address_of(phys_addr + cursor)
            row = self._row_data(address.bank, address.row)
            room = self.geometry.row_size_bytes - address.column
            take = min(room, count - cursor)
            out[cursor : cursor + take] = row[address.column : address.column + take]
            cursor += take
        return out

    def write_frame(self, frame: int, payload: np.ndarray) -> None:
        """Write a full 4 KB page frame."""
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.size != PAGE_FRAME_SIZE:
            raise MemoryModelError(
                f"frame payload must be {PAGE_FRAME_SIZE} bytes, got {payload.size}"
            )
        self.write_bytes(frame * PAGE_FRAME_SIZE, payload)

    def read_frame(self, frame: int) -> np.ndarray:
        """Read a full 4 KB page frame."""
        return self.read_bytes(frame * PAGE_FRAME_SIZE, PAGE_FRAME_SIZE)

    # ------------------------------------------------------------------
    # Fault map
    # ------------------------------------------------------------------
    def vulnerable_cells(self, bank: int, row: int) -> List[VulnerableCell]:
        """Deterministic vulnerable-cell list for one row (lazily drawn)."""
        key = (bank, row)
        cells = self._cells.get(key)
        if cells is None:
            rng = new_rng(np.random.SeedSequence([self._device_seed, bank, row]))
            expected = self.flips_per_page_mean * self.geometry.pages_per_row
            count = int(rng.poisson(expected))
            cells = []
            seen = set()
            for _ in range(count):
                column = int(rng.integers(0, self.geometry.row_size_bytes))
                bit = int(rng.integers(0, 8))
                if (column, bit) in seen:
                    # A physical cell has exactly one flip direction; skip
                    # the (rare) duplicate draw.
                    continue
                seen.add((column, bit))
                cells.append(
                    VulnerableCell(
                        column=column,
                        bit=bit,
                        direction=1 if rng.random() < 0.5 else -1,
                        strength=float(rng.uniform(0.0, 1.0)),
                    )
                )
            self._cells[key] = cells
        return cells

    def hammer_row(self, bank: int, row: int, intensity: float) -> List[Tuple[int, int, int]]:
        """Disturb one victim row with the given hammer intensity.

        Every vulnerable cell with ``strength <= intensity`` whose stored bit
        currently opposes its flip direction is flipped in place.  Returns
        the flips as (column, bit, direction) tuples.
        """
        if intensity <= 0:
            return []
        data = self._row_data(bank, row)
        flipped: List[Tuple[int, int, int]] = []
        for cell in self.vulnerable_cells(bank, row):
            if cell.strength > intensity:
                continue
            mask = np.uint8(1 << cell.bit)
            current = bool(data[cell.column] & mask)
            if cell.direction == 1 and not current:
                data[cell.column] |= mask
                flipped.append((cell.column, cell.bit, 1))
            elif cell.direction == -1 and current:
                data[cell.column] = np.uint8(data[cell.column] & ~mask)
                flipped.append((cell.column, cell.bit, -1))
        return flipped

    def observed_flip_fraction(self) -> float:
        """Fraction of cells that are vulnerable (for Fig. 2's 0.036 %)."""
        return self.flips_per_page_mean / (PAGE_FRAME_SIZE * 8)
