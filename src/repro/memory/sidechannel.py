"""Timing side channels used in the offline phase (Appendices B and C).

SPOILER leaks the low 8 physical-address bits above the page offset through
speculative load-store aliasing: scanning a big buffer, pages whose physical
frame aliases the probe address show a latency peak, and within a physically
contiguous region those peaks recur with an exact 256 KB (64-frame) period
(Fig. 11).  The row-buffer-conflict channel then distinguishes same-bank
addresses: accessing two rows of the same bank alternately forces row-buffer
evictions, costing ~400 cycles instead of ~200 (Fig. 12).

Both channels are simulated against the ground-truth frame layout of an
:class:`~repro.memory.mmap.OSMemoryModel` mapping, with Gaussian measurement
noise, and expose the same inference API an attacker implements on hardware.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import MappedFile
from repro.utils.rng import SeedLike, new_rng

SPOILER_PERIOD_FRAMES = 64  # 256 KB / 4 KB: the 8 leaked physical-address bits


@dataclasses.dataclass
class SpoilerChannel:
    """Simulated SPOILER timing channel over a virtual buffer.

    Attributes
    ----------
    base_latency / peak_latency:
        Mean cycle counts for non-aliasing and aliasing pages.
    noise_std:
        Gaussian measurement noise (cycles); the real attack averages 100
        measurements per page, which we mirror with ``repeats``.
    """

    base_latency: float = 250.0
    peak_latency: float = 420.0
    noise_std: float = 25.0
    repeats: int = 100

    def measure(self, mapping: MappedFile, rng: SeedLike = None) -> np.ndarray:
        """Per-virtual-page averaged latencies (peaks mark aliasing frames)."""
        rng = new_rng(rng)
        pages = sorted(mapping.frames)
        times = np.empty(len(pages), dtype=np.float64)
        for i, page in enumerate(pages):
            frame = mapping.frames[page]
            mean = self.peak_latency if frame % SPOILER_PERIOD_FRAMES == 0 else self.base_latency
            samples = rng.normal(mean, self.noise_std, size=self.repeats)
            # Mirror the real implementation: drop outliers, then average.
            low, high = np.percentile(samples, [5, 95])
            kept = samples[(samples >= low) & (samples <= high)]
            times[i] = kept.mean()
        return times

    def detect_peaks(self, times: np.ndarray) -> np.ndarray:
        """Indices of aliasing pages: latency above the midpoint threshold."""
        threshold = (self.base_latency + self.peak_latency) / 2.0
        return np.nonzero(np.asarray(times) >= threshold)[0]

    def find_contiguous_runs(self, times: np.ndarray) -> List[Tuple[int, int]]:
        """Infer physically contiguous virtual ranges from peak periodicity.

        Within contiguous physical memory the aliasing peaks are exactly
        ``SPOILER_PERIOD_FRAMES`` pages apart; a broken period means a
        physical discontinuity.  Returns (start_page, length) runs that are
        contiguous with high confidence (spanning at least two peaks).
        """
        peaks = self.detect_peaks(times)
        runs: List[Tuple[int, int]] = []
        run_start: int | None = None
        for prev, current in zip(peaks[:-1], peaks[1:]):
            if current - prev == SPOILER_PERIOD_FRAMES:
                if run_start is None:
                    run_start = int(prev)
            else:
                if run_start is not None:
                    runs.append((run_start, int(prev) - run_start + SPOILER_PERIOD_FRAMES))
                run_start = None
        if run_start is not None and len(peaks):
            runs.append((run_start, int(peaks[-1]) - run_start + SPOILER_PERIOD_FRAMES))
        return runs


@dataclasses.dataclass
class RowConflictChannel:
    """Simulated DRAMA row-buffer-conflict channel.

    Accessing two physical addresses alternately is slow (~400 cycles) when
    they live in the same bank but different rows, because each access evicts
    the other's row from the bank's row buffer.
    """

    geometry: DRAMGeometry
    hit_latency: float = 200.0
    conflict_latency: float = 400.0
    noise_std: float = 15.0

    def measure_pair(self, phys_a: int, phys_b: int, rng: SeedLike = None) -> float:
        """Average alternating-access latency for two physical addresses."""
        rng = new_rng(rng)
        addr_a = self.geometry.address_of(phys_a)
        addr_b = self.geometry.address_of(phys_b)
        conflict = addr_a.bank == addr_b.bank and addr_a.row != addr_b.row
        mean = self.conflict_latency if conflict else self.hit_latency
        return float(rng.normal(mean, self.noise_std))

    def same_bank(self, phys_a: int, phys_b: int, rng: SeedLike = None) -> bool:
        """Classify a pair as same-bank from its measured latency."""
        threshold = (self.hit_latency + self.conflict_latency) / 2.0
        return self.measure_pair(phys_a, phys_b, rng) >= threshold

    def bank_partition(
        self, frames: Sequence[int], rng: SeedLike = None
    ) -> Dict[int, List[int]]:
        """Group page frames into inferred banks via pairwise conflicts.

        Uses each frame's first byte as the probe address.  The returned
        keys are arbitrary group ids (the attacker never learns real bank
        numbers, only equivalence classes).
        """
        rng = new_rng(rng)
        groups: Dict[int, List[int]] = {}
        representatives: List[Tuple[int, int]] = []  # (group_id, frame)
        next_group = 0
        for frame in frames:
            phys = frame * 4096
            placed = False
            for group_id, representative in representatives:
                if self.same_bank(representative * 4096, phys, rng):
                    groups[group_id].append(frame)
                    placed = True
                    break
            if not placed:
                groups[next_group] = [frame]
                representatives.append((next_group, frame))
                next_group += 1
        return groups
