"""OS page cache model.

When a file is read or mapped, its pages are loaded into page-cache frames
and *stay there* after the file is closed (Section IV-B).  Rowhammer corrupts
the cached copy directly in DRAM; because the OS never observes a write, the
dirty bit stays clear, nothing is written back, and every subsequent reader
receives the corrupted cached page -- which is exactly why the attack is
stealthy and why it persists until the file is evicted or reloaded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.errors import MemoryModelError


class PageCache:
    """Maps (file_id, page_index) -> physical frame for cached file pages."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, int], int] = {}
        self._dirty: Dict[Tuple[str, int], bool] = {}

    def insert(self, file_id: str, page_index: int, frame: int) -> None:
        key = (file_id, page_index)
        if key in self._entries:
            raise MemoryModelError(f"page {key} already cached in frame {self._entries[key]}")
        self._entries[key] = frame
        self._dirty[key] = False
        telemetry.counter_add("page_cache.inserts")
        if telemetry.events_enabled():
            telemetry.event(
                "page_cache.insert", file=file_id, page=page_index, frame=frame
            )

    def lookup(self, file_id: str, page_index: int) -> Optional[int]:
        frame = self._entries.get((file_id, page_index))
        if telemetry.enabled():
            telemetry.counter_add(
                "page_cache.hits" if frame is not None else "page_cache.misses"
            )
        return frame

    def evict(self, file_id: str, page_index: int) -> int:
        key = (file_id, page_index)
        if key not in self._entries:
            raise MemoryModelError(f"page {key} is not cached")
        self._dirty.pop(key)
        telemetry.counter_add("page_cache.evictions")
        if telemetry.events_enabled():
            telemetry.event("page_cache.evict", file=file_id, page=page_index)
        return self._entries.pop(key)

    def evict_file(self, file_id: str) -> None:
        """Drop every cached page of a file (e.g. echo 1 > drop_caches)."""
        for key in [k for k in self._entries if k[0] == file_id]:
            del self._entries[key]
            del self._dirty[key]
            telemetry.counter_add("page_cache.evictions")

    def mark_dirty(self, file_id: str, page_index: int) -> None:
        """Record a CPU-side write (Rowhammer flips never call this)."""
        key = (file_id, page_index)
        if key not in self._entries:
            raise MemoryModelError(f"page {key} is not cached")
        self._dirty[key] = True

    def is_dirty(self, file_id: str, page_index: int) -> bool:
        return self._dirty.get((file_id, page_index), False)

    def cached_pages(self, file_id: str) -> Dict[int, int]:
        """page_index -> frame map for one file."""
        return {page: frame for (fid, page), frame in self._entries.items() if fid == file_id}
