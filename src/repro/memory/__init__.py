"""DRAM and OS memory-system simulation.

This package models everything between the weight file and the DRAM cells:
physical address geometry, the DRAM array with vulnerable cells, the OS page
cache, the per-CPU page-frame cache (FILO) the online attack exploits, an
mmap/munmap model implementing the bait-page placement of Listing 1, and the
SPOILER / row-buffer-conflict timing side channels of Appendix B/C.
"""

from repro.memory.geometry import DRAMAddress, DRAMGeometry
from repro.memory.dram import DRAMArray, VulnerableCell
from repro.memory.frame_cache import PageFrameCache
from repro.memory.page_cache import PageCache
from repro.memory.mmap import MappedFile, OSMemoryModel
from repro.memory.sidechannel import RowConflictChannel, SpoilerChannel

__all__ = [
    "DRAMGeometry",
    "DRAMAddress",
    "DRAMArray",
    "VulnerableCell",
    "PageFrameCache",
    "PageCache",
    "OSMemoryModel",
    "MappedFile",
    "SpoilerChannel",
    "RowConflictChannel",
]
