"""Huge-page fragmentation analysis (Section VIII).

The paper argues huge pages do not defeat the attack: even a 2 MB huge page
is fragmented by the memory controller into fixed-size row chunks spread
across banks.  With 64 banks, a 2 MB page becomes 64 chunks of 4 DRAM rows;
with more DIMMs/ranks the chunks shrink toward a single row, where ordinary
double-/n-sided hammering applies unchanged.  An attacker can still profile
the huge page at 4 KB granularity (512 flips in 2 MB stay practical).
"""

from __future__ import annotations

import dataclasses

from repro.memory.geometry import DRAMGeometry, PAGE_FRAME_SIZE

HUGE_PAGE_BYTES = 2 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class HugePageFragmentation:
    """How one huge page scatters over the DRAM array."""

    num_chunks: int
    rows_per_chunk: int
    chunk_bytes: int
    banks_touched: int

    @property
    def single_row_chunks(self) -> bool:
        """True when chunks shrink to one row (regular hammering applies)."""
        return self.rows_per_chunk <= 1


def fragment_huge_page(
    geometry: DRAMGeometry, huge_page_bytes: int = HUGE_PAGE_BYTES
) -> HugePageFragmentation:
    """Fragment a huge page across the banks of ``geometry``.

    Consecutive row-sized chunks rotate across banks (the controller's
    interleaving), so a huge page of B banks' worth of rows yields B chunks
    of ``huge_page / (B * row_size)`` rows each.
    """
    if huge_page_bytes % geometry.row_size_bytes != 0:
        raise ValueError(
            f"huge page ({huge_page_bytes}) must be a multiple of the row size "
            f"({geometry.row_size_bytes})"
        )
    total_rows = huge_page_bytes // geometry.row_size_bytes
    banks_touched = min(geometry.num_banks, total_rows)
    rows_per_chunk = max(1, total_rows // geometry.num_banks)
    return HugePageFragmentation(
        num_chunks=banks_touched,
        rows_per_chunk=rows_per_chunk,
        chunk_bytes=rows_per_chunk * geometry.row_size_bytes,
        banks_touched=banks_touched,
    )


def profilable_4k_pages(huge_page_bytes: int = HUGE_PAGE_BYTES) -> int:
    """4 KB-granularity pages the attacker can still profile in a huge page."""
    return huge_page_bytes // PAGE_FRAME_SIZE


def expected_flips_in_huge_page(
    flips_per_4k_page: float, huge_page_bytes: int = HUGE_PAGE_BYTES
) -> float:
    """Expected usable flips inside one huge page (paper: ~512 bits in 2 MB
    at the reference density -- 'still practical')."""
    return flips_per_4k_page * profilable_4k_pages(huge_page_bytes)
