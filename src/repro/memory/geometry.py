"""DRAM geometry and physical-address mapping.

Physical memory is divided into 4 KB page frames; the DRAM array is divided
into banks of rows (8 KB rows by default, i.e. two page frames per row, as
discussed in the paper's Section VIII).  The memory controller interleaves
consecutive row-sized chunks across banks with an XOR-folded bank hash,
mirroring how real controllers spread adjacent physical addresses.
"""

from __future__ import annotations

import dataclasses

from repro.errors import MemoryModelError

PAGE_FRAME_SIZE = 4096


@dataclasses.dataclass(frozen=True)
class DRAMAddress:
    """Location of a byte inside the DRAM array."""

    bank: int
    row: int
    column: int  # byte offset within the row


@dataclasses.dataclass(frozen=True)
class DRAMGeometry:
    """Shape of a simulated DRAM device.

    Attributes
    ----------
    num_banks:
        Number of independent banks (row buffers).
    rows_per_bank:
        Rows in each bank.
    row_size_bytes:
        Bytes per row; 8192 by default (two 4 KB page frames per row).
    """

    num_banks: int = 16
    rows_per_bank: int = 4096
    row_size_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.row_size_bytes % PAGE_FRAME_SIZE != 0:
            raise MemoryModelError(
                f"row size {self.row_size_bytes} must be a multiple of {PAGE_FRAME_SIZE}"
            )
        for field in ("num_banks", "rows_per_bank", "row_size_bytes"):
            if getattr(self, field) <= 0:
                raise MemoryModelError(f"{field} must be positive")

    @property
    def pages_per_row(self) -> int:
        return self.row_size_bytes // PAGE_FRAME_SIZE

    @property
    def total_bytes(self) -> int:
        return self.num_banks * self.rows_per_bank * self.row_size_bytes

    @property
    def total_frames(self) -> int:
        return self.total_bytes // PAGE_FRAME_SIZE

    # ------------------------------------------------------------------
    # Physical address <-> DRAM coordinates
    # ------------------------------------------------------------------
    def address_of(self, phys_addr: int) -> DRAMAddress:
        """Map a physical byte address to (bank, row, column).

        Consecutive row-sized chunks rotate across banks; the bank index is
        XOR-folded with low row bits, as real controllers do to spread row
        conflicts (this is what the row-conflict side channel reverses).
        """
        if not 0 <= phys_addr < self.total_bytes:
            raise MemoryModelError(
                f"physical address {phys_addr:#x} outside device ({self.total_bytes:#x} bytes)"
            )
        column = phys_addr % self.row_size_bytes
        chunk = phys_addr // self.row_size_bytes
        bank = (chunk ^ (chunk // self.num_banks)) % self.num_banks
        row = chunk // self.num_banks
        return DRAMAddress(bank=bank, row=row, column=column)

    def frame_address(self, frame: int) -> DRAMAddress:
        """DRAM coordinates of the first byte of a page frame."""
        return self.address_of(frame * PAGE_FRAME_SIZE)

    def frames_in_row(self, bank: int, row: int) -> list:
        """All page-frame numbers whose bytes live in (bank, row)."""
        if not 0 <= row < self.rows_per_bank:
            raise MemoryModelError(f"row {row} out of range [0, {self.rows_per_bank})")
        frames = []
        # All chunks with this row index lie in one contiguous chunk window.
        for chunk in range(row * self.num_banks, (row + 1) * self.num_banks):
            if (chunk ^ (chunk // self.num_banks)) % self.num_banks == bank:
                base_frame = chunk * self.pages_per_row
                frames.extend(range(base_frame, base_frame + self.pages_per_row))
        return frames

    def row_of_frame(self, frame: int) -> DRAMAddress:
        """Alias for :meth:`frame_address` (row identity of a frame)."""
        return self.frame_address(frame)
