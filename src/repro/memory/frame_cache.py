"""Per-CPU page-frame cache model (Linux first-in-last-out reallocation).

The Linux kernel keeps recently freed page frames in a per-CPU cache and
hands them back to the next allocation in FILO order.  The online attack
(Section IV-B1) exploits this: by unmapping frames in a chosen order, the
attacker fully controls which physical frames back the victim's weight-file
pages when the file is mapped next.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro import telemetry
from repro.errors import MemoryModelError


class PageFrameCache:
    """FILO stack of free physical page frames."""

    def __init__(self, initial_free: Optional[Iterable[int]] = None) -> None:
        self._stack: List[int] = list(initial_free) if initial_free is not None else []
        self._members = set(self._stack)
        if len(self._members) != len(self._stack):
            raise MemoryModelError("initial free list contains duplicate frames")

    def __len__(self) -> int:
        return len(self._stack)

    def release(self, frame: int) -> None:
        """Push a freed frame (munmap)."""
        if frame in self._members:
            raise MemoryModelError(f"frame {frame} released twice")
        self._stack.append(frame)
        self._members.add(frame)
        if telemetry.events_enabled():
            telemetry.event("frame_cache.release", frame=frame, depth=len(self._stack))

    def allocate(self) -> int:
        """Pop the most recently freed frame (mmap fault)."""
        if not self._stack:
            raise MemoryModelError("page frame cache exhausted")
        frame = self._stack.pop()
        self._members.remove(frame)
        if telemetry.events_enabled():
            telemetry.event("frame_cache.allocate", frame=frame, depth=len(self._stack))
        return frame

    def peek_allocation_order(self) -> List[int]:
        """Frames in the order future allocations will receive them."""
        return list(reversed(self._stack))

    def contains(self, frame: int) -> bool:
        return frame in self._members
