"""The OS memory-management model: mmap, munmap, page cache and bait pages.

This reproduces the online attack's page-placement mechanics (Section IV-B):

1. the attacker maps an anonymous buffer covering ``baitPages + flippyPages``
   physical frames,
2. unmaps the flippy frame(s) and then the bait pages one by one (Listing 1),
   filling the per-CPU frame cache in a chosen order,
3. the victim's weight file is mapped next; the kernel pops frames FILO, so
   the *first* file pages land on the *last* released frames (Figure 4),
   placing each target page exactly on its matching flippy frame.

File pages stay in the page cache after munmap/close; Rowhammer flips the
cached copies directly in DRAM without setting the dirty bit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.errors import MemoryModelError
from repro.memory.dram import DRAMArray
from repro.memory.frame_cache import PageFrameCache
from repro.memory.geometry import PAGE_FRAME_SIZE
from repro.memory.page_cache import PageCache
from repro.utils.rng import SeedLike, new_rng


@dataclasses.dataclass
class MappedFile:
    """A virtual mapping: virtual page index -> physical frame."""

    file_id: Optional[str]
    frames: Dict[int, int]

    @property
    def num_pages(self) -> int:
        return len(self.frames)

    def frame_of(self, page_index: int) -> int:
        try:
            return self.frames[page_index]
        except KeyError:
            raise MemoryModelError(f"page {page_index} is not mapped") from None


class OSMemoryModel:
    """Simulated OS view over one DRAM device.

    Frames are handed out from a free pool in shuffled order (fresh boot),
    then recycled through the FILO :class:`PageFrameCache` exactly as the
    Linux per-CPU cache does.
    """

    def __init__(self, dram: DRAMArray, rng: SeedLike = 0) -> None:
        self.dram = dram
        self.page_cache = PageCache()
        self.frame_cache = PageFrameCache()
        self._files: Dict[str, np.ndarray] = {}
        free = np.arange(dram.geometry.total_frames)
        new_rng(rng).shuffle(free)
        self._free_pool: List[int] = free.tolist()
        self._mapped_frames: set = set()

    # ------------------------------------------------------------------
    # Simulated disk
    # ------------------------------------------------------------------
    def register_file(self, file_id: str, content: bytes) -> None:
        """Place a file on the simulated secondary storage."""
        if file_id in self._files:
            raise MemoryModelError(f"file {file_id!r} already registered")
        self._files[file_id] = np.frombuffer(content, dtype=np.uint8).copy()

    def file_num_pages(self, file_id: str) -> int:
        content = self._file(file_id)
        return (content.size + PAGE_FRAME_SIZE - 1) // PAGE_FRAME_SIZE

    def _file(self, file_id: str) -> np.ndarray:
        try:
            return self._files[file_id]
        except KeyError:
            raise MemoryModelError(f"file {file_id!r} is not registered") from None

    def _file_page(self, file_id: str, page_index: int) -> np.ndarray:
        content = self._file(file_id)
        start = page_index * PAGE_FRAME_SIZE
        page = np.zeros(PAGE_FRAME_SIZE, dtype=np.uint8)
        chunk = content[start : start + PAGE_FRAME_SIZE]
        page[: chunk.size] = chunk
        return page

    # ------------------------------------------------------------------
    # Frame allocation
    # ------------------------------------------------------------------
    def _allocate_frame(self) -> int:
        # The per-CPU cache is consulted before the buddy allocator.
        if len(self.frame_cache):
            frame = self.frame_cache.allocate()
        elif self._free_pool:
            frame = self._free_pool.pop()
        else:
            raise MemoryModelError("out of physical memory")
        self._mapped_frames.add(frame)
        return frame

    # ------------------------------------------------------------------
    # mmap / munmap
    # ------------------------------------------------------------------
    def mmap_anonymous(self, num_pages: int) -> MappedFile:
        """Map zero-filled anonymous memory (the attacker's buffer)."""
        if num_pages <= 0:
            raise MemoryModelError(f"num_pages must be positive, got {num_pages}")
        frames: Dict[int, int] = {}
        zero = np.zeros(PAGE_FRAME_SIZE, dtype=np.uint8)
        for page in range(num_pages):
            frame = self._allocate_frame()
            self.dram.write_frame(frame, zero)
            frames[page] = frame
        return MappedFile(file_id=None, frames=frames)

    def mmap_file(self, file_id: str) -> MappedFile:
        """Map a file; page-cache hits reuse their existing frames."""
        num_pages = self.file_num_pages(file_id)
        frames: Dict[int, int] = {}
        for page in range(num_pages):
            cached = self.page_cache.lookup(file_id, page)
            if cached is not None:
                frames[page] = cached
                continue
            frame = self._allocate_frame()
            self.dram.write_frame(frame, self._file_page(file_id, page))
            self.page_cache.insert(file_id, page, frame)
            frames[page] = frame
        return MappedFile(file_id=file_id, frames=frames)

    def munmap_page(self, mapping: MappedFile, page_index: int) -> None:
        """Unmap a single page of a mapping (Listing 1 operates page-wise).

        Anonymous frames return to the FILO frame cache immediately.
        File-backed frames stay pinned by the page cache (the cached copy
        survives the unmap -- the property the whole attack rests on).
        """
        frame = mapping.frame_of(page_index)
        del mapping.frames[page_index]
        if mapping.file_id is None:
            self._mapped_frames.discard(frame)
            self.frame_cache.release(frame)
        # else: frame ownership moves fully to the page cache.

    def munmap(self, mapping: MappedFile) -> None:
        """Unmap every page of a mapping (ascending page order)."""
        for page in sorted(mapping.frames):
            self.munmap_page(mapping, page)

    def drop_file_cache(self, file_id: str) -> None:
        """Evict a file from the page cache, releasing its frames."""
        for page, frame in sorted(self.page_cache.cached_pages(file_id).items()):
            self.page_cache.evict(file_id, page)
            self._mapped_frames.discard(frame)
            self.frame_cache.release(frame)

    # ------------------------------------------------------------------
    # Access through a mapping
    # ------------------------------------------------------------------
    def read_page(self, mapping: MappedFile, page_index: int) -> np.ndarray:
        """Read one mapped page straight from DRAM (sees Rowhammer flips)."""
        return self.dram.read_frame(mapping.frame_of(page_index))

    def read_mapping(self, mapping: MappedFile) -> bytes:
        """Read the whole mapping in virtual-page order."""
        parts = [self.read_page(mapping, page) for page in sorted(mapping.frames)]
        return b"".join(p.tobytes() for p in parts)

    def write_page(self, mapping: MappedFile, page_index: int, payload: np.ndarray) -> None:
        """CPU-side write through a mapping (sets the dirty bit for files)."""
        frame = mapping.frame_of(page_index)
        self.dram.write_frame(frame, payload)
        if mapping.file_id is not None:
            self.page_cache.mark_dirty(mapping.file_id, page_index)
