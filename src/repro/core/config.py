"""Configuration dataclasses for the end-to-end pipeline."""

from __future__ import annotations

import dataclasses

from repro.errors import AttackError


@dataclasses.dataclass
class MemoryConfig:
    """Shape of the simulated memory system for the online phase.

    Defaults give a 256 MB DRAM device with a 16 MB attacker buffer --
    scaled from the paper's 128 MB profiling buffers to keep simulation
    time low while leaving headroom for the weight file and bait pages.
    """

    device: str = "K1"  # Table I tag
    num_banks: int = 16
    rows_per_bank: int = 2048
    row_size_bytes: int = 8192
    attacker_buffer_pages: int = 4096  # 16 MB
    n_sides_profile: int = 7
    n_sides_online: int = 7
    seed: int = 0

    @property
    def total_frames(self) -> int:
        return self.num_banks * self.rows_per_bank * self.row_size_bytes // 4096


@dataclasses.dataclass
class PipelineConfig:
    """Everything the end-to-end pipeline needs besides the model and data."""

    memory: MemoryConfig = dataclasses.field(default_factory=MemoryConfig)
    weight_file_id: str = "deployed_model.bin"

    def validate_for_file_pages(self, file_pages: int) -> None:
        usable = self.memory.attacker_buffer_pages
        if file_pages > usable:
            raise AttackError(
                f"weight file needs {file_pages} pages but the attacker buffer "
                f"only holds {usable}; increase attacker_buffer_pages"
            )
