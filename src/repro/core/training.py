"""Victim-model training and a cached "model zoo" for experiments.

The paper downloads pretrained CIFAR-10/ImageNet checkpoints; offline we
train victims once on the synthetic tasks and cache the resulting state
dicts on disk so tests and benchmarks do not retrain.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.autodiff import cross_entropy, no_grad
from repro.autodiff.tensor import Tensor
from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.synthetic import make_cifar10_like, make_imagenet_like
from repro.models import build_model
from repro.nn.module import Module
from repro.optim import SGD, CosineSchedule
from repro.quant.qmodel import QuantizedModel

def default_cache_dir() -> Path:
    """Model-zoo cache location, resolved at call time.

    Reading ``REPRO_CACHE_DIR`` per call (not at import) lets tests and
    parallel sweep workers redirect the cache with an environment variable
    even after :mod:`repro` has been imported.
    """
    return Path(os.environ.get("REPRO_CACHE_DIR", str(Path.home() / ".cache" / "repro-models")))


@dataclasses.dataclass
class TrainingConfig:
    """Victim training hyperparameters."""

    epochs: int = 12
    batch_size: int = 64
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    seed: int = 0


def train_model(
    model: Module,
    train_data: ArrayDataset,
    config: TrainingConfig = TrainingConfig(),
    test_data: Optional[ArrayDataset] = None,
) -> List[float]:
    """Train a model in place; returns per-epoch mean losses."""
    optimizer = SGD(
        model.parameters(),
        lr=config.learning_rate,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    schedule = CosineSchedule(optimizer, total_epochs=config.epochs)
    loader = DataLoader(train_data, batch_size=config.batch_size, shuffle=True, rng=config.seed)
    history: List[float] = []
    for epoch in range(config.epochs):
        with telemetry.span("train.epoch", epoch=epoch):
            model.train()
            total = 0.0
            for images, labels in loader:
                optimizer.zero_grad()
                loss = cross_entropy(model(Tensor(images)), labels)
                loss.backward()
                optimizer.step()
                total += loss.item()
            schedule.step()
            history.append(total / max(1, len(loader)))
        if telemetry.enabled():
            telemetry.counter_add("train.epochs")
            telemetry.gauge_set("train.loss", history[-1])
            telemetry.histogram_observe("train.epoch_loss", history[-1])
            if test_data is not None:
                telemetry.gauge_set(
                    "train.test_accuracy", evaluate_accuracy(model, test_data)
                )
    model.eval()
    return history


def evaluate_accuracy(model: Module, dataset: ArrayDataset, batch_size: int = 256) -> float:
    """Clean accuracy of a model on a dataset."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            predictions = model(Tensor(images)).numpy().argmax(axis=1)
            correct += int((predictions == labels).sum())
    return correct / len(dataset) if len(dataset) else 0.0


def _dataset_splits(dataset: str, seed: int) -> Tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
    if dataset == "cifar10":
        return make_cifar10_like(seed=seed)
    if dataset == "imagenet":
        return make_imagenet_like(seed=seed)
    raise ValueError(f"unknown dataset {dataset!r}; expected 'cifar10' or 'imagenet'")


def pretrained_quantized_model(
    model_name: str,
    dataset: str = "cifar10",
    width: float = 0.25,
    seed: int = 0,
    epochs: int = 12,
    cache_dir: Optional[Path] = None,
    force_retrain: bool = False,
) -> Tuple[QuantizedModel, ArrayDataset, ArrayDataset, ArrayDataset]:
    """Return a trained, quantized victim and its (train, test, attacker) data.

    Models are cached as ``.npz`` state dicts keyed by every hyperparameter
    that affects the weights, so repeated benchmark runs skip training.
    """
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    train_data, test_data, attacker_data = _dataset_splits(dataset, seed)
    num_classes = int(train_data.labels.max()) + 1

    model = build_model(model_name, num_classes=num_classes, width=width, rng=seed)
    # v2: bump when the synthetic task definition changes, invalidating
    # checkpoints trained on older data.
    cache_key = f"{model_name}-{dataset}-v2-w{width}-s{seed}-e{epochs}.npz"
    cache_path = cache_dir / cache_key
    if cache_path.exists() and not force_retrain:
        with np.load(cache_path) as payload:
            model.load_state_dict({name: payload[name] for name in payload.files})
        model.eval()
    else:
        train_model(model, train_data, TrainingConfig(epochs=epochs, seed=seed), test_data)
        # Write-to-temp + atomic rename: concurrent sweep workers training
        # the same victim must never observe a torn checkpoint.  Identical
        # seeds produce identical bytes, so last-writer-wins is harmless.
        tmp_path = cache_path.with_name(f"{cache_path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp_path, "wb") as handle:
                np.savez(handle, **model.state_dict())
            os.replace(tmp_path, cache_path)
        finally:
            if tmp_path.exists():
                tmp_path.unlink()
    return QuantizedModel(model), train_data, test_data, attacker_data
