"""End-to-end orchestration: training, the attack pipeline and experiments."""

from repro.core.bench import run_bench
from repro.core.config import MemoryConfig, PipelineConfig
from repro.core.training import TrainingConfig, train_model, pretrained_quantized_model
from repro.core.pipeline import BackdoorPipeline, PipelineResult

__all__ = [
    "MemoryConfig",
    "PipelineConfig",
    "TrainingConfig",
    "train_model",
    "pretrained_quantized_model",
    "run_bench",
    "BackdoorPipeline",
    "PipelineResult",
]
