"""End-to-end backdoor pipeline: offline optimization + online Rowhammer.

Wires together every substrate exactly as the paper's attack flow does:

1. Build the simulated DRAM device from a Table I profile and boot the OS
   memory model.
2. The attacker maps a large anonymous buffer and profiles it for flips
   with the online hammer pattern (offline phase, memory part).
3. An offline attack (CFT+BR or a baseline) computes the backdoored weight
   file and trigger (offline phase, optimization part).
4. The online injector places the weight file onto the flippy frames via
   the FILO frame cache and hammers the planned rows.
5. The corrupted file is loaded back into the model for TA/ASR evaluation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


from repro import telemetry
from repro.analysis.metrics import AttackEvaluation, evaluate_attack
from repro.attacks.base import OfflineAttackResult
from repro.attacks.online import OnlineInjectionResult, OnlineInjector
from repro.core.config import PipelineConfig
from repro.data.dataset import ArrayDataset
from repro.log import get_logger
from repro.memory.dram import DRAMArray
from repro.memory.geometry import DRAMGeometry
from repro.memory.mmap import MappedFile, OSMemoryModel
from repro.quant.qmodel import QuantizedModel
from repro.quant.weightfile import WeightFile
from repro.rowhammer.device_profiles import get_profile
from repro.rowhammer.hammer import HammerEngine
from repro.rowhammer.profiler import FlipProfile, MemoryProfiler

log = get_logger(__name__)


@dataclasses.dataclass
class PipelineResult:
    """Everything one end-to-end run produces (one Table II row)."""

    method: str
    offline: OfflineAttackResult
    online: OnlineInjectionResult
    offline_eval: AttackEvaluation
    online_eval: AttackEvaluation
    online_n_flip: int

    def as_row(self) -> Dict[str, float]:
        """Flatten to the paper's Table II columns."""
        return {
            "offline_n_flip": self.offline.n_flip,
            "offline_ta": 100.0 * self.offline_eval.test_accuracy,
            "offline_asr": 100.0 * self.offline_eval.attack_success_rate,
            "online_n_flip": self.online_n_flip,
            "online_ta": 100.0 * self.online_eval.test_accuracy,
            "online_asr": 100.0 * self.online_eval.attack_success_rate,
            "r_match": self.online.r_match,
        }


class BackdoorPipeline:
    """Orchestrates the full offline + online attack against one victim."""

    def __init__(self, config: PipelineConfig = PipelineConfig()) -> None:
        self.config = config
        memory = config.memory
        self.profile_spec = get_profile(memory.device)
        geometry = DRAMGeometry(
            num_banks=memory.num_banks,
            rows_per_bank=memory.rows_per_bank,
            row_size_bytes=memory.row_size_bytes,
        )
        self.dram = DRAMArray(
            geometry, flips_per_page_mean=self.profile_spec.flips_per_page, seed=memory.seed
        )
        self.os = OSMemoryModel(self.dram, rng=memory.seed + 1)
        self.engine = HammerEngine(self.dram, self.profile_spec)
        self.attacker_buffer: Optional[MappedFile] = None
        self.flip_profile: Optional[FlipProfile] = None
        self._file_counter = 0

    # ------------------------------------------------------------------
    def profile_memory(self) -> FlipProfile:
        """Map the attacker buffer and profile it for flips (cached)."""
        if self.flip_profile is None:
            with telemetry.span("pipeline.profile_memory"):
                self.attacker_buffer = self.os.mmap_anonymous(
                    self.config.memory.attacker_buffer_pages
                )
                profiler = MemoryProfiler(self.os, self.engine)
                self.flip_profile = profiler.profile_mapping(
                    self.attacker_buffer, n_sides=self.config.memory.n_sides_profile
                )
            log.info(
                "profiled %d frames with %d-sided pattern: %d usable flips",
                self.flip_profile.num_frames,
                self.config.memory.n_sides_profile,
                self.flip_profile.num_flips,
            )
        return self.flip_profile

    # ------------------------------------------------------------------
    def run(
        self,
        attack,
        qmodel: QuantizedModel,
        attacker_data: ArrayDataset,
        test_data: ArrayDataset,
        target_class: int,
    ) -> PipelineResult:
        """Run offline + online and evaluate both phases on ``test_data``."""
        file_pages = WeightFile(qmodel.flat_int8()).num_pages
        self.config.validate_for_file_pages(file_pages)
        profile = self.profile_memory()

        with telemetry.span("pipeline.offline_attack", method=getattr(attack, "name", "?")):
            if telemetry.events_enabled():
                telemetry.event(
                    "attack.offline_start",
                    method=getattr(attack, "name", "?"),
                    n_flip_budget=getattr(
                        getattr(attack, "config", None), "n_flip_budget", None
                    ),
                    seed=getattr(getattr(attack, "config", None), "seed", None),
                )
            offline = attack.run(qmodel, attacker_data)
            if telemetry.events_enabled():
                telemetry.event(
                    "attack.offline_complete",
                    method=offline.method,
                    n_flip=offline.n_flip,
                )
        # One engine serves both evaluation phases: layers the online flips
        # leave untouched replay the offline pass's cached activations.
        from repro.engine import EvalEngine, engine_enabled

        eval_engine = EvalEngine(qmodel.module) if engine_enabled() else None
        with telemetry.span("pipeline.evaluate", phase="offline"):
            offline_eval = evaluate_attack(
                qmodel.module, test_data, offline.trigger, target_class,
                engine=eval_engine,
            )
            if telemetry.events_enabled():
                telemetry.event(
                    "pipeline.evaluate",
                    phase="offline",
                    ta=offline_eval.test_accuracy,
                    asr=offline_eval.attack_success_rate,
                )

        injector = OnlineInjector(
            self.os,
            self.engine,
            profile,
            self.attacker_buffer,
            n_sides=self.config.memory.n_sides_online,
        )
        self._file_counter += 1
        with telemetry.span("pipeline.online_inject"):
            online = injector.inject(
                offline, file_id=f"{self.config.weight_file_id}.{self._file_counter}"
            )

        log.info(
            "%s offline: N_flip=%d; online: %d/%d achieved (r_match %.2f%%)",
            offline.method,
            offline.n_flip,
            online.n_flip_achieved,
            online.n_flip_required,
            online.r_match,
        )
        qmodel.load_flat_int8(online.corrupted_weights)
        with telemetry.span("pipeline.evaluate", phase="online"):
            online_eval = evaluate_attack(
                qmodel.module, test_data, offline.trigger, target_class,
                engine=eval_engine,
            )
            if telemetry.events_enabled():
                telemetry.event(
                    "pipeline.evaluate",
                    phase="online",
                    ta=online_eval.test_accuracy,
                    asr=online_eval.attack_success_rate,
                )
        if telemetry.enabled():
            telemetry.counter_add("pipeline.runs")
            telemetry.counter_add("online.bits_flipped", online.n_flip_achieved)
            telemetry.counter_add("online.bits_required", online.n_flip_required)
            telemetry.gauge_set("online.r_match", online.r_match)
            telemetry.gauge_set("attack.offline_asr", offline_eval.attack_success_rate)
            telemetry.gauge_set("attack.online_asr", online_eval.attack_success_rate)
            telemetry.gauge_set("attack.offline_ta", offline_eval.test_accuracy)
            telemetry.gauge_set("attack.online_ta", online_eval.test_accuracy)
        return PipelineResult(
            method=offline.method,
            offline=offline,
            online=online,
            offline_eval=offline_eval,
            online_eval=online_eval,
            online_n_flip=online.n_flip_achieved,
        )
