"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data structures (lists of dict rows) so the
benchmark harness can both print paper-style tables and assert the
qualitative "shape" of the results (who wins, by roughly what factor).
Scale is controlled by :class:`ExperimentScale` so the same code runs as a
quick benchmark or a full reproduction.

Every Table II / Table III grid is embarrassingly parallel -- one
:func:`run_single_experiment` per (method, model, device, seed) cell -- so
the drivers here delegate fan-out to :mod:`repro.parallel`: the same cell
function runs inline for ``workers=1`` and in a process pool otherwise,
with byte-identical rows either way.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import (
    AttackConfig,
    BadNetAttack,
    CFTAttack,
    LastLayerFTAttack,
    TBTAttack,
)
from repro.core.config import MemoryConfig, PipelineConfig
from repro.core.pipeline import BackdoorPipeline
from repro.core.training import pretrained_quantized_model
from repro.errors import AttackError, SweepError


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Resource knobs for the experiment drivers."""

    width: float = 0.25
    epochs: int = 12
    attack_iterations: int = 60
    n_flip_budget: int = 4
    attacker_buffer_pages: int = 4096
    test_subset: Optional[int] = 400

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Scale selected by the ``REPRO_BENCH_SCALE`` environment variable.

        - ``micro``: sweep-smoke scale (seconds per task; CI sweep job).
        - ``tiny``: smoke-test scale (CI-friendly, minutes).
        - ``small`` (default): laptop scale; qualitative shapes hold.
        - ``full``: the largest CPU-feasible configuration.
        """
        name = os.environ.get("REPRO_BENCH_SCALE", "small")
        try:
            return SCALE_PRESETS[name]
        except KeyError:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(SCALE_PRESETS)}, got {name!r}"
            ) from None


SCALE_PRESETS: Dict[str, ExperimentScale] = {
    # width 1.0 so even the ~14k-parameter tinycnn spans several 4 KB pages
    # (constraint C2 needs at least n_flip_budget pages to pick from).
    "micro": ExperimentScale(width=1.0, epochs=2, attack_iterations=8, n_flip_budget=2,
                             attacker_buffer_pages=512, test_subset=48),
    "tiny": ExperimentScale(width=0.25, epochs=8, attack_iterations=60, n_flip_budget=4,
                            attacker_buffer_pages=2048, test_subset=300),
    "small": ExperimentScale(),
    "full": ExperimentScale(width=0.5, epochs=12, attack_iterations=240, n_flip_budget=12,
                            attacker_buffer_pages=8192, test_subset=None),
}


def _method_registry(config: AttackConfig) -> Dict[str, Callable[[], object]]:
    return {
        "BadNet": lambda: BadNetAttack(config),
        "FT": lambda: LastLayerFTAttack(config),
        "TBT": lambda: TBTAttack(config),
        "CFT": lambda: CFTAttack(config, bit_reduction=False),
        "CFT+BR": lambda: CFTAttack(config, bit_reduction=True),
    }


KNOWN_METHODS = ("BadNet", "FT", "TBT", "CFT", "CFT+BR")


def run_single_experiment(
    method: str,
    model_name: str,
    dataset: str = "cifar10",
    scale: ExperimentScale = ExperimentScale(),
    target_class: int = 2,
    device: str = "K1",
    seed: int = 0,
) -> Dict[str, object]:
    """One grid cell: one method against one victim on one memory system.

    This is the unit the parallel sweep runner distributes; it is a pure
    function of its arguments (given a warm or absent model cache), which
    is what makes sweep output independent of worker count.
    """
    if method not in KNOWN_METHODS:
        raise AttackError(
            f"unknown attack method {method!r}; available: {sorted(KNOWN_METHODS)}"
        )
    qmodel, _, test_data, attacker_data = pretrained_quantized_model(
        model_name, dataset=dataset, width=scale.width, epochs=scale.epochs, seed=seed
    )
    if scale.test_subset is not None and scale.test_subset < len(test_data):
        test_data = test_data.subset(np.arange(scale.test_subset))
    config = AttackConfig(
        target_class=target_class,
        iterations=scale.attack_iterations,
        n_flip_budget=scale.n_flip_budget,
        epsilon=0.01,
        seed=seed,
    )
    attack = _method_registry(config)[method]()
    pipeline = BackdoorPipeline(
        PipelineConfig(
            memory=MemoryConfig(
                device=device,
                attacker_buffer_pages=scale.attacker_buffer_pages,
                seed=seed,
            )
        )
    )
    result = pipeline.run(attack, qmodel, attacker_data, test_data, target_class)
    return {
        "method": method,
        "model": model_name,
        "device": device,
        "seed": seed,
        **result.as_row(),
    }


def run_method_comparison(
    model_name: str,
    dataset: str = "cifar10",
    methods: Sequence[str] = ("BadNet", "FT", "TBT", "CFT", "CFT+BR"),
    scale: ExperimentScale = ExperimentScale(),
    target_class: int = 2,
    device: str = "K1",
    seed: int = 0,
    workers: int = 1,
    journal: Optional[str] = None,
    resume: bool = False,
) -> List[Dict[str, float]]:
    """One Table II block: every method on one victim model.

    Returns one row dict per method with the offline/online N_flip, TA, ASR
    and r_match columns.  Each method runs against a fresh copy of the same
    deployed victim and a fresh memory system; with ``workers > 1`` the
    methods fan out over a process pool (rows are identical either way).
    A permanently failed cell raises :class:`~repro.errors.SweepError`.
    """
    from repro.parallel import SweepGrid, run_sweep

    grid = SweepGrid(
        methods=tuple(methods),
        models=(model_name,),
        devices=(device,),
        seeds=(seed,),
        dataset=dataset,
        target_class=target_class,
        scale=dataclasses.asdict(scale),
    )
    result = run_sweep(
        grid, workers=workers, journal_path=journal, resume=resume
    )
    if result.failures:
        first = result.failures[0]
        error = first.error or {}
        raise SweepError(
            f"{len(result.failures)} task(s) failed; first: {first.task.task_id} -> "
            f"{error.get('type')}: {error.get('message')}\n{error.get('traceback', '')}"
        )
    return result.rows


def format_table2(rows: List[Dict[str, float]]) -> str:
    """Render method-comparison rows in the paper's Table II layout."""
    header = (
        f"{'Method':<8} | {'Nflip':>7} {'TA%':>6} {'ASR%':>6} | "
        f"{'Nflip':>6} {'TA%':>6} {'ASR%':>6} {'rmatch%':>8}"
    )
    lines = [
        f"{'':8} | {'--- Offline ---':^21} | {'--- Online ---':^29}",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['method']:<8} | {row['offline_n_flip']:>7.0f} {row['offline_ta']:>6.2f} "
            f"{row['offline_asr']:>6.2f} | {row['online_n_flip']:>6.0f} {row['online_ta']:>6.2f} "
            f"{row['online_asr']:>6.2f} {row['r_match']:>8.2f}"
        )
    return "\n".join(lines)


def format_sweep(rows: List[Dict[str, object]]) -> str:
    """Render sweep rows: Table II columns plus the grid axes."""
    header = (
        f"{'Model':<10} {'Dev':<4} {'Seed':>10} {'Method':<8} | "
        f"{'Nflip':>6} {'TA%':>6} {'ASR%':>6} | "
        f"{'Nflip':>6} {'TA%':>6} {'ASR%':>6} {'rmatch%':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['model']:<10} {row['device']:<4} {row['seed']:>10} {row['method']:<8} | "
            f"{row['offline_n_flip']:>6.0f} {row['offline_ta']:>6.2f} {row['offline_asr']:>6.2f} | "
            f"{row['online_n_flip']:>6.0f} {row['online_ta']:>6.2f} "
            f"{row['online_asr']:>6.2f} {row['r_match']:>8.2f}"
        )
    return "\n".join(lines)
