"""Experiment drivers: one function per paper table/figure.

Each driver returns plain data structures (lists of dict rows) so the
benchmark harness can both print paper-style tables and assert the
qualitative "shape" of the results (who wins, by roughly what factor).
Scale is controlled by :class:`ExperimentScale` so the same code runs as a
quick benchmark or a full reproduction.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.attacks import (
    AttackConfig,
    BadNetAttack,
    CFTAttack,
    LastLayerFTAttack,
    TBTAttack,
)
from repro.core.config import MemoryConfig, PipelineConfig
from repro.core.pipeline import BackdoorPipeline
from repro.core.training import pretrained_quantized_model


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """Resource knobs for the experiment drivers."""

    width: float = 0.25
    epochs: int = 12
    attack_iterations: int = 60
    n_flip_budget: int = 4
    attacker_buffer_pages: int = 4096
    test_subset: Optional[int] = 400

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        """Scale selected by the ``REPRO_BENCH_SCALE`` environment variable.

        - ``tiny``: smoke-test scale (CI-friendly, minutes).
        - ``small`` (default): laptop scale; qualitative shapes hold.
        - ``full``: the largest CPU-feasible configuration.
        """
        name = os.environ.get("REPRO_BENCH_SCALE", "small")
        presets = {
            "tiny": cls(width=0.25, epochs=8, attack_iterations=60, n_flip_budget=4,
                        attacker_buffer_pages=2048, test_subset=300),
            "small": cls(),
            "full": cls(width=0.5, epochs=12, attack_iterations=240, n_flip_budget=12,
                        attacker_buffer_pages=8192, test_subset=None),
        }
        try:
            return presets[name]
        except KeyError:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(presets)}, got {name!r}"
            ) from None


def _method_registry(config: AttackConfig) -> Dict[str, Callable[[], object]]:
    return {
        "BadNet": lambda: BadNetAttack(config),
        "FT": lambda: LastLayerFTAttack(config),
        "TBT": lambda: TBTAttack(config),
        "CFT": lambda: CFTAttack(config, bit_reduction=False),
        "CFT+BR": lambda: CFTAttack(config, bit_reduction=True),
    }


def run_method_comparison(
    model_name: str,
    dataset: str = "cifar10",
    methods: Sequence[str] = ("BadNet", "FT", "TBT", "CFT", "CFT+BR"),
    scale: ExperimentScale = ExperimentScale(),
    target_class: int = 2,
    device: str = "K1",
    seed: int = 0,
) -> List[Dict[str, float]]:
    """One Table II block: every method on one victim model.

    Returns one row dict per method with the offline/online N_flip, TA, ASR
    and r_match columns.  Each method runs against a fresh copy of the same
    deployed victim and a fresh memory system.
    """
    rows: List[Dict[str, float]] = []
    for method in methods:
        qmodel, _, test_data, attacker_data = pretrained_quantized_model(
            model_name, dataset=dataset, width=scale.width, epochs=scale.epochs, seed=seed
        )
        if scale.test_subset is not None and scale.test_subset < len(test_data):
            test_data = test_data.subset(np.arange(scale.test_subset))
        config = AttackConfig(
            target_class=target_class,
            iterations=scale.attack_iterations,
            n_flip_budget=scale.n_flip_budget,
            epsilon=0.01,
            seed=seed,
        )
        attack = _method_registry(config)[method]()
        pipeline = BackdoorPipeline(
            PipelineConfig(
                memory=MemoryConfig(
                    device=device,
                    attacker_buffer_pages=scale.attacker_buffer_pages,
                    seed=seed,
                )
            )
        )
        result = pipeline.run(attack, qmodel, attacker_data, test_data, target_class)
        row = {"method": method, "model": model_name, **result.as_row()}
        rows.append(row)
    return rows


def format_table2(rows: List[Dict[str, float]]) -> str:
    """Render method-comparison rows in the paper's Table II layout."""
    header = (
        f"{'Method':<8} | {'Nflip':>7} {'TA%':>6} {'ASR%':>6} | "
        f"{'Nflip':>6} {'TA%':>6} {'ASR%':>6} {'rmatch%':>8}"
    )
    lines = [
        f"{'':8} | {'--- Offline ---':^21} | {'--- Online ---':^29}",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row['method']:<8} | {row['offline_n_flip']:>7.0f} {row['offline_ta']:>6.2f} "
            f"{row['offline_asr']:>6.2f} | {row['online_n_flip']:>6.0f} {row['online_ta']:>6.2f} "
            f"{row['online_asr']:>6.2f} {row['r_match']:>8.2f}"
        )
    return "\n".join(lines)
