"""``repro bench``: a telemetry-instrumented end-to-end attack benchmark.

Runs the full pipeline -- victim training, CFT+BR offline optimization,
page-cache massaging and n-sided hammering -- at a deliberately small scale,
with telemetry enabled, and writes the aggregated report as
``BENCH_pipeline.json``.  The committed copy under ``benchmarks/`` is the
CI regression baseline: ``repro bench-check`` (see
:mod:`repro.telemetry.regression`) fails the build when stage wall-times or
flip counters drift beyond tolerance.

Everything is seeded, so the flip counters are deterministic; wall-times
vary with the host, which is why the regression gate takes a tolerance.
"""

from __future__ import annotations

import dataclasses
import platform
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.attacks import AttackConfig, CFTAttack
from repro.core.config import MemoryConfig, PipelineConfig
from repro.core.pipeline import BackdoorPipeline
from repro.core.training import TrainingConfig, train_model
from repro.data.synthetic import SyntheticImageClassification, SyntheticSpec
from repro.nn import Conv2d, GlobalAvgPool2d, Linear, Module
from repro.quant.qmodel import QuantizedModel
from repro.version import __version__


class BenchCNN(Module):
    """The benchmark victim: spans several 4 KB weight-file pages (~12k
    parameters) so page-level constraints and massaging are exercised,
    while training in seconds on CPU."""

    def __init__(self, num_classes: int = 4, rng: int = 0) -> None:
        super().__init__()
        self.conv1 = Conv2d(3, 8, 3, padding=1, rng=rng)
        self.conv2 = Conv2d(8, 16, 3, stride=2, padding=1, rng=rng)
        self.conv3 = Conv2d(16, 24, 3, padding=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.hidden = Linear(24, 256, rng=rng)
        self.fc = Linear(256, num_classes, rng=rng)

    def forward(self, x):
        out = self.conv1(x).relu()
        out = self.conv2(out).relu()
        out = self.conv3(out).relu()
        return self.fc(self.hidden(self.pool(out)).relu())

    def forward_stages(self):
        """Stage decomposition for the evaluation engine (mirrors ``forward``)."""
        return [
            ("conv1", lambda x: self.conv1(x).relu(), (self.conv1,)),
            ("conv2", lambda x: self.conv2(x).relu(), (self.conv2,)),
            ("conv3", lambda x: self.conv3(x).relu(), (self.conv3,)),
            ("pool", self.pool, (self.pool,)),
            ("hidden", lambda x: self.hidden(x).relu(), (self.hidden,)),
            ("fc", self.fc, (self.fc,)),
        ]


def _bench_sweep_durations(
    seed: int, workers_list: Sequence[int] = (1, 2)
) -> Dict[int, float]:
    """Wall-clock one micro sweep per pool size (same grid, warm model cache).

    Records gauges ``sweep.workersN_seconds`` plus ``sweep.speedup`` so the
    committed benchmark baseline makes the fan-out win (or regression)
    visible.  Worker telemetry capture is off: the timing, not the merged
    per-task metrics, is what this section benchmarks.
    """
    from repro.core.experiment import SCALE_PRESETS
    from repro.core.training import pretrained_quantized_model
    from repro.parallel import SweepGrid, run_sweep

    scale = SCALE_PRESETS["micro"]
    grid = SweepGrid(
        methods=("CFT", "CFT+BR"),
        models=("tinycnn",),
        devices=("K1",),
        seeds=(seed,),
        target_class=1,
        scale=dataclasses.asdict(scale),
    )
    with telemetry.span("bench_sweep"):
        with telemetry.span("bench_sweep.warm_cache"):
            # Train-and-cache once so every timed sweep loads the same
            # checkpoint and the 1-vs-N comparison is training-free.
            pretrained_quantized_model(
                "tinycnn", width=scale.width, epochs=scale.epochs, seed=seed
            )
        durations: Dict[int, float] = {}
        for workers in workers_list:
            with telemetry.span("bench_sweep.run", workers=workers):
                start = time.perf_counter()
                # Both captures off: the timing is the benchmark here, and
                # the flight record should describe the main attack run, not
                # the pool-scaling micro sweeps.
                result = run_sweep(
                    grid, workers=workers, capture_telemetry=False, capture_events=False
                )
                durations[workers] = time.perf_counter() - start
            if result.failures:
                raise RuntimeError(
                    f"bench sweep failed with workers={workers}: {result.failures[0].error}"
                )
            telemetry.gauge_set(f"sweep.workers{workers}_seconds", durations[workers])
        baseline_workers = workers_list[0]
        for workers in workers_list[1:]:
            telemetry.gauge_set(
                f"sweep.speedup_x{workers}", durations[baseline_workers] / durations[workers]
            )
    return durations


def _bench_engine_section(seed: int, candidates: int = 24) -> Dict[str, float]:
    """Time the CFT+BR inner-loop evaluation with and without the engine.

    Replays the hot pattern of the progressive solver at the ``micro``
    preset: commit one single-bit flip in the tinycnn head, evaluate clean
    and trigger-stamped logits over the fixed 64-image subset, revert -- the
    head is where the model's parameter mass (and therefore most candidate
    page groups) sits.  Both passes digest every logits array; a mismatch
    means the determinism contract broke and the bench fails hard.

    A third pass scores the identical candidate set through the round-level
    batched scorer (:func:`repro.engine.batch.score_candidates`) -- one
    stacked suffix forward per perturbed stage instead of one scalar forward
    per candidate -- and must reproduce the same digest byte-for-byte.

    Records gauges ``engine.uncached_seconds`` / ``engine.cached_seconds`` /
    ``engine.batched_seconds`` / ``engine.speedup`` /
    ``engine.batched_speedup`` / ``engine.hit_rate`` and spans
    ``bench_engine.uncached`` / ``bench_engine.cached`` /
    ``bench_engine.batched``.
    """
    import hashlib

    from repro.autodiff import no_grad
    from repro.autodiff.tensor import Tensor
    from repro.core.experiment import SCALE_PRESETS
    from repro.core.training import pretrained_quantized_model
    from repro.data.trigger import TriggerPattern
    from repro.engine import EvalEngine
    from repro.quant.bits import flip_bit

    scale = SCALE_PRESETS["micro"]
    with telemetry.span("bench_engine"):
        with telemetry.span("bench_engine.warm_cache"):
            qmodel, _, _, attacker_data = pretrained_quantized_model(
                "tinycnn", width=scale.width, epochs=scale.epochs, seed=seed
            )
        model = qmodel.module
        model.eval()
        eval_images = attacker_data.images[:64]
        trigger = TriggerPattern.square(eval_images.shape[1:], 4)
        stamped = trigger.apply(eval_images)

        head = ["hidden.weight", "fc.weight"]
        flips = [
            (qmodel.offset_of(head[i % len(head)]) + 17 * i, 6)
            for i in range(candidates)
        ]

        def candidate_loop(engine: Optional[EvalEngine]) -> str:
            digest = hashlib.sha256()
            for index, bit in flips:
                qmodel.apply_bit_flip(index, bit)
                for images in (eval_images, stamped):
                    if engine is not None:
                        logits = engine.forward(images)
                    else:
                        with no_grad():
                            logits = model(Tensor(images)).data
                    digest.update(logits.tobytes())
                qmodel.apply_bit_flip(index, bit)  # revert
            return digest.hexdigest()

        candidate_loop(None)  # warm NumPy and the checkpoint before timing
        with telemetry.span("bench_engine.uncached"):
            start = time.perf_counter()
            uncached_digest = candidate_loop(None)
            uncached_seconds = time.perf_counter() - start

        engine = EvalEngine(model)
        with telemetry.span("bench_engine.cached"):
            start = time.perf_counter()
            cached_digest = candidate_loop(engine)
            cached_seconds = time.perf_counter() - start

        if cached_digest != uncached_digest:
            raise RuntimeError(
                "engine determinism contract broken: cached logits differ "
                "from the plain forward"
            )

        # Same candidates as proposals for the batched scorer: the new byte
        # value of each flip, computed against the (restored) baseline file.
        proposals = []
        for index, bit in flips:
            name, local = qmodel.locate(index)
            current = qmodel.quantized(name).reshape(-1)[local]
            proposals.append(
                (index, int(flip_bit(np.array([current], dtype=np.int8), bit)[0]))
            )

        def batched_loop() -> str:
            clean_stack, trig_stack = engine.score_candidates(
                qmodel, proposals, (eval_images, stamped)
            )
            digest = hashlib.sha256()
            for k in range(len(proposals)):
                digest.update(clean_stack[k].tobytes())
                digest.update(trig_stack[k].tobytes())
            return digest.hexdigest()

        batched_loop()  # warm the prefix cache under the batched key pattern
        with telemetry.span("bench_engine.batched"):
            start = time.perf_counter()
            batched_digest = batched_loop()
            batched_seconds = time.perf_counter() - start

        if batched_digest != uncached_digest:
            raise RuntimeError(
                "batched scoring determinism contract broken: stacked-suffix "
                "logits differ from the sequential candidate loop"
            )

        stats = engine.cache.stats
        section = {
            "uncached_seconds": uncached_seconds,
            "cached_seconds": cached_seconds,
            "batched_seconds": batched_seconds,
            "speedup": uncached_seconds / cached_seconds,
            "batched_speedup": cached_seconds / batched_seconds,
            "hit_rate": stats.hit_rate(),
        }
        telemetry.gauge_set("engine.uncached_seconds", uncached_seconds)
        telemetry.gauge_set("engine.cached_seconds", cached_seconds)
        telemetry.gauge_set("engine.batched_seconds", batched_seconds)
        telemetry.gauge_set("engine.speedup", section["speedup"])
        telemetry.gauge_set("engine.batched_speedup", section["batched_speedup"])
        telemetry.gauge_set("engine.hit_rate", section["hit_rate"])
    return section


def _bench_kernel_sections(
    seed: int,
    profiles: Sequence[str] = ("numpy", "threads:4", "fast"),
    reps: int = 30,
) -> Dict[str, Dict[str, float]]:
    """Per-kernel timings for every backend kernel across compute profiles.

    Synthesizes the bench CNN's hot shapes at the ``micro`` preset -- the
    conv2 im2col GEMM (and its backward pair + col2im scatter), the lifted
    3-D dense forward/backward the engine's candidate scoring runs, and a
    batch-norm stats+apply pass -- and times each kernel under each profile.
    Byte-identical profiles (``threads:N``) are verified against the
    reference output byte-for-byte and the bench fails hard on a mismatch;
    ``fast`` is timed but never byte-compared.

    Records spans ``bench_kernels.<kernel>.<profile>`` and gauges
    ``kernel.<kernel>.<profile>_seconds`` (plus ``_speedup`` relative to the
    reference profile; profile names are sanitized, ``threads:4`` ->
    ``threads_4``).  After the threads profile runs, the instance-accumulated
    GEMM wall-clock is exported as the ``backend.gemm.ns_per_call`` gauge --
    bench is the only exporter of that wall-clock metric, keeping sweep-task
    metrics deterministic.
    """
    from repro.backend import current_backend, set_backend

    rng = np.random.default_rng(seed)
    # BenchCNN conv2 at 16x16 input: 8->16 channels, 3x3, stride 2, pad 1.
    cols = rng.standard_normal((64, 64, 72)).astype(np.float32)
    w_mat = rng.standard_normal((16, 72)).astype(np.float32)
    grad_mat = rng.standard_normal((64, 64, 16)).astype(np.float32)
    conv_shape = (16, 8, 3, 3)
    # The engine's lifted candidate scoring: (K, N, in) @ (in, out).
    x3 = rng.standard_normal((16, 64, 24)).astype(np.float32)
    w_t = rng.standard_normal((24, 256)).astype(np.float32)
    bias = rng.standard_normal((256,)).astype(np.float32)
    g3 = rng.standard_normal((16, 64, 256)).astype(np.float32)
    # Batch-norm over conv2's output feature map.
    xbn = rng.standard_normal((64, 16, 8, 8)).astype(np.float32)
    gamma = rng.standard_normal((16,)).astype(np.float32)
    beta = rng.standard_normal((16,)).astype(np.float32)

    kernels = {
        "conv_gemm": lambda be: be.conv_cols_matmul(cols, w_mat),
        "conv_grads": lambda be: be.conv_grads(grad_mat, cols, w_mat, conv_shape),
        "im2col_backward": lambda be: be.im2col_backward(
            cols, (64, 8, 16, 16), 3, 3, 2, 1, 8, 8
        ),
        "linear": lambda be: be.linear(x3, w_t, bias),
        "linear_grads": lambda be: be.linear_grads(g3, x3, w_t, bias.shape),
        "batchnorm": lambda be: be.batchnorm_apply(
            xbn, gamma, beta, *be.batchnorm_stats(xbn), 1e-5
        ),
    }

    def result_bytes(result) -> bytes:
        parts = result if isinstance(result, tuple) else (result,)
        return b"".join(p.tobytes() for p in parts if p is not None)

    previous_spec = current_backend().spec
    sections: Dict[str, Dict[str, float]] = {name: {} for name in kernels}
    reference_key = None
    try:
        with telemetry.span("bench_kernels"):
            references: Dict[str, bytes] = {}
            for profile in profiles:
                backend = set_backend(profile)
                key = profile.replace(":", "_")
                if reference_key is None:
                    reference_key = key
                for name, kernel in kernels.items():
                    kernel(backend)  # warm (pool spin-up, BLAS first-touch)
                    with telemetry.span(f"bench_kernels.{name}.{key}"):
                        start = time.perf_counter()
                        for _ in range(reps):
                            result = kernel(backend)
                        seconds = (time.perf_counter() - start) / reps
                    if profile == profiles[0]:
                        references[name] = result_bytes(result)
                    elif backend.byte_identical and (
                        result_bytes(result) != references[name]
                    ):
                        raise RuntimeError(
                            f"backend determinism contract broken: kernel "
                            f"{name!r} under {profile!r} differs from the "
                            "reference bytes"
                        )
                    sections[name][key] = seconds
                    telemetry.gauge_set(f"kernel.{name}.{key}_seconds", seconds)
                    if key != reference_key:
                        speedup = sections[name][reference_key] / seconds
                        sections[name][f"{key}_speedup"] = speedup
                        telemetry.gauge_set(f"kernel.{name}.{key}_speedup", speedup)
                gemm_calls = getattr(backend, "gemm_calls", 0)
                if gemm_calls:
                    telemetry.gauge_set(
                        "backend.gemm.ns_per_call", backend.gemm_ns / gemm_calls
                    )
    finally:
        set_backend(previous_spec)
    return sections


def run_bench(
    out: Optional[str] = "BENCH_pipeline.json",
    jsonl: Optional[str] = None,
    seed: int = 0,
    epochs: int = 3,
    iterations: int = 10,
    n_flip_budget: int = 2,
    target_class: int = 1,
    include_sweep: bool = True,
    include_engine: bool = True,
    include_kernels: bool = True,
    events: Optional[str] = None,
    trace: Optional[str] = None,
    manifest: bool = True,
) -> Dict[str, object]:
    """Run the benchmark attack end-to-end and return the telemetry report.

    ``events`` / ``trace`` optionally write the flight record (JSONL) and the
    Chrome-trace/Perfetto view of the run; ``manifest`` (default on) writes
    ``<out>.manifest.json`` identifying what produced the artifacts.
    """
    telemetry.enable()
    if events is not None or trace is not None:
        telemetry.enable_events()
    telemetry.reset()

    spec = SyntheticSpec(num_classes=4, image_size=16, prototypes_per_class=2)
    task = SyntheticImageClassification(spec, seed=seed)
    train_data = task.generate(96, "train")
    test_data = task.generate(48, "test")
    attacker_data = task.generate(64, "train")

    with telemetry.span("bench", seed=seed):
        model = BenchCNN(num_classes=spec.num_classes, rng=seed)
        with telemetry.span("bench.train", epochs=epochs):
            train_model(model, train_data, TrainingConfig(epochs=epochs, seed=seed), test_data)

        qmodel = QuantizedModel(model)
        pipeline = BackdoorPipeline(
            PipelineConfig(
                memory=MemoryConfig(
                    device="K1",
                    num_banks=8,
                    rows_per_bank=2048,
                    attacker_buffer_pages=2048,
                    seed=seed,
                )
            )
        )
        attack = CFTAttack(
            AttackConfig(
                target_class=target_class,
                iterations=iterations,
                n_flip_budget=n_flip_budget,
                batch_size=16,
                trigger_size=4,
                seed=seed,
            ),
            bit_reduction=True,
        )
        with telemetry.span("bench.attack", method=attack.name):
            result = pipeline.run(attack, qmodel, attacker_data, test_data, target_class)

    # Outside the "bench" span so the single-run baseline timing is not
    # distorted by the (parallelism-dependent) sweep comparison.
    sweep_durations = _bench_sweep_durations(seed) if include_sweep else {}
    engine_section = _bench_engine_section(seed) if include_engine else {}
    kernel_sections = _bench_kernel_sections(seed) if include_kernels else {}

    from repro.backend import current_backend

    meta = {
        "benchmark": "repro-bench",
        "version": __version__,
        "python": platform.python_version(),
        "seed": seed,
        "epochs": epochs,
        "iterations": iterations,
        "n_flip_budget": n_flip_budget,
        "method": result.method,
        "online_n_flip": result.online_n_flip,
        "backend": current_backend().describe(),
        "sweep_workers_seconds": {str(k): v for k, v in sweep_durations.items()},
        "engine": engine_section,
        "kernels": kernel_sections,
    }
    report = telemetry.dump(out, meta=meta)
    if jsonl is not None:
        telemetry.dump_jsonl(jsonl)
    record_meta = {"benchmark": "repro-bench", "seed": seed}
    if events is not None:
        telemetry.dump_events(events, meta=record_meta)
    if trace is not None:
        from repro.telemetry.trace import write_trace

        write_trace(
            trace, telemetry.get_tracer(), telemetry.get_recorder(), meta=record_meta
        )
    if manifest and out is not None:
        from repro.telemetry.manifest import (
            build_manifest,
            manifest_path_for,
            write_manifest,
        )

        artifacts = {"report": out}
        if jsonl is not None:
            artifacts["jsonl"] = jsonl
        if events is not None:
            artifacts["events"] = events
        if trace is not None:
            artifacts["trace"] = trace
        engine_counters = {
            name: value
            for name, value in (report.get("counters") or {}).items()
            if name.startswith("engine.")
        }
        write_manifest(
            build_manifest(
                "bench",
                config={
                    "epochs": epochs,
                    "iterations": iterations,
                    "n_flip_budget": n_flip_budget,
                    "target_class": target_class,
                    "include_sweep": include_sweep,
                    "include_engine": include_engine,
                    "include_kernels": include_kernels,
                },
                seeds=[seed],
                device="K1",
                artifacts=artifacts,
                counters=engine_counters,
            ),
            manifest_path_for(out),
        )
    return report
