"""Layer-prefix activation caching engine for ``no_grad`` evaluation.

The CFT+BR inner loop (Algorithm 1) spends almost all of its wall-clock
re-running full forward passes over a fixed evaluation subset, even though
each candidate flip it scores commits at most one byte change confined to a
single layer -- the paper's C1/C2 constraints *guarantee* this sparsity.
:class:`EvalEngine` exploits it the same way prefix/KV caches do in
production inference stacks:

- a model is compiled into an ordered :class:`~repro.engine.plan.LayerPlan`
  of stages (see ``forward_stages`` on the zoo models);
- every stage's weights carry version counters
  (:attr:`repro.nn.module.Parameter.version` plus per-module buffer
  versions), bumped by :class:`~repro.quant.qmodel.QuantizedModel` flip
  commits and by direct ``nn.Module`` parameter writes;
- a batched forward is served from the deepest cached activation whose key
  (input fingerprint, stage index, per-layer version prefix) still matches,
  and only the suffix of stages below the touched layer is recomputed;
- entries live in an LRU cache under a byte budget
  (``REPRO_ENGINE_CACHE_MB``, default 64); cached activations are served
  zero-copy (marked read-only) into the recomputed suffix.

**Determinism contract**: the engine replays the exact op sequence of
``module(Tensor(x))``, and cached activations are the bit-for-bit arrays an
uncached pass produces, so cached and uncached logits are byte-identical --
sweep rows, flight records and golden snapshots never change when the
engine is toggled.  The parity suite in ``tests/test_engine.py`` and the
``repro bench`` engine section both assert this.

Gating: enabled by default; disable with ``REPRO_ENGINE=0`` or the CLI's
``--no-engine`` flag (exported to the environment so sweep workers
inherit it).
"""

from __future__ import annotations

import os

from repro.engine.batch import score_candidates
from repro.engine.cache import ActivationCache
from repro.engine.engine import EvalEngine
from repro.engine.plan import LayerPlan, Stage, compile_plan

__all__ = [
    "ActivationCache",
    "EvalEngine",
    "LayerPlan",
    "Stage",
    "batch_enabled",
    "compile_plan",
    "default_byte_budget",
    "disable_batch",
    "disable_engine",
    "enable_batch",
    "enable_engine",
    "engine_enabled",
    "score_candidates",
]

_DISABLED_VALUES = ("0", "false", "no", "off")

_enabled: bool = os.environ.get("REPRO_ENGINE", "1").lower() not in _DISABLED_VALUES

_batch_enabled: bool = (
    os.environ.get("REPRO_ENGINE_BATCH", "1").lower() not in _DISABLED_VALUES
)


def engine_enabled() -> bool:
    """Whether evaluation paths should route through an :class:`EvalEngine`.

    Purely a performance switch: results are byte-identical either way.
    """
    return _enabled


def enable_engine() -> None:
    global _enabled
    _enabled = True


def disable_engine() -> None:
    global _enabled
    _enabled = False


def batch_enabled() -> bool:
    """Whether the CFT+BR round loop should score candidates in batches.

    Like the engine flag itself this is purely a performance switch: the
    batched scorer (:func:`repro.engine.batch.score_candidates`) returns
    logits byte-identical to the sequential candidate loop.  Disable with
    ``REPRO_ENGINE_BATCH=0`` or the CLI's ``--no-engine-batch``.
    """
    return _batch_enabled


def enable_batch() -> None:
    global _batch_enabled
    _batch_enabled = True


def disable_batch() -> None:
    global _batch_enabled
    _batch_enabled = False


def default_byte_budget() -> int:
    """LRU byte budget for activation caches (``REPRO_ENGINE_CACHE_MB``)."""
    return int(float(os.environ.get("REPRO_ENGINE_CACHE_MB", "64")) * 1024 * 1024)
