"""Round-level batched candidate scoring for the CFT+BR inner loop.

Algorithm 1's C1/C2 constraints guarantee that every candidate flip scored
in one progressive round perturbs **at most one byte in one layer**, so all
candidates touching the same layer share the same baseline prefix of the
forward pass.  :func:`score_candidates` exploits the whole round at once
instead of per-forward:

1. the baseline prefix input of every touched stage is restored from the
   engine's activation cache once (computing and caching any missing
   stages, exactly as a plain engine forward would);
2. each candidate's perturbed-layer output is computed on that shared
   prefix (the only per-candidate work), then all outputs of a stage group
   are stacked along a new leading candidate axis, folded into the batch
   dimension;
3. one batched suffix forward per (stage group, image batch) replaces
   ``len(proposals)`` scalar suffix forwards.

**Determinism contract** (same as the engine itself): the returned logits
are byte-identical to the sequential ``apply flip -> engine.forward ->
revert`` loop under the default backend.  Convolution and pooling stages
are per-sample computations (elementwise ops, per-sample im2col GEMMs),
so candidates ride folded into the batch axis through them unchanged;
dense stages multiply against a transposed weight *view*, for which BLAS
kernel selection -- and therefore rounding -- depends on the row count,
so once activations flatten to 2-D the candidates are lifted onto a
leading axis and each dense GEMM broadcasts per candidate slice with the
sequential path's exact shape.  The parity suite in
``tests/test_engine.py`` and the ``repro bench`` batched-section digest
hard-fail both pin this.

**Round-ahead speculation**: the per-candidate perturbed-layer outputs
computed in step 2 are exactly what a prefix restore would recompute after
committing that candidate -- so the round parks them on the engine
(``engine._speculation``) keyed by proposal.  When the caller commits the
round's winner and calls ``engine.promote_speculation``, the winner's
buffers are promoted into the activation cache under the post-commit
signature prefix (after verifying no earlier stage changed), and round
``k+1``'s shared-prefix restore starts hot instead of recomputing through
the committed layer.  Promotion is purely a cache warm-up: any signature
mismatch discards the buffers (transparent fallback, counted as
``engine.batch.spec_discard``; promotions count as
``engine.batch.spec_hit``).

Exported telemetry (``engine.batch.*``): ``rounds`` (calls), ``candidates``
(proposals scored), ``groups`` (distinct perturbed stages per call),
``suffix_forwards`` (stacked suffix executions) and the
``spec_hit``/``spec_discard`` pair above.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.autodiff.tensor import Tensor, no_grad

Proposal = Tuple[int, int]  # (flat weight-file index, new int8 byte value)


def _apply_byte(qmodel, name: str, local: int, value: np.int8) -> np.int8:
    """Set one byte of one quantized tensor; returns the previous value."""
    tensor = qmodel.quantized(name)
    flat = tensor.reshape(-1)
    previous = flat[local]
    flat[local] = value
    qmodel.set_quantized(name, flat.reshape(tensor.shape))
    return previous


def score_candidates(
    engine,
    qmodel,
    proposals: Sequence[Proposal],
    images: Union[np.ndarray, Sequence[np.ndarray]],
) -> Union[np.ndarray, List[np.ndarray]]:
    """Score every candidate single-byte flip with batched suffix forwards.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.EvalEngine` wrapping the model the
        flips apply to (must be in eval mode).
    qmodel:
        The :class:`~repro.quant.qmodel.QuantizedModel` owning the weight
        file; it is returned to its exact entry state (all flips reverted).
    proposals:
        ``(flat_index, new_int8_value)`` candidate byte changes, at most one
        per candidate (Algorithm 1's C1 + bit reduction).
    images:
        One image batch, or a sequence of batches (e.g. clean and
        trigger-stamped) scored under a single apply/revert cycle per
        candidate.

    Returns
    -------
    A ``(K, N, C)`` logits array per input batch (a list when ``images``
    is a sequence), where row ``k`` is byte-identical to sequentially
    applying proposal ``k``, running ``engine.forward``, and reverting.
    """
    module = engine.plan.module
    if module.training:
        raise ValueError(
            "score_candidates requires eval mode: a training-mode forward "
            "mutates batch-norm running statistics per candidate"
        )
    single = isinstance(images, np.ndarray)
    arrays = [images] if single else [
        b.data if isinstance(b, Tensor) else b for b in images
    ]

    stages = engine.plan.stages
    last = len(stages) - 1
    params = dict(module.named_parameters())

    # Locate every proposal: (parameter name, local offset, stage index).
    located = []
    for index, value in proposals:
        name, local = qmodel.locate(int(index))
        located.append(
            (name, local, engine.plan.stage_index_of(params[name]), np.int8(value))
        )

    if not located:
        empty = [np.empty((0,), dtype=np.float32) for _ in arrays]
        return empty[0] if single else empty

    # Baseline signatures and prefix activations, captured before any flip
    # is applied so cache entries stay keyed on the unperturbed state.
    sigs = engine.plan.signatures()
    fingerprints = [engine._memo.fingerprint(a) for a in arrays]
    needed = sorted({stage for _, _, stage, _ in located})
    prefixes = {
        (bi, stage): engine.prefix_input(array, fp, sigs, stage)
        for bi, (array, fp) in enumerate(zip(arrays, fingerprints))
        for stage in needed
    }

    groups: dict = {}
    for position, (_, _, stage, _) in enumerate(located):
        groups.setdefault(stage, []).append(position)

    engine._speculation = None
    spec_candidates: dict = {}
    results: List[List[np.ndarray]] = [[None] * len(located) for _ in arrays]
    suffix_forwards = 0
    for stage in needed:
        positions = groups[stage]
        # Per-candidate perturbed-layer outputs on the shared prefix -- one
        # apply/revert cycle covers every image batch.
        outputs: List[List[np.ndarray]] = [[] for _ in arrays]
        for position in positions:
            name, local, _, value = located[position]
            previous = _apply_byte(qmodel, name, local, value)
            with no_grad():
                for bi in range(len(arrays)):
                    outputs[bi].append(
                        stages[stage].fn(Tensor(prefixes[(bi, stage)])).data
                    )
            _apply_byte(qmodel, name, local, previous)
            # Park this candidate's perturbed stage outputs for round-ahead
            # promotion: if the caller commits it, these arrays ARE the
            # post-commit input of stage+1 for each image batch.
            index, proposed = proposals[position]
            spec_candidates[(int(index), int(proposed))] = {
                "stage": stage,
                "outputs": [outputs[bi][-1] for bi in range(len(arrays))],
            }

        for bi, array in enumerate(arrays):
            if stage == last:
                # The perturbed layer is the head: its output already is the
                # per-candidate logits; there is no suffix to batch.
                for position, out in zip(positions, outputs[bi]):
                    results[bi][position] = out
                continue
            # Candidate axis folded into the batch dimension: one suffix
            # forward scores the whole group (baseline suffix weights -- the
            # flips above are all confined to ``stage`` and were reverted).
            #
            # Representation switch for byte-identity: convolution and
            # pooling stages are per-sample computations, so folding
            # candidates into the batch axis cannot change their bytes.
            # Dense stages are ``x @ W.T`` against a transposed *view*, and
            # this BLAS picks M-dependent kernels for that operand layout --
            # a (K*N, F) GEMM rounds differently from K separate (N, F)
            # GEMMs.  So once activations flatten to 2-D the candidates are
            # lifted onto a leading axis instead: ``(K, N, F) @ (F, out)``
            # broadcasts to one GEMM per candidate slice with the exact M
            # the sequential path used, which is byte-identical.
            h = np.concatenate(outputs[bi], axis=0)
            grouped = False
            with no_grad():
                for i in range(stage + 1, len(stages)):
                    if not grouped and h.ndim == 2:
                        h = h.reshape(
                            (len(positions), array.shape[0]) + h.shape[1:]
                        )
                        grouped = True
                    h = stages[i].fn(Tensor(h)).data
            suffix_forwards += 1
            if not grouped:
                h = h.reshape((len(positions), array.shape[0]) + h.shape[1:])
            for j, position in enumerate(positions):
                results[bi][position] = h[j]

    if telemetry.enabled():
        telemetry.counter_add("engine.batch.rounds")
        telemetry.counter_add("engine.batch.candidates", len(located))
        telemetry.counter_add("engine.batch.groups", len(needed))
        telemetry.counter_add("engine.batch.suffix_forwards", suffix_forwards)

    engine._speculation = {
        "sigs": sigs,
        "fingerprints": fingerprints,
        "candidates": spec_candidates,
    }
    stacked = [np.stack(per_batch) for per_batch in results]
    return stacked[0] if single else stacked
