"""The evaluation engine: version-checked prefix-cached ``no_grad`` forwards."""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Union

import numpy as np

from repro import telemetry
from repro.autodiff.tensor import Tensor, no_grad
from repro.engine.cache import ActivationCache
from repro.engine.plan import LayerPlan, compile_plan
from repro.nn.module import Module


def _fingerprint(x: np.ndarray) -> bytes:
    """Content digest of a batch: dtype, shape and raw bytes.

    sha256 because CPython routes it through OpenSSL's hardware-accelerated
    implementation -- this runs on every engine forward, so digest throughput
    directly bounds the best-case cache-hit latency.
    """
    h = hashlib.sha256()
    h.update(str(x.dtype).encode())
    h.update(str(x.shape).encode())
    h.update(np.ascontiguousarray(x))
    return h.digest()


class _FingerprintMemo:
    """Identity-keyed memo of input digests.

    Evaluation loops pass the same batch objects over and over (the fixed
    attacker subset, a hoisted trigger-stamped copy), and content-hashing a
    batch costs as much as a small recomputed suffix -- so digests are
    memoized per array *object*.  The memo holds strong references, so a
    memoized id() can never be recycled by a new array while the entry
    lives; entries rotate out LRU.  The one contract: arrays handed to the
    engine must not be mutated in place afterwards (no evaluation path in
    this codebase does -- eval sets are fixed and stamped copies are
    freshly allocated).
    """

    def __init__(self, capacity: int = 8) -> None:
        self._entries: "OrderedDict[int, tuple]" = OrderedDict()
        self._capacity = capacity

    def fingerprint(self, x: np.ndarray) -> bytes:
        key = id(x)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is x:
            self._entries.move_to_end(key)
            return entry[1]
        digest = _fingerprint(x)
        self._entries[key] = (x, digest)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return digest


class EvalEngine:
    """Serve batched evaluation forwards from a layer-prefix cache.

    ``forward(x)`` is byte-identical to ``module(Tensor(x)).data`` under
    ``no_grad``: the compiled plan replays the model's op sequence exactly,
    and cached activations are the bit-for-bit outputs of earlier identical
    computations (guaranteed by keying every stage on the version-signature
    prefix of all stages up to and including it).

    Caching only engages in eval mode — a training-mode forward mutates
    batch-norm running statistics, so it is executed plainly and never
    cached (results still match the engine-less path exactly).
    """

    def __init__(self, module: Module, byte_budget: Optional[int] = None) -> None:
        from repro.engine import default_byte_budget

        self.plan: LayerPlan = compile_plan(module)
        self.cache = ActivationCache(
            default_byte_budget() if byte_budget is None else byte_budget
        )
        self._memo = _FingerprintMemo()
        # Round-ahead speculation: the last batched scoring round parks its
        # per-candidate perturbed stage outputs here (see
        # :mod:`repro.engine.batch`); committing a winner promotes the
        # matching buffer into the activation cache under the post-commit
        # signature, so the next round's shared-prefix restore starts hot.
        self._speculation: Optional[dict] = None
        self.spec_hits = 0
        self.spec_discards = 0

    @property
    def module(self) -> Module:
        return self.plan.module

    def forward(self, x: Union[np.ndarray, Tensor]) -> np.ndarray:
        """Run a batched forward, reusing the deepest valid cached prefix."""
        if isinstance(x, Tensor):
            x = x.data
        module = self.plan.module
        if module.training:
            with no_grad():
                return module(Tensor(x)).data

        sigs = self.plan.signatures()
        fp = self._memo.fingerprint(x)
        # The full forward is the degenerate prefix: the "input" of the
        # stage one past the end of the plan.
        return self.prefix_input(x, fp, sigs, len(self.plan.stages))

    def prefix_input(
        self,
        x: np.ndarray,
        fp: bytes,
        sigs: tuple,
        upto: int,
    ) -> np.ndarray:
        """The input activation of stage ``upto`` (output of stage ``upto-1``).

        Served from the deepest valid cached prefix below ``upto``; any
        missing stages are computed and written through the cache under the
        supplied version signatures.  ``upto == len(stages)`` yields the
        model output; ``upto == 0`` returns ``x`` untouched (no probe, no
        hit/miss accounting).
        """
        if upto == 0:
            return x
        stages = self.plan.stages

        # Probe from the deepest stage down: the first (deepest) key whose
        # version-signature prefix still matches gives the longest reusable
        # prefix of the forward pass.
        start = 0
        h = x
        for i in range(upto - 1, -1, -1):
            cached = self.cache.get((fp, i, sigs[: i + 1]))
            if cached is not None:
                start = i + 1
                h = cached
                break

        stats = self.cache.stats
        if start > 0:
            stats.hits += 1
        else:
            stats.misses += 1
        if telemetry.enabled():
            telemetry.counter_add(
                "engine.cache.hit" if start > 0 else "engine.cache.miss", 1
            )

        evicted_before = self.cache.stats.evicted_bytes
        with no_grad():
            for i in range(start, upto):
                h = stages[i].fn(Tensor(h)).data
                self.cache.put((fp, i, sigs[: i + 1]), h)
        if telemetry.enabled():
            # A zero add still registers the counter, so every bench report
            # exports the full engine.cache.* triple even when nothing was
            # evicted.
            telemetry.counter_add(
                "engine.cache.evicted_bytes",
                self.cache.stats.evicted_bytes - evicted_before,
            )
        return h

    def score_candidates(self, qmodel, proposals, images):
        """Batched round-level candidate scoring (see :mod:`repro.engine.batch`)."""
        from repro.engine.batch import score_candidates

        return score_candidates(self, qmodel, proposals, images)

    def promote_speculation(self, proposal) -> bool:
        """Promote a committed candidate's buffered stage output into the cache.

        ``proposal`` is the ``(flat_index, new_value)`` pair the caller just
        committed (after the scoring round that parked the speculation
        buffers).  If the buffers are still valid -- the committed byte is
        one of the scored candidates, no stage *before* the perturbed one
        changed since scoring, and the perturbed stage's signature actually
        moved -- the buffered perturbed-layer outputs are byte-identical to
        what a post-commit prefix restore would recompute, so they are
        inserted into the activation cache under the new signature prefix
        and the next round starts from a hot cache.  Any mismatch discards
        the speculation silently: correctness never depends on promotion
        (transparent fallback), only the recompute cost does.

        Returns ``True`` on promotion (``spec_hit``), ``False`` on discard.
        """
        spec, self._speculation = self._speculation, None
        promoted = False
        if spec is not None and proposal is not None:
            entry = spec["candidates"].get((int(proposal[0]), int(proposal[1])))
            if entry is not None:
                stage = entry["stage"]
                sigs2 = self.plan.signatures()
                old = spec["sigs"]
                if (
                    len(sigs2) == len(old)
                    and sigs2[:stage] == old[:stage]
                    and sigs2[stage] != old[stage]
                ):
                    for fp, out in zip(spec["fingerprints"], entry["outputs"]):
                        self.cache.put((fp, stage, sigs2[: stage + 1]), out)
                    promoted = True
        if promoted:
            self.spec_hits += 1
        else:
            self.spec_discards += 1
        if telemetry.enabled():
            telemetry.counter_add(
                "engine.batch.spec_hit" if promoted else "engine.batch.spec_discard"
            )
        if telemetry.events_enabled():
            # Deterministic (one event per commit, promoted-or-not is a pure
            # function of the seeded run), so the flight record stays
            # byte-identical and `repro report` can render speculation hits.
            telemetry.event("engine.spec", promoted=promoted)
        return promoted

    __call__ = forward

    def counters(self) -> Dict[str, int]:
        """Cache statistics under the exported telemetry counter names."""
        stats = self.cache.stats
        return {
            "engine.cache.hit": stats.hits,
            "engine.cache.miss": stats.misses,
            "engine.cache.evicted_bytes": stats.evicted_bytes,
            "engine.batch.spec_hit": self.spec_hits,
            "engine.batch.spec_discard": self.spec_discards,
        }
