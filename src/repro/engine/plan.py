"""Compile a model into an ordered layer plan for prefix caching.

A *stage* is a contiguous slice of the model's forward pass: a callable
``Tensor -> Tensor`` plus the set of modules whose weights/buffers it reads.
The stage list replays the model's ``forward`` op-for-op, so running all
stages in order is byte-identical to ``module(x)``.

Models opt in to fine-grained staging by defining ``forward_stages()``
returning ``[(name, fn, modules), ...]``.  Without it, a ``Sequential`` is
split per child, and any other module degrades to a single whole-model stage
(correct, just cache-unfriendly below whole-model granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.autodiff.tensor import Tensor
from repro.nn.layers import Sequential
from repro.nn.module import Module


@dataclass(frozen=True)
class Stage:
    """One contiguous slice of a model's forward pass."""

    name: str
    fn: Callable[[Tensor], Tensor]
    modules: Tuple[Module, ...]

    def version_signature(self) -> Tuple[int, ...]:
        """Versions of every parameter and buffer store this stage reads.

        The signature changes iff some weight or buffer feeding this stage
        was rebound since it was last computed; identical signatures imply
        bit-for-bit identical stage outputs for the same input.
        """
        sig: List[int] = []
        for module in self.modules:
            for _, param in module.named_parameters():
                sig.append(param.version)
            for _, sub in module.named_modules():
                sig.append(sub.buffers_version)
        return tuple(sig)


class LayerPlan:
    """An ordered stage decomposition of one model's forward pass."""

    def __init__(self, module: Module, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a layer plan needs at least one stage")
        self.module = module
        self.stages: Tuple[Stage, ...] = tuple(stages)

    def __len__(self) -> int:
        return len(self.stages)

    def signatures(self) -> Tuple[Tuple[int, ...], ...]:
        """Current per-stage version signatures, in stage order."""
        return tuple(stage.version_signature() for stage in self.stages)


def _stage_for(name: str, module: Module) -> Stage:
    return Stage(name=name, fn=module, modules=(module,))


def compile_plan(module: Module) -> LayerPlan:
    """Build the finest stage decomposition the model supports.

    Resolution order: the model's own ``forward_stages()`` protocol, then
    per-child splitting for :class:`~repro.nn.layers.Sequential`, then a
    single whole-model stage.  Every path replays the identical op sequence
    as ``module(x)``.
    """
    forward_stages = getattr(module, "forward_stages", None)
    if callable(forward_stages):
        stages = [
            Stage(name=name, fn=fn, modules=tuple(mods))
            for name, fn, mods in forward_stages()
        ]
        return LayerPlan(module, stages)

    # A Sequential's forward is exactly child-after-child application, so the
    # per-child split is safe for it alone; arbitrary modules may do more in
    # forward than call their children.
    if isinstance(module, Sequential) and len(module) > 0:
        return LayerPlan(
            module, [_stage_for(name, getattr(module, name)) for name in module._order]
        )

    return LayerPlan(module, [Stage(name="forward", fn=module, modules=(module,))])
