"""Compile a model into an ordered layer plan for prefix caching.

A *stage* is a contiguous slice of the model's forward pass: a callable
``Tensor -> Tensor`` plus the set of modules whose weights/buffers it reads.
The stage list replays the model's ``forward`` op-for-op, so running all
stages in order is byte-identical to ``module(x)``.

Models opt in to fine-grained staging by defining ``forward_stages()``
returning ``[(name, fn, modules), ...]``.  Without it, a ``Sequential`` is
split per child, and any other module degrades to a single whole-model stage
(correct, just cache-unfriendly below whole-model granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.autodiff.tensor import Tensor
from repro.log import get_logger
from repro.nn.layers import Sequential
from repro.nn.module import Module, Parameter

log = get_logger(__name__)

# Module classes already warned about degrading to a whole-model stage; the
# warning fires once per class per process, not once per compile.
_degradation_warned: Set[str] = set()


@dataclass(frozen=True)
class Stage:
    """One contiguous slice of a model's forward pass."""

    name: str
    fn: Callable[[Tensor], Tensor]
    modules: Tuple[Module, ...]

    def version_signature(self) -> Tuple[int, ...]:
        """Versions of every parameter and buffer store this stage reads.

        The signature changes iff some weight or buffer feeding this stage
        was rebound since it was last computed; identical signatures imply
        bit-for-bit identical stage outputs for the same input.
        """
        sig: List[int] = []
        for module in self.modules:
            for _, param in module.named_parameters():
                sig.append(param.version)
            for _, sub in module.named_modules():
                sig.append(sub.buffers_version)
        return tuple(sig)


class LayerPlan:
    """An ordered stage decomposition of one model's forward pass."""

    def __init__(self, module: Module, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a layer plan needs at least one stage")
        self.module = module
        self.stages: Tuple[Stage, ...] = tuple(stages)
        self._param_stage: Optional[Dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.stages)

    def signatures(self) -> Tuple[Tuple[int, ...], ...]:
        """Current per-stage version signatures, in stage order."""
        return tuple(stage.version_signature() for stage in self.stages)

    def stage_index_of(self, param: Parameter) -> int:
        """Index of the (first) stage whose computation reads ``param``.

        Built lazily from the stages' module sets and keyed on parameter
        object identity -- Parameter objects are stable across ``data``
        rebinds, so the map survives flip commits and optimizer steps.
        """
        if self._param_stage is None:
            mapping: Dict[int, int] = {}
            for index, stage in enumerate(self.stages):
                for module in stage.modules:
                    for _, stage_param in module.named_parameters():
                        mapping.setdefault(id(stage_param), index)
            self._param_stage = mapping
        try:
            return self._param_stage[id(param)]
        except KeyError:
            raise ValueError(
                "parameter is not read by any stage of this plan "
                "(was it rebound as a new Parameter object?)"
            ) from None


def _stage_for(name: str, module: Module) -> Stage:
    return Stage(name=name, fn=module, modules=(module,))


def compile_plan(module: Module) -> LayerPlan:
    """Build the finest stage decomposition the model supports.

    Resolution order: the model's own ``forward_stages()`` protocol, then
    per-child splitting for :class:`~repro.nn.layers.Sequential`, then a
    single whole-model stage.  Every path replays the identical op sequence
    as ``module(x)``.
    """
    forward_stages = getattr(module, "forward_stages", None)
    if callable(forward_stages):
        stages = [
            Stage(name=name, fn=fn, modules=tuple(mods))
            for name, fn, mods in forward_stages()
        ]
        return LayerPlan(module, stages)

    # A Sequential's forward is exactly child-after-child application, so the
    # per-child split is safe for it alone; arbitrary modules may do more in
    # forward than call their children.
    if isinstance(module, Sequential) and len(module) > 0:
        return LayerPlan(
            module, [_stage_for(name, getattr(module, name)) for name in module._order]
        )

    # Whole-model degradation: correct, but the prefix cache can only serve
    # full-forward hits, so every flip recomputes the entire model.  Surface
    # it -- once per module class -- so CI's engine summary and operators
    # notice a zoo model that silently lost its staging.
    cls_name = type(module).__name__
    if cls_name not in _degradation_warned:
        _degradation_warned.add(cls_name)
        log.warning(
            "%s defines no forward_stages(); the evaluation engine degrades to a "
            "single whole-model stage (prefix caching disabled below model "
            "granularity)",
            cls_name,
        )
    if telemetry.enabled():
        telemetry.counter_add("engine.plan.degraded")
    return LayerPlan(module, [Stage(name="forward", fn=module, modules=(module,))])
