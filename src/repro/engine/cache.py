"""LRU activation cache with a byte budget.

Keys are opaque hashable tuples built by the engine from (input
fingerprint, stage index, per-stage version-signature prefix); values are
the stage-output activations, stored read-only so a cache hit can be served
zero-copy into the recomputed suffix without risking aliased mutation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

import numpy as np


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    stored_bytes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "stored_bytes": self.stored_bytes,
            "hit_rate": self.hit_rate(),
        }


@dataclass
class _Entry:
    array: np.ndarray
    nbytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.nbytes = int(self.array.nbytes)


class ActivationCache:
    """Byte-budgeted LRU over read-only activation arrays."""

    def __init__(self, byte_budget: int) -> None:
        if byte_budget <= 0:
            raise ValueError(f"byte budget must be positive, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached activation for ``key``, or ``None``.

        A hit refreshes the entry's LRU position.  Misses are *not* counted
        here: the engine probes many prefix depths per forward and only the
        final outcome (served from some depth vs computed from scratch) is a
        meaningful hit/miss event.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        return entry.array

    def put(self, key: Hashable, array: np.ndarray) -> None:
        """Insert an activation, evicting least-recently-used entries.

        The array is stored as-is and marked read-only; callers hand over
        ownership (the engine always passes freshly computed buffers).
        Arrays larger than the whole budget are silently not cached.
        """
        if array.nbytes > self.byte_budget:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        array.flags.writeable = False
        entry = _Entry(array)
        self._entries[key] = entry
        self._bytes += entry.nbytes
        self.stats.stored_bytes += entry.nbytes
        while self._bytes > self.byte_budget:
            _, victim = self._entries.popitem(last=False)
            self._bytes -= victim.nbytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += victim.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def keys(self) -> Tuple[Hashable, ...]:
        return tuple(self._entries.keys())
