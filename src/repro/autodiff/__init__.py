"""A from-scratch NumPy reverse-mode automatic differentiation engine.

This replaces PyTorch as the training substrate for the reproduction.  It
provides a :class:`~repro.autodiff.tensor.Tensor` type carrying a gradient
tape, a library of differentiable operations (including 2-D convolution,
batch normalization and pooling) and numerically stable loss functions.
"""

from repro.autodiff.tensor import Tensor, Function, no_grad, is_grad_enabled
from repro.autodiff.conv import conv2d, max_pool2d, avg_pool2d, global_avg_pool2d, pad2d
from repro.autodiff.losses import cross_entropy, mse_loss, nll_loss, log_softmax, softmax

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad2d",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "log_softmax",
    "softmax",
]
