"""Elementwise, linear-algebra and shape operations for the autograd engine."""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autodiff.tensor import Function, _unbroadcast

Axis = Optional[Union[int, Tuple[int, ...]]]


class Add(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a_shape, b_shape = self.saved
        return _unbroadcast(grad, a_shape), _unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a, b = self.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a, b = self.saved
        grad_a = _unbroadcast(grad / b, a.shape)
        grad_b = _unbroadcast(-grad * a / (b * b), b.shape)
        return grad_a, grad_b


class Neg(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        return (-grad,)


class Pow(Function):
    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.save_for_backward(a, exponent)
        return a**exponent

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a, exponent = self.saved
        return (grad * exponent * a ** (exponent - 1),)


class Exp(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (a,) = self.saved
        return (grad / a,)


class ReLU(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (mask,) = self.saved
        return (grad * mask,)


class Sigmoid(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class Abs(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (sign,) = self.saved
        return (grad * sign,)


class Clip(Function):
    def forward(self, a: np.ndarray, low: float, high: float) -> np.ndarray:
        mask = (a >= low) & (a <= high)
        self.save_for_backward(mask)
        return np.clip(a, low, high)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (mask,) = self.saved
        return (grad * mask,)


class MatMul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a, b = self.saved
        grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)


class LinearFunction(Function):
    """Fused dense layer ``x @ w.T (+ b)`` delegating to the active backend.

    Replaces the ``Transpose`` + ``MatMul`` + ``Add`` tape triple that
    ``nn.Linear`` historically built with a single node.  The reference
    backend replays the exact numeric sequence of that triple (including
    the ``_unbroadcast`` reductions), so forward outputs and all three
    gradients are byte-identical to the unfused path; fusing only removes
    tape bookkeeping and lets backends see the whole dense op at once.

    ``w_t`` arrives as a keyword (non-differentiable) argument: the layer
    passes its cached transposed *view* so repeated calls do not re-derive
    it, and backends see the same operand layout as ``x @ w.transpose()``.
    """

    def forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        b: Optional[np.ndarray],
        w_t: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        from repro.backend import current_backend

        if w_t is None:
            w_t = np.transpose(w)
        self.save_for_backward(x, w_t, None if b is None else b.shape)
        return current_backend().linear(x, w_t, b)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        from repro.backend import current_backend

        x, w_t, bias_shape = self.saved
        grad_x, grad_w, grad_b = current_backend().linear_grads(
            grad, x, w_t, bias_shape
        )
        if bias_shape is None:
            return grad_x, grad_w
        return grad_x, grad_w, grad_b


class Sum(Function):
    def forward(self, a: np.ndarray, axis: Axis, keepdims: bool) -> np.ndarray:
        self.save_for_backward(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        shape, axis, keepdims = self.saved
        grad = _restore_reduced(grad, shape, axis, keepdims)
        return (np.broadcast_to(grad, shape).copy(),)


class Mean(Function):
    def forward(self, a: np.ndarray, axis: Axis, keepdims: bool) -> np.ndarray:
        self.save_for_backward(a.shape, axis, keepdims)
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        shape, axis, keepdims = self.saved
        count = _reduced_count(shape, axis)
        grad = _restore_reduced(grad, shape, axis, keepdims)
        return (np.broadcast_to(grad, shape) / count,)


class Max(Function):
    def forward(self, a: np.ndarray, axis: Optional[int], keepdims: bool) -> np.ndarray:
        out = a.max(axis=axis, keepdims=keepdims)
        self.save_for_backward(a, out, axis, keepdims)
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        a, out, axis, keepdims = self.saved
        out_full = _restore_reduced(out, a.shape, axis, keepdims)
        grad_full = _restore_reduced(grad, a.shape, axis, keepdims)
        mask = (a == out_full).astype(a.dtype)
        # Split gradient equally among ties, matching NumPy reductions.
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        return (grad_full * mask / counts,)


class Reshape(Function):
    def forward(self, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        self.save_for_backward(a.shape)
        return a.reshape(shape)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        (shape,) = self.saved
        return (grad.reshape(shape),)


class Transpose(Function):
    def forward(self, a: np.ndarray, axes: Optional[Tuple[int, ...]]) -> np.ndarray:
        self.save_for_backward(a.ndim, axes)
        return np.transpose(a, axes)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        ndim, axes = self.saved
        if axes is None:
            return (np.transpose(grad),)
        inverse = np.argsort(axes)
        return (np.transpose(grad, inverse),)


class GetItem(Function):
    def forward(self, a: np.ndarray, index: Any) -> np.ndarray:
        self.save_for_backward(a.shape, index)
        return a[index]

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        shape, index = self.saved
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, index, grad)
        return (out,)


class Stack(Function):
    def forward(self, *arrays: np.ndarray, axis: int) -> np.ndarray:
        self.save_for_backward(axis, len(arrays))
        return np.stack(arrays, axis=axis)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        axis, count = self.saved
        pieces = np.split(grad, count, axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)


class Concat(Function):
    def forward(self, *arrays: np.ndarray, axis: int) -> np.ndarray:
        self.save_for_backward(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.split(grad, splits, axis=axis))


def _reduced_count(shape: Tuple[int, ...], axis: Axis) -> int:
    if axis is None:
        return int(np.prod(shape))
    if isinstance(axis, int):
        axis = (axis,)
    return int(np.prod([shape[a] for a in axis]))


def _restore_reduced(
    grad: np.ndarray, shape: Tuple[int, ...], axis: Axis, keepdims: bool
) -> np.ndarray:
    """Re-insert reduced axes so ``grad`` broadcasts against ``shape``."""
    if axis is None or keepdims:
        return grad if keepdims else np.asarray(grad).reshape([1] * len(shape))
    if isinstance(axis, int):
        axis = (axis,)
    axis = tuple(a % len(shape) for a in axis)
    new_shape = [1 if i in axis else s for i, s in enumerate(shape)]
    return np.asarray(grad).reshape(new_shape)
