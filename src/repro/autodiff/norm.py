"""Fused batch-normalization operator (training and inference modes)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff.tensor import Function, Tensor
from repro.errors import ShapeError


class BatchNorm2dFunction(Function):
    """Per-channel batch normalization over an NCHW tensor.

    In training mode, normalizes with batch statistics and differentiates
    through them; in inference mode, uses the provided running statistics.
    """

    def forward(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        training: bool,
        eps: float,
    ) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        from repro.backend import current_backend

        backend = current_backend()
        if training:
            mean, var = backend.batchnorm_stats(x)
        else:
            mean = running_mean
            var = running_var
        out, x_hat, inv_std = backend.batchnorm_apply(x, gamma, beta, mean, var, eps)
        self.save_for_backward(x_hat, inv_std, gamma, training)
        self.batch_mean = mean
        self.batch_var = var
        return out

    def backward(self, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        x_hat, inv_std, gamma, training = self.saved
        axes = (0, 2, 3)
        grad_beta = grad.sum(axis=axes)
        grad_gamma = (grad * x_hat).sum(axis=axes)
        grad_xhat = grad * gamma[None, :, None, None]
        if training:
            mean_gxh = grad_xhat.mean(axis=axes)
            mean_gxh_xhat = (grad_xhat * x_hat).mean(axis=axes)
            grad_x = (
                grad_xhat
                - mean_gxh[None, :, None, None]
                - x_hat * mean_gxh_xhat[None, :, None, None]
            ) * inv_std[None, :, None, None]
        else:
            grad_x = grad_xhat * inv_std[None, :, None, None]
        return grad_x, grad_gamma, grad_beta


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    eps: float = 1e-5,
) -> Tuple[Tensor, np.ndarray, np.ndarray]:
    """Apply batch normalization; returns (output, batch_mean, batch_var).

    The batch statistics are returned so callers (the layer) can update
    running averages without recomputing them.
    """
    ctx_holder = {}

    class _Bound(BatchNorm2dFunction):
        def forward(self, *args, **kwargs):  # noqa: D102 - thin capture shim
            out = super().forward(*args, **kwargs)
            ctx_holder["mean"] = self.batch_mean
            ctx_holder["var"] = self.batch_var
            return out

    out = _Bound.apply(x, gamma, beta, running_mean, running_var, training, eps)
    return out, ctx_holder["mean"], ctx_holder["var"]
